//! Equivalence gate on the real constructions: the zero-copy engine must
//! reproduce the first-generation engine bitwise on the paper's recursive
//! counters, and the batched sweep must agree with looped single runs.

use synchronous_counting::core::{Algorithm, CounterBuilder, CounterState};
use synchronous_counting::protocol::{BitVec, Counter};
use synchronous_counting::sim::{adversaries, Adversary, Batch, Scenario, Simulation};

fn encode_honest(
    algo: &Algorithm,
    sim: &Simulation<'_, Algorithm, impl Adversary<CounterState>>,
) -> BitVec {
    let mut bits = BitVec::new();
    for &id in sim.honest() {
        algo.encode_state(id, &sim.states()[id.index()], &mut bits);
    }
    bits
}

fn assert_engines_agree<A, F>(algo: &Algorithm, make_adversary: F, rounds: u64, seed: u64)
where
    A: Adversary<CounterState>,
    F: Fn() -> A,
{
    let mut fast = Simulation::new(algo, make_adversary(), seed);
    let mut reference = Simulation::new(algo, make_adversary(), seed);
    for round in 0..rounds {
        fast.step();
        reference.reference_step();
        assert_eq!(
            fast.states(),
            reference.states(),
            "state divergence at round {round} (seed {seed})"
        );
        assert_eq!(
            encode_honest(algo, &fast),
            encode_honest(algo, &reference),
            "bitwise divergence at round {round} (seed {seed})"
        );
    }
}

#[test]
fn a4_replays_bitwise_across_adversaries() {
    let algo = CounterBuilder::corollary1(1, 2).unwrap().build().unwrap();
    for seed in [0u64, 1, 17] {
        assert_engines_agree(&algo, || adversaries::crash(&algo, [1], seed), 80, seed);
        assert_engines_agree(&algo, || adversaries::random(&algo, [2], seed), 80, seed);
        assert_engines_agree(&algo, || adversaries::two_faced(&algo, [0], seed), 80, seed);
    }
}

#[test]
fn a12_replays_bitwise_under_equivocation() {
    let algo = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    assert_engines_agree(
        &algo,
        || adversaries::two_faced(&algo, [0, 1, 4], 5),
        60,
        11,
    );
    assert_engines_agree(&algo, || adversaries::random(&algo, [0, 1, 4], 5), 60, 11);
}

fn assert_prepared_engine_agrees<A, F>(algo: &Algorithm, make_adversary: F, rounds: u64, seed: u64)
where
    A: Adversary<CounterState>,
    F: Fn() -> A,
{
    let mut prepared = Simulation::new(algo, make_adversary(), seed);
    let mut reference = Simulation::new(algo, make_adversary(), seed);
    for round in 0..rounds {
        prepared.step_prepared();
        reference.reference_step();
        assert_eq!(
            prepared.states(),
            reference.states(),
            "prepared-path divergence at round {round} (seed {seed})"
        );
        assert_eq!(
            encode_honest(algo, &prepared),
            encode_honest(algo, &reference),
            "prepared-path bitwise divergence at round {round} (seed {seed})"
        );
    }
}

#[test]
fn prepared_path_replays_bitwise_on_the_stack() {
    // The hoisted-vote fast path must agree with the seed engine at every
    // level of the Figure-2 recursion, under equivocation.
    let a4 = CounterBuilder::corollary1(1, 2).unwrap().build().unwrap();
    for seed in [0u64, 5, 23] {
        assert_prepared_engine_agrees(&a4, || adversaries::two_faced(&a4, [1], seed), 80, seed);
        assert_prepared_engine_agrees(&a4, || adversaries::random(&a4, [3], seed), 80, seed);
    }
    let a12 = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    assert_prepared_engine_agrees(&a12, || adversaries::random(&a12, [0, 1, 4], 2), 50, 7);
    assert_prepared_engine_agrees(&a12, || adversaries::two_faced(&a12, [0, 1, 4], 2), 50, 7);
    let a36 = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    let faulty = [0usize, 1, 2, 3, 4, 12, 24];
    assert_prepared_engine_agrees(&a36, || adversaries::random(&a36, faulty, 9), 30, 13);
}

#[test]
fn batched_sweep_matches_looped_runs_on_a4() {
    let algo = CounterBuilder::corollary1(1, 4).unwrap().build().unwrap();
    let horizon = algo.stabilization_bound() + 64;
    let scenarios = Scenario::seeds(0..8);
    let report = Batch::new(&algo, horizon).run(&scenarios, |s: &Scenario<CounterState>| {
        adversaries::two_faced(&algo, [2], s.seed)
    });
    assert_eq!(report.outcomes.len(), 8);
    for scenario in &scenarios {
        let mut sim = Simulation::new(
            &algo,
            adversaries::two_faced(&algo, [2], scenario.seed),
            scenario.seed,
        );
        let expect = sim.run_until_stable(horizon);
        assert_eq!(
            report.outcomes[scenario.seed as usize].result, expect,
            "verdict divergence at seed {}",
            scenario.seed
        );
    }
    // And the sweep must confirm Theorem 1 wholesale.
    let summary = report.summary();
    assert_eq!(summary.stabilized, 8);
    assert!(summary.worst <= algo.stabilization_bound());
}
