//! Equivalence gate on the real constructions, in its post-`reference_step`
//! form: the first-generation oracle engine is gone (its bitwise gate was
//! green from PR 1 through PR 2), and the remaining self-check is
//! **batched-vs-single-step** — the [`PreparedProtocol`] fast path must
//! reproduce the plain zero-copy step bitwise at every level of the
//! recursion, and the batched sweep must agree with looped single runs.

use synchronous_counting::core::{Algorithm, CounterBuilder, CounterState};
use synchronous_counting::protocol::{BitVec, Counter};
use synchronous_counting::sim::{adversaries, Adversary, Batch, Scenario, Simulation};

fn encode_honest(
    algo: &Algorithm,
    sim: &Simulation<'_, Algorithm, impl Adversary<CounterState>>,
) -> BitVec {
    let mut bits = BitVec::new();
    for &id in sim.honest() {
        algo.encode_state(id, &sim.states()[id.index()], &mut bits);
    }
    bits
}

/// The batched-vs-single-step self-check: the hoisted-vote fast path
/// (`step_prepared`) must agree bitwise with the plain step under the same
/// seeds, round for round.
fn assert_prepared_engine_agrees<A, F>(algo: &Algorithm, make_adversary: F, rounds: u64, seed: u64)
where
    A: Adversary<CounterState>,
    F: Fn() -> A,
{
    let mut prepared = Simulation::new(algo, make_adversary(), seed);
    let mut plain = Simulation::new(algo, make_adversary(), seed);
    for round in 0..rounds {
        prepared.step_prepared();
        plain.step();
        assert_eq!(
            prepared.states(),
            plain.states(),
            "prepared-path divergence at round {round} (seed {seed})"
        );
        assert_eq!(
            encode_honest(algo, &prepared),
            encode_honest(algo, &plain),
            "prepared-path bitwise divergence at round {round} (seed {seed})"
        );
    }
}

#[test]
fn a4_prepared_path_replays_bitwise_across_adversaries() {
    let algo = CounterBuilder::corollary1(1, 2).unwrap().build().unwrap();
    for seed in [0u64, 1, 17] {
        assert_prepared_engine_agrees(&algo, || adversaries::crash(&algo, [1], seed), 80, seed);
        assert_prepared_engine_agrees(&algo, || adversaries::random(&algo, [2], seed), 80, seed);
        assert_prepared_engine_agrees(&algo, || adversaries::two_faced(&algo, [0], seed), 80, seed);
    }
}

#[test]
fn a12_prepared_path_replays_bitwise_under_equivocation() {
    let algo = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    assert_prepared_engine_agrees(
        &algo,
        || adversaries::two_faced(&algo, [0, 1, 4], 5),
        60,
        11,
    );
    assert_prepared_engine_agrees(&algo, || adversaries::random(&algo, [0, 1, 4], 5), 60, 11);
    assert_prepared_engine_agrees(&algo, || adversaries::replay([0, 1, 4], 3), 60, 11);
}

#[test]
fn a36_prepared_path_replays_bitwise() {
    let a36 = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    let faulty = [0usize, 1, 2, 3, 4, 12, 24];
    assert_prepared_engine_agrees(&a36, || adversaries::random(&a36, faulty, 9), 30, 13);
}

#[test]
fn batched_sweep_matches_looped_runs_on_a4() {
    let algo = CounterBuilder::corollary1(1, 4).unwrap().build().unwrap();
    let horizon = algo.stabilization_bound() + 64;
    let scenarios = Scenario::seeds(0..8);
    let report = Batch::new(&algo, horizon).run(&scenarios, |s: &Scenario<CounterState>| {
        adversaries::two_faced(&algo, [2], s.seed)
    });
    assert_eq!(report.outcomes.len(), 8);
    for scenario in &scenarios {
        let mut sim = Simulation::new(
            &algo,
            adversaries::two_faced(&algo, [2], scenario.seed),
            scenario.seed,
        );
        let expect = sim.run_until_stable(horizon);
        assert_eq!(
            report.outcomes[scenario.seed as usize].result, expect,
            "verdict divergence at seed {}",
            scenario.seed
        );
    }
    // And the sweep must confirm Theorem 1 wholesale.
    let summary = report.summary();
    assert_eq!(summary.stabilized, 8);
    assert!(summary.worst <= algo.stabilization_bound());
}
