//! Cross-validation of the model checker against the simulator: an
//! algorithm the verifier certifies must stabilise in simulation within the
//! verified exact worst case, from *every* initial configuration; an
//! algorithm the verifier rejects must exhibit a non-stabilising execution
//! under some adversary.

use synchronous_counting::core::{Algorithm, CounterState, LutCounter, LutSpec};
use synchronous_counting::sim::{adversaries, Simulation};
use synchronous_counting::verifier::{synthesize, verify, SynthesisOutcome, Verdict};

fn follow_leader() -> LutSpec {
    LutSpec {
        n: 2,
        f: 0,
        c: 2,
        states: 2,
        transition: vec![vec![1, 0, 1, 0], vec![1, 0, 1, 0]],
        output: vec![vec![0, 1], vec![0, 1]],
        stabilization_bound: 1,
    }
}

#[test]
fn verified_time_is_an_upper_bound_for_every_execution() {
    let lut = LutCounter::new(follow_leader()).unwrap();
    let Verdict::Stabilizes { worst_case_time } = verify(&lut).unwrap() else {
        panic!("follow-leader must verify");
    };
    let algo = Algorithm::lut(follow_leader()).unwrap();
    for s0 in 0..2u8 {
        for s1 in 0..2u8 {
            let states = vec![CounterState::Lut(s0), CounterState::Lut(s1)];
            let mut sim = Simulation::with_states(&algo, adversaries::none(), states, 0);
            let report = sim.run_until_stable(64).unwrap();
            assert!(
                report.stabilization_round <= worst_case_time,
                "simulation ({s0},{s1}) stabilised at {} > verified {worst_case_time}",
                report.stabilization_round
            );
        }
    }
}

#[test]
fn synthesized_counters_run_correctly_on_the_simulator() {
    let report = synthesize(2, 0, 2, 2, 11, 5_000).unwrap();
    let SynthesisOutcome::Found {
        counter,
        worst_case_time,
    } = report.outcome
    else {
        panic!("trivial instance must synthesise");
    };
    let algo = Algorithm::lut(counter.spec().clone()).unwrap();
    for seed in 0..8 {
        let mut sim = Simulation::new(&algo, adversaries::none(), seed);
        let report = sim.run_until_stable(64).unwrap();
        assert!(report.stabilization_round <= worst_case_time);
    }
}

#[test]
fn rejected_algorithm_fails_in_simulation_too() {
    // Quorumless max-following with f = 1: the verifier rejects it; the
    // two-faced equivocator realises the rejection as an actual
    // non-stabilising (or at least bound-violating) execution.
    let rows: Vec<u8> = (0..16u32)
        .map(|index| {
            let max = (0..4).map(|u| (index >> u & 1) as u8).max().unwrap();
            (max + 1) % 2
        })
        .collect();
    let spec = LutSpec {
        n: 4,
        f: 1,
        c: 2,
        states: 2,
        transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
        output: vec![vec![0, 1]; 4],
        stabilization_bound: 0,
    };
    let lut = LutCounter::new(spec.clone()).unwrap();
    assert!(matches!(verify(&lut).unwrap(), Verdict::Fails { .. }));

    // Per-receiver random states realise the checker's counterexample:
    // when every correct node holds 0, sending 1 to *some* receivers and 0
    // to others splits the max-followers permanently. (The two-faced donor
    // strategy cannot: donor states are honest states, so it cannot inject
    // a 1 once the correct nodes agree on 0.)
    let algo = Algorithm::lut(spec).unwrap();
    let mut any_failure = false;
    for seed in 0..20 {
        let adv = adversaries::random(&algo, [0], seed);
        let mut sim = Simulation::new(&algo, adv, seed);
        if sim.run_until_stable(512).is_err() {
            any_failure = true;
            break;
        }
    }
    assert!(
        any_failure,
        "verifier rejected the algorithm but no adversary run broke it — \
         the two tools disagree"
    );
}
