//! Cross-validation of the model checker against the simulator — and of the
//! bitset game core against the retained first-generation checker: an
//! algorithm the verifier certifies must stabilise in simulation within the
//! verified exact worst case, from *every* initial configuration; an
//! algorithm the verifier rejects must exhibit a non-stabilising execution
//! under some adversary; and on random small instances the two checker
//! generations must return bitwise-identical verdicts, witnesses included.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use synchronous_counting::core::{Algorithm, CounterState, LutCounter, LutSpec};
use synchronous_counting::sim::{adversaries, Simulation};
use synchronous_counting::verifier::{
    analyze, reference, synthesize, verify, SynthesisOutcome, Verdict, Witness,
};

fn follow_leader() -> LutSpec {
    LutSpec {
        n: 2,
        f: 0,
        c: 2,
        states: 2,
        transition: vec![vec![1, 0, 1, 0], vec![1, 0, 1, 0]],
        output: vec![vec![0, 1], vec![0, 1]],
        stabilization_bound: 1,
    }
}

#[test]
fn verified_time_is_an_upper_bound_for_every_execution() {
    let lut = LutCounter::new(follow_leader()).unwrap();
    let Verdict::Stabilizes { worst_case_time } = verify(&lut).unwrap() else {
        panic!("follow-leader must verify");
    };
    let algo = Algorithm::lut(follow_leader()).unwrap();
    for s0 in 0..2u8 {
        for s1 in 0..2u8 {
            let states = vec![CounterState::Lut(s0), CounterState::Lut(s1)];
            let mut sim = Simulation::with_states(&algo, adversaries::none(), states, 0);
            let report = sim.run_until_stable(64).unwrap();
            assert!(
                report.stabilization_round <= worst_case_time,
                "simulation ({s0},{s1}) stabilised at {} > verified {worst_case_time}",
                report.stabilization_round
            );
        }
    }
}

#[test]
fn synthesized_counters_run_correctly_on_the_simulator() {
    let report = synthesize(2, 0, 2, 2, 11, 5_000).unwrap();
    let SynthesisOutcome::Found {
        counter,
        worst_case_time,
    } = report.outcome
    else {
        panic!("trivial instance must synthesise");
    };
    let algo = Algorithm::lut(counter.spec().clone()).unwrap();
    for seed in 0..8 {
        let mut sim = Simulation::new(&algo, adversaries::none(), seed);
        let report = sim.run_until_stable(64).unwrap();
        assert!(report.stabilization_round <= worst_case_time);
    }
}

/// A random table-driven counter, small enough for the reference checker's
/// seed limits (`n ≤ 4`, `|X| ≤ 4`).
fn random_lut(n: usize, f: usize, states: u8, c: u64, seed: u64) -> LutCounter {
    let mut rng = SmallRng::seed_from_u64(seed);
    let rows = (states as usize).pow(n as u32);
    let transition: Vec<Vec<u8>> = (0..n)
        .map(|_| (0..rows).map(|_| rng.random_range(0..states)).collect())
        .collect();
    let output: Vec<Vec<u64>> = (0..n)
        .map(|_| (0..states).map(|_| rng.random_range(0..c)).collect())
        .collect();
    LutCounter::new(LutSpec {
        n,
        f,
        c,
        states,
        transition,
        output,
        stabilization_bound: 0,
    })
    .unwrap()
}

/// The witness must be replayable from its own data alone: every recorded
/// transition satisfies the transition function with the recorded Byzantine
/// values substituted, the lasso closes, and the script wraps around it.
fn assert_witness_replayable(lut: &LutCounter, witness: &Witness) {
    assert!(witness.configs.len() >= 2);
    assert_eq!(witness.byz.len(), witness.configs.len() - 1);
    assert_eq!(
        witness.configs.last(),
        witness.configs.get(witness.cycle_start)
    );
    for t in 0..witness.byz.len() {
        for (hi, &node) in witness.honest.iter().enumerate() {
            let mut received = vec![0u8; lut.spec().n];
            for (hj, &hv) in witness.honest.iter().enumerate() {
                received[hv] = witness.configs[t][hj];
            }
            for (g, &fv) in witness.fault_set.iter().enumerate() {
                received[fv] = witness.byz[t][hi][g];
            }
            assert_eq!(
                lut.next(node, &received),
                witness.configs[t + 1][hi],
                "transition {t} node {node} inconsistent"
            );
        }
    }
    let steps = witness.byz.len() as u64;
    let cycle = steps - witness.cycle_start as u64;
    for j in 0..cycle {
        assert_eq!(
            witness.script_at(steps + j),
            witness.script_at(witness.cycle_start as u64 + j),
            "script does not wrap around the lasso"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The bitset game core and the retained reference checker agree
    /// bitwise on random small LUTs: identical `Verdict`s (exact
    /// `worst_case_time`, same failing fault set, value-for-value equal
    /// replayable witnesses) and identical `AnalysisSummary`s (the
    /// synthesis scoring function), across fault-free and `f = 1`
    /// instances.
    #[test]
    fn bitset_core_matches_reference_checker(
        shape in 0usize..5,
        states in 2u8..=4,
        c in 2u64..=3,
        seed in proptest::any::<u64>(),
    ) {
        let (n, f) = [(1, 0), (2, 0), (3, 0), (4, 0), (4, 1)][shape];
        let c = c.min(u64::from(states));
        let lut = random_lut(n, f, states, c, seed);

        let summary = analyze(&lut).unwrap();
        prop_assert_eq!(&summary, &reference::analyze(&lut).unwrap());

        let verdict = verify(&lut).unwrap();
        prop_assert_eq!(&verdict, &reference::verify(&lut).unwrap());
        match &verdict {
            Verdict::Stabilizes { worst_case_time } => {
                prop_assert_eq!(*worst_case_time, summary.worst_time);
                prop_assert_eq!(summary.coverage, 1.0);
            }
            Verdict::Fails { witness, .. } => assert_witness_replayable(&lut, witness),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Instances big enough for the parallel gate (`|X|^n = 8^4 = 4096 ≥
    /// 2^12`, five fault sets): on multi-core machines `analyze` fans the
    /// fault-set games out with `std::thread::scope`, and the chunked fold
    /// must still be bitwise identical to the reference checker's serial
    /// sweep — same coverage, same worst time, same *first* failing fault
    /// set. (On a single core this degenerates to the serial path; the
    /// equality assertion is identical either way.)
    #[test]
    fn parallel_fan_out_matches_reference_checker(seed in proptest::any::<u64>()) {
        let lut = random_lut(4, 1, 8, 2, seed);
        prop_assert_eq!(
            analyze(&lut).unwrap(),
            reference::analyze(&lut).unwrap()
        );
    }
}

#[test]
fn rejected_algorithm_fails_in_simulation_too() {
    // Quorumless max-following with f = 1: the verifier rejects it; the
    // two-faced equivocator realises the rejection as an actual
    // non-stabilising (or at least bound-violating) execution.
    let rows: Vec<u8> = (0..16u32)
        .map(|index| {
            let max = (0..4).map(|u| (index >> u & 1) as u8).max().unwrap();
            (max + 1) % 2
        })
        .collect();
    let spec = LutSpec {
        n: 4,
        f: 1,
        c: 2,
        states: 2,
        transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
        output: vec![vec![0, 1]; 4],
        stabilization_bound: 0,
    };
    let lut = LutCounter::new(spec.clone()).unwrap();
    assert!(matches!(verify(&lut).unwrap(), Verdict::Fails { .. }));

    // Per-receiver random states realise the checker's counterexample:
    // when every correct node holds 0, sending 1 to *some* receivers and 0
    // to others splits the max-followers permanently. (The two-faced donor
    // strategy cannot: donor states are honest states, so it cannot inject
    // a 1 once the correct nodes agree on 0.)
    let algo = Algorithm::lut(spec).unwrap();
    let mut any_failure = false;
    for seed in 0..20 {
        let adv = adversaries::random(&algo, [0], seed);
        let mut sim = Simulation::new(&algo, adv, seed);
        if sim.run_until_stable(512).is_err() {
            any_failure = true;
            break;
        }
    }
    assert!(
        any_failure,
        "verifier rejected the algorithm but no adversary run broke it — \
         the two tools disagree"
    );
}
