//! The strongest cross-validation in the workspace: the model checker's
//! failure **witness** — a lasso-shaped execution with explicit Byzantine
//! values per (round, receiver) — is replayed on the real simulator via a
//! scripted adversary, and the live system follows the predicted
//! configurations exactly, forever failing to stabilise.

use synchronous_counting::core::{Algorithm, CounterState, LutCounter, LutSpec};
use synchronous_counting::protocol::NodeId;
use synchronous_counting::sim::{Adversary, MessageSource, RoundContext, Simulation, StatePool};
use synchronous_counting::verifier::{verify, Verdict, Witness};

/// Adversary that plays back a witness script.
struct Scripted {
    witness: Witness,
    faulty: Vec<NodeId>,
}

impl Scripted {
    fn new(witness: Witness) -> Self {
        let faulty = witness.fault_set.iter().map(|&v| NodeId::new(v)).collect();
        Scripted { witness, faulty }
    }
}

impl Adversary<CounterState> for Scripted {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn message(
        &mut self,
        from: NodeId,
        to: NodeId,
        ctx: &RoundContext<'_, CounterState>,
        pool: &mut StatePool<CounterState>,
    ) -> MessageSource {
        let step = self.witness.script_at(ctx.round);
        let h = self
            .witness
            .honest
            .iter()
            .position(|&v| v == to.index())
            .expect("script covers every correct receiver");
        let g = self
            .witness
            .fault_set
            .iter()
            .position(|&v| v == from.index())
            .expect("script covers every faulty sender");
        pool.fabricate(CounterState::Lut(step[h][g]))
    }
}

fn follow_max() -> LutSpec {
    let rows: Vec<u8> = (0..16u32)
        .map(|index| {
            let max = (0..4).map(|u| (index >> u & 1) as u8).max().unwrap();
            (max + 1) % 2
        })
        .collect();
    LutSpec {
        n: 4,
        f: 1,
        c: 2,
        states: 2,
        transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
        output: vec![vec![0, 1]; 4],
        stabilization_bound: 0,
    }
}

#[test]
fn checker_witness_replays_exactly_on_the_simulator() {
    let spec = follow_max();
    let lut = LutCounter::new(spec.clone()).unwrap();
    let Verdict::Fails { witness, .. } = verify(&lut).unwrap() else {
        panic!("follow-max must fail");
    };

    // Start the simulator in the witness's first configuration.
    let algo = Algorithm::lut(spec).unwrap();
    let mut states = vec![CounterState::Lut(0); 4];
    for (hi, &node) in witness.honest.iter().enumerate() {
        states[node] = CounterState::Lut(witness.configs[0][hi]);
    }
    let adversary = Scripted::new(witness.clone());
    let mut sim = Simulation::with_states(&algo, adversary, states, 0);

    // Follow the script far beyond the lasso length: the live states must
    // match the predicted configurations at every single round.
    let steps = witness.byz.len();
    let cycle = steps - witness.cycle_start;
    for t in 0..(steps + 3 * cycle) as u64 {
        let idx = if (t as usize) < steps {
            t as usize
        } else {
            witness.cycle_start + ((t as usize - witness.cycle_start) % cycle)
        };
        for (hi, &node) in witness.honest.iter().enumerate() {
            assert_eq!(
                sim.states()[node],
                CounterState::Lut(witness.configs[idx][hi]),
                "round {t}: simulator diverged from the witness at node {node}"
            );
        }
        sim.step();
    }

    // And, of course, the scripted execution never stabilises.
    let trace = sim.run_trace(64);
    assert!(
        synchronous_counting::sim::detect_stabilization(&trace, 2, 8).is_err(),
        "witness execution must not count correctly"
    );
}

#[test]
fn witness_script_wraps_around_the_lasso() {
    let lut = LutCounter::new(follow_max()).unwrap();
    let Verdict::Fails { witness, .. } = verify(&lut).unwrap() else {
        panic!();
    };
    let steps = witness.byz.len() as u64;
    let cycle = steps - witness.cycle_start as u64;
    // The script at (steps + k·cycle + j) equals the script at
    // (cycle_start + j) for any k.
    for j in 0..cycle {
        let base = witness.script_at(witness.cycle_start as u64 + j);
        assert_eq!(witness.script_at(steps + j), base);
        assert_eq!(witness.script_at(steps + cycle + j), base);
    }
}
