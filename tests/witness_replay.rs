//! The strongest cross-validation in the workspace: the model checker's
//! failure **witness** — a lasso-shaped execution with explicit Byzantine
//! values per (round, receiver) — is replayed on the real simulator via the
//! library-grade scripted adversary (`sc_attack::ScriptedAdversary`), and
//! the live system follows the predicted configurations exactly, forever
//! failing to stabilise.

use synchronous_counting::attack::{Script, ScriptedAdversary};
use synchronous_counting::core::{Algorithm, CounterState, LutCounter, LutSpec};
use synchronous_counting::sim::Simulation;
use synchronous_counting::verifier::{verify, Verdict};

fn follow_max() -> LutSpec {
    let rows: Vec<u8> = (0..16u32)
        .map(|index| {
            let max = (0..4).map(|u| (index >> u & 1) as u8).max().unwrap();
            (max + 1) % 2
        })
        .collect();
    LutSpec {
        n: 4,
        f: 1,
        c: 2,
        states: 2,
        transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
        output: vec![vec![0, 1]; 4],
        stabilization_bound: 0,
    }
}

#[test]
fn checker_witness_replays_exactly_on_the_simulator() {
    let spec = follow_max();
    let lut = LutCounter::new(spec.clone()).unwrap();
    let Verdict::Fails { witness, .. } = verify(&lut).unwrap() else {
        panic!("follow-max must fail");
    };

    // Start the simulator in the witness's first configuration.
    let algo = Algorithm::lut(spec).unwrap();
    let mut states = vec![CounterState::Lut(0); 4];
    for (hi, &node) in witness.honest.iter().enumerate() {
        states[node] = CounterState::Lut(witness.configs[0][hi]);
    }
    // The witness imports losslessly as a script of raw moves; the
    // Algorithm's raw vocabulary is exact for LUT states, so the scripted
    // adversary fabricates precisely the witness's Byzantine values.
    let script = Script::from_witness(&witness);
    let adversary = ScriptedAdversary::new(&script, &algo);
    let mut sim = Simulation::with_states(&algo, adversary, states, 0);

    // Follow the script far beyond the lasso length: the live states must
    // match the predicted configurations at every single round.
    let steps = witness.byz.len();
    let cycle = steps - witness.cycle_start;
    for t in 0..(steps + 3 * cycle) as u64 {
        let idx = if (t as usize) < steps {
            t as usize
        } else {
            witness.cycle_start + ((t as usize - witness.cycle_start) % cycle)
        };
        for (hi, &node) in witness.honest.iter().enumerate() {
            assert_eq!(
                sim.states()[node],
                CounterState::Lut(witness.configs[idx][hi]),
                "round {t}: simulator diverged from the witness at node {node}"
            );
        }
        sim.step();
    }

    // And, of course, the scripted execution never stabilises.
    let trace = sim.run_trace(64);
    assert!(
        synchronous_counting::sim::detect_stabilization(&trace, 2, 8).is_err(),
        "witness execution must not count correctly"
    );
}

#[test]
fn witness_script_wraps_around_the_lasso() {
    let lut = LutCounter::new(follow_max()).unwrap();
    let Verdict::Fails { witness, .. } = verify(&lut).unwrap() else {
        panic!();
    };
    let steps = witness.byz.len() as u64;
    let cycle = steps - witness.cycle_start as u64;
    // The script at (steps + k·cycle + j) equals the script at
    // (cycle_start + j) for any k — both on the witness itself and on its
    // imported `Script` form.
    let script = Script::from_witness(&witness);
    assert_eq!(script.len() as u64, steps);
    assert_eq!(script.cycle_start(), witness.cycle_start);
    for j in 0..cycle {
        let base = witness.script_at(witness.cycle_start as u64 + j);
        assert_eq!(witness.script_at(steps + j), base);
        assert_eq!(witness.script_at(steps + cycle + j), base);
        let base_idx = script.index_at(witness.cycle_start as u64 + j);
        assert_eq!(script.index_at(steps + j), base_idx);
        assert_eq!(script.index_at(steps + cycle + j), base_idx);
    }
}

#[test]
fn scripted_replay_rides_the_early_decision_exit() {
    // The promoted adversary snapshots (the private test-local `Scripted`
    // it replaced could not), so a witness replay is decided by the cycle
    // detector instead of executing a long horizon round for round.
    let spec = follow_max();
    let lut = LutCounter::new(spec.clone()).unwrap();
    let Verdict::Fails { witness, .. } = verify(&lut).unwrap() else {
        panic!();
    };
    let algo = Algorithm::lut(spec).unwrap();
    let mut states = vec![CounterState::Lut(0); 4];
    for (hi, &node) in witness.honest.iter().enumerate() {
        states[node] = CounterState::Lut(witness.configs[0][hi]);
    }
    let script = Script::from_witness(&witness);
    let horizon = 1 << 14;
    let mut early = Simulation::with_states(
        &algo,
        ScriptedAdversary::new(&script, &algo),
        states.clone(),
        0,
    );
    let (verdict, exit) = early.run_until_stable_early(horizon);
    assert!(
        matches!(exit, synchronous_counting::sim::ExitReason::Cycle { decided_at, .. }
            if decided_at < horizon / 4),
        "scripted lasso must be decided early, got {exit:?}"
    );
    // Bitwise-identical verdict to the full-horizon run.
    let mut full =
        Simulation::with_states(&algo, ScriptedAdversary::new(&script, &algo), states, 0);
    assert_eq!(verdict, full.run_until_stable(horizon));
    assert!(verdict.is_err(), "witness executions never stabilise");
}
