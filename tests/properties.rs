//! Property-based tests on whole-system invariants.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use synchronous_counting::consensus::{PkRegisters, INFINITY};
use synchronous_counting::core::{CounterBuilder, CounterState};
use synchronous_counting::protocol::{BitVec, Counter, NodeId, SyncProtocol};
use synchronous_counting::sim::{adversaries, Simulation};

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Self-stabilisation quantifies over all initial configurations: the
    /// A(4,1) counter must stabilise within its bound from proptest-chosen
    /// states under an equivocating adversary.
    #[test]
    fn a4_stabilizes_from_arbitrary_configurations(
        init_seed in any::<u64>(),
        faulty in 0usize..4,
        adv_seed in any::<u64>(),
    ) {
        let algo = CounterBuilder::corollary1(1, 4).unwrap().build().unwrap();
        let mut rng = SmallRng::seed_from_u64(init_seed);
        let states: Vec<CounterState> =
            (0..4).map(|i| algo.random_state(NodeId::new(i), &mut rng)).collect();
        let adv = adversaries::two_faced(&algo, [faulty], adv_seed);
        let mut sim = Simulation::with_states(&algo, adv, states, 0);
        let report = sim.run_until_stable(algo.stabilization_bound() + 64).unwrap();
        prop_assert!(report.stabilization_round <= algo.stabilization_bound());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Codec round-trip + exact width for arbitrary representable states of
    /// the two-level stack.
    #[test]
    fn codec_round_trip_is_lossless(seed in any::<u64>(), node in 0usize..12) {
        let algo = CounterBuilder::corollary1(1, 2).unwrap().boost(3).unwrap().build().unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        let id = NodeId::new(node);
        let state = algo.random_state(id, &mut rng);
        let mut bits = BitVec::new();
        algo.encode_state(id, &state, &mut bits);
        prop_assert_eq!(bits.len() as u32, algo.state_bits());
        let back = algo.decode_state(id, &mut bits.reader()).unwrap();
        prop_assert_eq!(back, state);
    }

    /// Lemma 5 as a property: agreeing registers with N−F supporting votes
    /// survive any slot of the counting phase king, for arbitrary Byzantine
    /// vote stuffing.
    #[test]
    fn phase_king_agreement_persists(
        x in 0u64..8,
        slot in 0u64..9,
        byz in proptest::collection::vec(prop_oneof![0u64..8, Just(INFINITY)], 0..1),
        king in prop_oneof![0u64..8, Just(INFINITY)],
    ) {
        use synchronous_counting::consensus::instructions::{execute_slot, IncrementMode};
        use synchronous_counting::consensus::PhaseKingParams;
        use synchronous_counting::protocol::Tally;

        let params = PhaseKingParams::new(4, 1, 8).unwrap();
        // 3 correct nodes agree on x (d = 1); one Byzantine vote is free.
        let mut tally: Tally = [x, x, x].into_iter().collect();
        tally.extend(byz.iter().copied());
        let regs = PkRegisters::new(x, true);
        let next = execute_slot(&params, regs, slot, &tally, king, IncrementMode::Counting);
        prop_assert_eq!(next.a, (x + 1) % 8, "slot {} broke agreement", slot);
        prop_assert!(next.d);
    }
}

/// Determinism: identical initial configurations and adversaries yield
/// identical executions regardless of the simulator's protocol-RNG seed.
#[test]
fn deterministic_counters_are_reproducible() {
    let algo = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    let mut rng = SmallRng::seed_from_u64(1);
    let states: Vec<CounterState> = (0..12)
        .map(|i| algo.random_state(NodeId::new(i), &mut rng))
        .collect();
    let mut a =
        Simulation::with_states(&algo, adversaries::crash(&algo, [5], 3), states.clone(), 10);
    let mut b = Simulation::with_states(&algo, adversaries::crash(&algo, [5], 3), states, 99);
    a.run(200);
    b.run(200);
    assert_eq!(a.states(), b.states());
}
