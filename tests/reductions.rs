//! Counting → consensus (§1): a self-stabilising Byzantine counter clocks
//! repeated phase-king executions, yielding self-stabilising repeated
//! consensus — here over a *real* 1-resilient counter with a live Byzantine
//! node, spanning sc-core, sc-consensus and sc-sim.

use synchronous_counting::consensus::ClockedConsensus;
use synchronous_counting::core::CounterBuilder;
use synchronous_counting::protocol::Counter;
use synchronous_counting::sim::{adversaries, Simulation};

/// A(4,1) counting modulo 18 = 2·9, a multiple of 3(F+2) = 9 as the clocked
/// reduction requires.
fn counter_mod_18() -> synchronous_counting::core::Algorithm {
    CounterBuilder::corollary1(1, 18).unwrap().build().unwrap()
}

#[test]
fn clocked_consensus_satisfies_validity_after_stabilisation() {
    let counter = counter_mod_18();
    let bound = counter.stabilization_bound();
    let inputs = vec![1, 1, 1, 1];
    let cc = ClockedConsensus::new(counter, 1, 2, inputs).unwrap();
    let adv = adversaries::random(&cc, [2], 4);
    let mut sim = Simulation::new(&cc, adv, 4);
    sim.run(bound + 64); // let the underlying counter stabilise

    let mut decisions = 0;
    for _ in 0..3 * cc.slots() {
        sim.step();
        for &v in sim.honest() {
            if let Some(d) = cc.decision(v, &sim.states()[v.index()]) {
                assert_eq!(d, 1, "validity violated at node {v}");
                decisions += 1;
            }
        }
    }
    assert!(
        decisions >= 6,
        "expected decisions from at least two full cycles"
    );
}

#[test]
fn clocked_consensus_satisfies_agreement_with_mixed_inputs() {
    let counter = counter_mod_18();
    let bound = counter.stabilization_bound();
    let cc = ClockedConsensus::new(counter, 1, 2, vec![0, 1, 1, 0]).unwrap();
    for seed in [3u64, 9] {
        let adv = adversaries::two_faced(&cc, [1], seed);
        let mut sim = Simulation::new(&cc, adv, seed);
        sim.run(bound + 64);
        for _ in 0..3 * cc.slots() {
            sim.step();
            let decisions: Vec<u64> = sim
                .honest()
                .iter()
                .filter_map(|&v| cc.decision(v, &sim.states()[v.index()]))
                .collect();
            assert!(
                decisions.windows(2).all(|w| w[0] == w[1]),
                "agreement violated (seed {seed}): {decisions:?}"
            );
        }
    }
}

#[test]
fn clocked_consensus_slots_follow_the_counter() {
    let counter = counter_mod_18();
    let bound = counter.stabilization_bound();
    let cc = ClockedConsensus::new(counter, 1, 2, vec![0; 4]).unwrap();
    let adv = adversaries::crash(&cc, [3], 1);
    let mut sim = Simulation::new(&cc, adv, 1);
    sim.run(bound + 64);
    // After stabilisation all correct nodes sit in the same slot and the
    // slot increments modulo 3(F+2).
    let mut last: Option<u64> = None;
    for _ in 0..20 {
        let slots: Vec<u64> = sim
            .honest()
            .iter()
            .map(|&v| cc.slot(v, &sim.states()[v.index()]))
            .collect();
        assert!(
            slots.windows(2).all(|w| w[0] == w[1]),
            "slot split: {slots:?}"
        );
        if let Some(prev) = last {
            assert_eq!(slots[0], (prev + 1) % cc.slots());
        }
        last = Some(slots[0]);
        sim.step();
    }
}
