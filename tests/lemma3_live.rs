//! Lemma 3 verified live: within `T(A) + c_k − τ` rounds of a real
//! execution there is a window of ≥ τ consecutive rounds in which all
//! correct nodes observe the **same** slot counter `R`, and `R` increments
//! by one modulo τ each round — the common clock that drives the phase
//! king in §3.4–3.5.

use synchronous_counting::core::CounterBuilder;
use synchronous_counting::protocol::{Counter, MessageView};
use synchronous_counting::sim::{adversaries, Simulation};

#[test]
fn common_incrementing_slot_window_appears_within_the_bound() {
    let algo = CounterBuilder::corollary1(1, 8).unwrap().build().unwrap();
    let boosted = algo.as_boosted_counter().unwrap();
    let tau = boosted.params().tau();
    let bound = algo.stabilization_bound();

    for seed in [4u64, 29] {
        // A crash-faulty node: its frozen state is what honest observers see
        // (observation uses the honest broadcast vector, which is the only
        // thing an external instrument can reconstruct).
        let adv = adversaries::crash(&algo, [2], seed);
        let mut sim = Simulation::new(&algo, adv, seed);

        // Record, per round, every honest node's observed R. Observation is
        // a pure function of the received vector; honest nodes all read the
        // same broadcast here (the crash adversary does not equivocate), so
        // one observation per round suffices — but we still check all nodes
        // agree by observing from the same vector per node.
        let mut run = 0u64; // current streak of "common and incrementing"
        let mut achieved = false;
        let mut last: Option<u64> = None;
        for round in 0..bound {
            let view = MessageView::new(sim.states(), &[]);
            let obs = boosted.observe(&view);
            let good_increment = match last {
                Some(prev) => obs.slot == (prev + 1) % tau,
                None => false,
            };
            run = if good_increment { run + 1 } else { 0 };
            if run + 1 >= tau {
                achieved = true;
                break;
            }
            last = Some(obs.slot);
            let _ = round;
            sim.step();
        }
        assert!(
            achieved,
            "seed {seed}: no common incrementing R-window of length τ = {tau} \
             within the bound {bound}"
        );
    }
}

#[test]
fn observation_matches_leader_pointer_structure() {
    // The elected leader B is always one of the m candidates, and the slot
    // is always in [τ].
    let algo = CounterBuilder::corollary1(1, 8).unwrap().build().unwrap();
    let boosted = algo.as_boosted_counter().unwrap();
    let p = boosted.params();
    let adv = adversaries::random(&algo, [1], 5);
    let mut sim = Simulation::new(&algo, adv, 5);
    for _ in 0..300 {
        let view = MessageView::new(sim.states(), &[]);
        let obs = boosted.observe(&view);
        assert!(obs.leader < p.m());
        assert!(obs.slot < p.tau());
        assert_eq!(obs.block_support.len(), p.k());
        assert!(obs.block_support.iter().all(|&b| b < p.m() as u64));
        sim.step();
    }
}
