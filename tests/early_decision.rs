//! Early-decision soundness on the real constructions: verdicts of the
//! cycle-detecting sweep mode must be **bitwise identical** to full-horizon
//! verdicts on the recursion stack and on the pulling counter, the cycle
//! path must actually fire where the configuration is provably periodic,
//! and RNG-driven plans/strategies must never take the exit.

use synchronous_counting::core::{Algorithm, CounterBuilder};
use synchronous_counting::protocol::Fingerprint;
use synchronous_counting::pulling::{KingPullMode, PullCounter, Pulled, Sampling};
use synchronous_counting::sim::{adversaries, sleeper, Adversary, ExitReason, Simulation};

fn a4() -> Algorithm {
    CounterBuilder::corollary1(1, 2).unwrap().build().unwrap()
}

fn a36() -> Algorithm {
    CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap()
}

fn assert_early_matches_full<A, F>(
    algo: &Algorithm,
    make_adversary: F,
    horizon: u64,
    seed: u64,
    label: &str,
) -> ExitReason
where
    A: Adversary<synchronous_counting::core::CounterState>,
    F: Fn() -> A,
{
    let mut full = Simulation::new(algo, make_adversary(), seed);
    let expect = full.run_until_stable(horizon);
    let mut early = Simulation::new(algo, make_adversary(), seed);
    let (got, exit) = early.run_until_stable_early(horizon);
    assert_eq!(got, expect, "{label}: verdict divergence (seed {seed})");
    let mut prepared = Simulation::new(algo, make_adversary(), seed);
    let (got, prepared_exit) = prepared.run_until_stable_early_prepared(horizon);
    assert_eq!(
        got, expect,
        "{label}: prepared-path verdict divergence (seed {seed})"
    );
    assert_eq!(
        exit, prepared_exit,
        "{label}: exit divergence (seed {seed})"
    );
    exit
}

/// After stabilisation, A(4,1)'s configuration is periodic with the base
/// counter's modulus (2304 = 9·4⁴): the whole joint state re-occurs one
/// inner wrap later. The cycle exit must fire there and cut everything
/// beyond — this is the execution path E1/E3-style soak sweeps ride.
#[test]
fn a4_cycle_exit_fires_and_matches_full_horizon_bitwise() {
    let algo = a4();
    let period = 2304;
    let horizon = 4 * period;
    for (label, seed, exit) in [
        (
            "fault-free",
            1u64,
            assert_early_matches_full(&algo, adversaries::none, horizon, 1, "fault-free"),
        ),
        (
            "crash",
            2,
            assert_early_matches_full(
                &algo,
                || adversaries::crash(&algo, [1], 2),
                horizon,
                2,
                "crash",
            ),
        ),
        (
            "replay",
            3,
            assert_early_matches_full(&algo, || adversaries::replay([2], 3), horizon, 3, "replay"),
        ),
    ] {
        match exit {
            ExitReason::Cycle {
                length, decided_at, ..
            } => {
                assert_eq!(
                    length % period,
                    0,
                    "{label} (seed {seed}): cycle length {length} not a wrap multiple"
                );
                assert!(
                    decided_at < horizon,
                    "{label} (seed {seed}): no rounds saved"
                );
            }
            other => panic!("{label} (seed {seed}): expected cycle exit, got {other:?}"),
        }
    }
}

#[test]
fn a4_sleeper_cycles_only_after_waking() {
    let algo = a4();
    let wake = 200;
    let make = || sleeper(&algo, [3], wake, adversaries::crash(&algo, [3], 5), 5);
    let exit = assert_early_matches_full(&algo, make, 3 * 2304, 9, "sleeper");
    match exit {
        ExitReason::Cycle { start, .. } => assert!(start >= wake, "cycle start {start} < wake"),
        other => panic!("expected post-wake cycle, got {other:?}"),
    }
}

/// On A(36,7) the joint configuration's period (lcm of the level moduli,
/// 34560) exceeds any bound-plus-margin horizon, so the detector must stay
/// silent — this direction guards against *false* recurrences — while the
/// verdicts stay bitwise identical across the adversary suite.
#[test]
fn a36_verdicts_match_across_the_adversary_suite() {
    let algo = a36();
    let faulty = [0usize, 1, 2, 3, 4, 12, 24];
    let horizon = 640;
    let exit = assert_early_matches_full(
        &algo,
        || adversaries::crash(&algo, faulty, 3),
        horizon,
        3,
        "crash",
    );
    assert_eq!(exit, ExitReason::FullHorizon, "crash: no false recurrence");
    let exit = assert_early_matches_full(
        &algo,
        || adversaries::replay(faulty, 3),
        horizon,
        4,
        "replay",
    );
    assert_eq!(exit, ExitReason::FullHorizon, "replay: no false recurrence");
    let exit = assert_early_matches_full(
        &algo,
        || adversaries::two_faced(&algo, faulty, 7),
        horizon,
        5,
        "two-faced",
    );
    assert_eq!(exit, ExitReason::Opaque, "two-faced is RNG-driven");
    let wake = 64;
    let exit = assert_early_matches_full(
        &algo,
        || {
            sleeper(
                &algo,
                [0, 12],
                wake,
                adversaries::crash(&algo, [0, 12], 11),
                11,
            )
        },
        horizon,
        6,
        "sleeper",
    );
    assert_eq!(
        exit,
        ExitReason::FullHorizon,
        "sleeper: no false recurrence"
    );
}

#[test]
fn pulling_counter_full_mode_takes_the_cycle_exit() {
    let algo = CounterBuilder::corollary1(1, 8).unwrap().build().unwrap();
    let pc = PullCounter::from_algorithm(&algo, Sampling::Full).unwrap();
    let pulled = Pulled::new(&pc);
    assert!(pulled.deterministic_transition());
    let horizon = 3 * 2304;
    for seed in [1u64, 4] {
        let mut full = Simulation::new(&pulled, adversaries::none(), seed);
        let expect = full.run_until_stable(horizon);
        let mut early = Simulation::new(&pulled, adversaries::none(), seed);
        let (got, exit) = early.run_until_stable_early(horizon);
        assert_eq!(got, expect, "pulling verdict divergence (seed {seed})");
        assert!(
            matches!(exit, ExitReason::Cycle { .. }),
            "full pulling is deterministic and periodic, got {exit:?} (seed {seed})"
        );
    }
}

#[test]
fn fresh_sampling_plans_never_take_the_early_exit() {
    // Theorem 4's fresh samples draw from the step RNG: the typed marker
    // must disable fingerprinting even under a fault-free adversary.
    let algo = CounterBuilder::corollary1(1, 8).unwrap().build().unwrap();
    let sampling = Sampling::Sampled {
        m: 9,
        king_mode: KingPullMode::All,
        fixed_seed: None,
    };
    let pc = PullCounter::from_algorithm(&algo, sampling).unwrap();
    let pulled = Pulled::new(&pc);
    assert!(!pulled.deterministic_transition());
    let horizon = pc.stabilization_bound() + 64;
    let mut full = Simulation::new(&pulled, adversaries::none(), 2);
    let expect = full.run_until_stable(horizon);
    let mut early = Simulation::new(&pulled, adversaries::none(), 2);
    let (got, exit) = early.run_until_stable_early(horizon);
    assert_eq!(got, expect);
    assert_eq!(exit, ExitReason::Opaque);
}

#[test]
fn pseudo_random_plans_are_typed_deterministic() {
    // Corollary 5 fixes the samples once: the plans are deterministic and
    // the marker must say so (the verdict-equality property then holds by
    // the same machinery as the full mode).
    let algo = CounterBuilder::corollary1(1, 8).unwrap().build().unwrap();
    let sampling = Sampling::Sampled {
        m: 9,
        king_mode: KingPullMode::All,
        fixed_seed: Some(42),
    };
    let pc = PullCounter::from_algorithm(&algo, sampling).unwrap();
    let pulled = Pulled::new(&pc);
    assert!(pulled.deterministic_transition());
    let horizon = pc.stabilization_bound() + 64;
    let mut full = Simulation::new(&pulled, adversaries::none(), 3);
    let expect = full.run_until_stable(horizon);
    let mut early = Simulation::new(&pulled, adversaries::none(), 3);
    let (got, _exit) = early.run_until_stable_early(horizon);
    assert_eq!(got, expect);
}
