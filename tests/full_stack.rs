//! Cross-crate integration: the full recursive counter stacks stabilise
//! within their proven bounds through the facade API, and the Theorem 1
//! cost recurrences hold at every level.

use synchronous_counting::core::CounterBuilder;
use synchronous_counting::protocol::{BitVec, Counter, NodeId, SyncProtocol};
use synchronous_counting::sim::{adversaries, broadcast_metrics, Simulation};

#[test]
fn figure2_stack_stabilizes_through_the_facade() {
    let a36 = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    let faulty = [0usize, 1, 2, 3, 4, 12, 24];
    for seed in [1u64, 2] {
        let adv = adversaries::two_faced(&a36, faulty, seed);
        let mut sim = Simulation::new(&a36, adv, seed);
        let report = sim
            .run_until_stable(a36.stabilization_bound() + 64)
            .unwrap();
        assert!(report.stabilization_round <= a36.stabilization_bound());
    }
}

#[test]
fn theorem1_recurrences_hold_along_the_plan() {
    let plans = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .boost(3)
        .unwrap()
        .plan()
        .unwrap();
    for w in plans.windows(2) {
        let (lo, hi) = (&w[0], &w[1]);
        // T grows by exactly 3(F+2)(2m)^k and S by ⌈log(C+1)⌉ + 1.
        assert!(hi.time_bound > lo.time_bound);
        let s_overhead = synchronous_counting::protocol::bits_for(hi.modulus + 1) + 1;
        assert_eq!(hi.state_bits, lo.state_bits + s_overhead);
        assert_eq!(hi.n, lo.n * hi.k);
    }
}

#[test]
fn encoded_state_width_matches_claimed_space_at_every_level() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(3);
    for builder in [
        CounterBuilder::corollary1(1, 2).unwrap(),
        CounterBuilder::corollary1(1, 2).unwrap().boost(3).unwrap(),
        CounterBuilder::corollary1(2, 6).unwrap(),
    ] {
        let algo = builder.build().unwrap();
        for node in 0..algo.n() {
            let id = NodeId::new(node);
            let state = algo.random_state(id, &mut rng);
            let mut bits = BitVec::new();
            algo.encode_state(id, &state, &mut bits);
            assert_eq!(bits.len() as u32, algo.state_bits());
            let decoded = algo.decode_state(id, &mut bits.reader()).unwrap();
            assert_eq!(decoded, state);
        }
    }
}

#[test]
fn broadcast_metrics_are_quadratic_in_n() {
    let a12 = CounterBuilder::corollary1(1, 2)
        .unwrap()
        .boost(3)
        .unwrap()
        .build()
        .unwrap();
    let m = broadcast_metrics(&a12);
    assert_eq!(m.messages_per_round, 12 * 11);
    assert_eq!(m.bits_per_round, 12 * 11 * u64::from(a12.state_bits()));
}

#[test]
fn corollary1_f2_stabilizes_within_bound() {
    // F = 2: k = 7 single-node blocks, bound 12·8^7 ≈ 25.2M — far too long
    // to simulate to the bound, but random initial configurations stabilise
    // quickly in practice; verify correctness with a generous horizon.
    let a7 = CounterBuilder::corollary1(2, 4).unwrap().build().unwrap();
    assert_eq!(a7.n(), 7);
    assert_eq!(a7.resilience(), 2);
    let adv = adversaries::random(&a7, [1, 4], 5);
    let mut sim = Simulation::new(&a7, adv, 5);
    let report = sim
        .run_until_stable(60_000)
        .expect("A(7,2) stabilises in practice");
    assert!(report.stabilization_round <= a7.stabilization_bound());
}

#[test]
fn outputs_remain_in_range_forever() {
    let algo = CounterBuilder::corollary1(1, 5).unwrap().build().unwrap();
    let adv = adversaries::random(&algo, [3], 8);
    let mut sim = Simulation::new(&algo, adv, 8);
    for _ in 0..500 {
        for &o in &sim.outputs_now() {
            assert!(o < algo.modulus());
        }
        sim.step();
    }
}
