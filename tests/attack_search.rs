//! Cross-check between the exhaustive verifier and the attack search: on an
//! instance small enough for the model checker to refute, the guided search
//! — which sees only measured stabilisation delays, never the game graph —
//! rediscovers a witness-equivalent **non-stabilising** script.

use synchronous_counting::attack::{search, MoveSpace, Objective, Script, SearchConfig};
use synchronous_counting::core::{Algorithm, LutCounter, LutSpec};
use synchronous_counting::verifier::{verify, Verdict};

/// The 0-resilient follow-max table on 4 nodes claiming f = 1 — the
/// workspace's canonical verifier-refutable instance.
fn follow_max() -> LutSpec {
    let rows: Vec<u8> = (0..16u32)
        .map(|index| {
            let max = (0..4).map(|u| (index >> u & 1) as u8).max().unwrap();
            (max + 1) % 2
        })
        .collect();
    LutSpec {
        n: 4,
        f: 1,
        c: 2,
        states: 2,
        transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
        output: vec![vec![0, 1]; 4],
        stabilization_bound: 0,
    }
}

#[test]
fn search_rediscovers_a_witness_equivalent_nonstabilising_script() {
    let spec = follow_max();
    let lut = LutCounter::new(spec.clone()).unwrap();
    let Verdict::Fails {
        fault_set, witness, ..
    } = verify(&lut).unwrap()
    else {
        panic!("follow-max must fail verification");
    };

    // The search attacks the same fault set the checker refuted, with the
    // LUT's exact raw vocabulary (2 states) plus echo/stale moves.
    let algo = Algorithm::lut(spec).unwrap();
    let horizon = 64u64;
    let objective = Objective::new(&algo, &algo, fault_set.clone(), 0..6, horizon).unwrap();
    let mut cfg = SearchConfig::new(
        2,
        MoveSpace {
            raw_values: 2,
            salts: 3,
            max_lag: 2,
        },
        7,
    );
    cfg.budget = 320;
    cfg.restarts = 4;
    let report = search::search(&objective, &cfg);

    // Witness-equivalence: like the checker's lasso, the found script
    // prevents stabilisation outright — on every single sweep scenario,
    // not just a lucky one.
    assert!(
        report.delay.unstable >= 1,
        "search failed to find a non-stabilising script: {:?}",
        report.delay
    );
    assert_eq!(
        report.delay.worst,
        horizon + 1,
        "a non-stabilising scenario scores horizon + 1"
    );

    // The imported witness script is non-stabilising too (from its own
    // start configuration, as `tests/witness_replay.rs` asserts); here the
    // searched script must match that strength from *arbitrary* starts.
    let imported = Script::from_witness(&witness);
    assert_eq!(imported.fault_set(), &fault_set[..]);

    // And the result is a plain data object: it survives its own codec, so
    // a found attack can be stored and replayed bit-identically later.
    let mut bits = synchronous_counting::protocol::BitVec::new();
    report.best.encode(&mut bits);
    let reloaded = Script::decode(&mut bits.reader()).unwrap();
    assert_eq!(reloaded, report.best);
    let mut replay_obj = Objective::new(&algo, &algo, fault_set, 0..6, horizon).unwrap();
    assert_eq!(replay_obj.evaluate(&reloaded), report.delay);
}

#[test]
fn search_matches_the_builtin_ceiling_on_followmax() {
    // The acceptance sweep in miniature: on the same (seed, fault set)
    // sweep, the best found script is at least as strong as every built-in
    // strategy. On this 0-resilient table the objective *saturates* — the
    // equivocating built-ins already break every scenario — so ties are the
    // ceiling here; the bench's `worst_case` table runs the strict
    // comparison on the real A(4,1) stack, where no admissible adversary
    // saturates and delay differences are meaningful.
    use synchronous_counting::sim::{adversaries, sleeper};

    let algo = Algorithm::lut(follow_max()).unwrap();
    let horizon = 64u64;
    let faulty = vec![0usize];
    let mut objective = Objective::new(&algo, &algo, faulty.clone(), 0..6, horizon).unwrap();

    let builtin = [
        objective.measure(|seed| {
            Box::new(adversaries::crash(&algo, faulty.iter().copied(), seed))
                as Box<dyn synchronous_counting::sim::Adversary<_>>
        }),
        objective
            .measure(|seed| Box::new(adversaries::random(&algo, faulty.iter().copied(), seed))),
        objective
            .measure(|seed| Box::new(adversaries::two_faced(&algo, faulty.iter().copied(), seed))),
        objective.measure(|_| Box::new(adversaries::replay(faulty.iter().copied(), 3))),
        objective.measure(|seed| {
            Box::new(sleeper(
                &algo,
                faulty.iter().copied(),
                16,
                adversaries::crash(&algo, faulty.iter().copied(), seed),
                seed,
            ))
        }),
    ];
    let strongest_builtin = builtin.iter().copied().max().unwrap();

    let mut cfg = SearchConfig::new(
        2,
        MoveSpace {
            raw_values: 2,
            salts: 3,
            max_lag: 2,
        },
        11,
    );
    cfg.budget = 320;
    let report = search::search(&objective, &cfg);
    assert!(
        report.delay >= strongest_builtin,
        "search {:?} must reach the built-in ceiling {:?}",
        report.delay,
        strongest_builtin
    );
    assert_eq!(
        report.delay.unstable,
        objective.scenarios(),
        "on a 0-resilient table the search must break every scenario"
    );
}
