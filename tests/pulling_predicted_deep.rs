//! Predictive king pulls on a *nested* recursion: every level predicts its
//! own next slot and pulls a single king candidate, so the per-level pull
//! count stays `k·M + M + 1` even as the stack deepens. Requires king slack
//! at every level (DESIGN.md §2.5).

use rand::rngs::SmallRng;
use synchronous_counting::core::CounterBuilder;
use synchronous_counting::protocol::NodeId;
use synchronous_counting::pulling::{KingPullMode, PullCounter, PullProtocol, Pulled, Sampling};
use synchronous_counting::sim::{adversaries, first_stable_window, violation_rate, Simulation};

#[test]
fn nested_predicted_kings_stabilize_with_slack() {
    // Two-level stack with slack 1 everywhere: τ₁ = 3(1+3) = 12 per level.
    // Inner modulus must be a multiple of the outer requirement
    // c_req₂ = 3(F+2+1)·4³ = 12·64 = 768.
    let algo = CounterBuilder::trivial()
        .with_modulus(768)
        .with_king_slack(1)
        .boost_with_resilience(4, 1)
        .unwrap()
        .boost_with_resilience(3, 1)
        .unwrap()
        .with_modulus(4)
        .build()
        .unwrap();

    let sampling = Sampling::Sampled {
        m: 15,
        king_mode: KingPullMode::Predicted,
        fixed_seed: None,
    };
    let pc = PullCounter::from_algorithm(&algo, sampling).unwrap();
    // Pull ledger: inner level 4·15+15+1 = 76, outer level 3·15+15+1 = 61.
    assert_eq!(pc.plan_len(), 76 + 61);

    let bound = pc.stabilization_bound();
    for seed in [6u64, 41] {
        let sampler = |node: NodeId, rng: &mut SmallRng| pc.random_state(node, rng);
        let adv = adversaries::random_from(sampler, [7], seed);
        let pulled = Pulled::new(&pc);
        let mut sim = Simulation::new(&pulled, adv, seed);
        let trace = sim.run_trace(bound + 512);
        let start = first_stable_window(&trace, pc.modulus(), 64)
            .unwrap_or_else(|| panic!("seed {seed}: no stable window within {bound}+512"));
        assert!(
            start <= bound,
            "seed {seed}: window at {start} > bound {bound}"
        );
        let rate = violation_rate(&trace, pc.modulus(), start);
        assert!(rate < 0.05, "seed {seed}: failure rate {rate}");
    }
}

#[test]
fn predicted_mode_is_rejected_without_slack_at_any_level() {
    // Slack on the outer level only is not enough: the inner level also
    // predicts its king, and construction must refuse.
    let algo = CounterBuilder::corollary1(1, 768).unwrap().build().unwrap();
    let sampling = Sampling::Sampled {
        m: 15,
        king_mode: KingPullMode::Predicted,
        fixed_seed: None,
    };
    assert!(PullCounter::from_algorithm(&algo, sampling).is_err());
}
