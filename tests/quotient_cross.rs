//! The orbit-quotient equivalence gate: on exchangeable LUTs the
//! symmetry-quotiented solver must be **bitwise** indistinguishable from
//! the retained full bitset solver — identical `AnalysisSummary`s,
//! identical `Verdict`s, byte-identical replayable witnesses — while
//! deciding instances whose full configuration space the old limits
//! reject. The synthesis pre-filter is audited the same way: every
//! candidate it rejects must be one the exhaustive verifier also refutes
//! (reject-only soundness), and a filtered sweep finds exactly the
//! counters an unfiltered sweep finds.

use std::collections::HashMap;

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use synchronous_counting::attack::{AttackPreFilter, Script, ScriptedAdversary};
use synchronous_counting::core::{Algorithm, CounterState, LutCounter, LutSpec};
use synchronous_counting::sim::Simulation;
use synchronous_counting::verifier::{
    reference, sweep_family, Analyzer, NoFilter, SolverMode, SweepCheckpoint, SymmetricFamily,
    Verdict, Witness,
};

/// A random **exchangeable** table-driven counter: one shared transition
/// table that depends only on the multiset of received states (a fresh
/// random next-state per multiset class), one shared output table.
fn random_symmetric_lut(n: usize, f: usize, states: u8, c: u64, seed: u64) -> LutCounter {
    let mut rng = SmallRng::seed_from_u64(seed);
    let x = states as usize;
    let rows = x.pow(n as u32);
    let mut class: HashMap<Vec<u8>, u8> = HashMap::new();
    let mut table = vec![0u8; rows];
    for (r, slot) in table.iter_mut().enumerate() {
        let mut digits = Vec::with_capacity(n);
        let mut rest = r;
        for _ in 0..n {
            digits.push((rest % x) as u8);
            rest /= x;
        }
        digits.sort_unstable();
        *slot = *class
            .entry(digits)
            .or_insert_with(|| rng.random_range(0..states));
    }
    let output: Vec<u64> = (0..states).map(|_| rng.random_range(0..c)).collect();
    LutCounter::new(LutSpec {
        n,
        f,
        c,
        states,
        transition: vec![table; n],
        output: vec![output; n],
        stabilization_bound: 0,
    })
    .unwrap()
}

/// Local consistency: every recorded transition satisfies the transition
/// function with the recorded Byzantine values substituted, the lasso
/// closes, and the script wraps around it.
fn assert_witness_replayable(lut: &LutCounter, witness: &Witness) {
    assert!(witness.configs.len() >= 2);
    assert_eq!(witness.byz.len(), witness.configs.len() - 1);
    assert_eq!(
        witness.configs.last(),
        witness.configs.get(witness.cycle_start)
    );
    for t in 0..witness.byz.len() {
        for (hi, &node) in witness.honest.iter().enumerate() {
            let mut received = vec![0u8; lut.spec().n];
            for (hj, &hv) in witness.honest.iter().enumerate() {
                received[hv] = witness.configs[t][hj];
            }
            for (g, &fv) in witness.fault_set.iter().enumerate() {
                received[fv] = witness.byz[t][hi][g];
            }
            assert_eq!(
                lut.next(node, &received),
                witness.configs[t + 1][hi],
                "transition {t} node {node} inconsistent"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// On random exchangeable LUTs across every shape the reference
    /// checker can host, forced-quotient and forced-full analysis agree
    /// bitwise: same `AnalysisSummary` (exact coverage fraction included),
    /// same `Verdict`, value-for-value equal witnesses — and `Auto` (which
    /// detects the symmetry and quotients) agrees with both.
    #[test]
    fn quotient_matches_full_solver_bitwise(
        shape in 0usize..5,
        states in 2u8..=4,
        c in 2u64..=3,
        seed in proptest::any::<u64>(),
    ) {
        let (n, f) = [(1, 0), (2, 0), (3, 0), (4, 0), (4, 1)][shape];
        let c = c.min(u64::from(states));
        let lut = random_symmetric_lut(n, f, states, c, seed);

        let mut full = Analyzer::with_mode(SolverMode::Full);
        let mut quot = Analyzer::with_mode(SolverMode::Quotient);
        let mut auto = Analyzer::new();

        let summary = full.analyze(&lut).unwrap();
        prop_assert_eq!(&summary, &quot.analyze(&lut).unwrap());
        prop_assert_eq!(&summary, &auto.analyze(&lut).unwrap());
        prop_assert_eq!(&summary, &reference::analyze(&lut).unwrap());

        let verdict = full.verify(&lut).unwrap();
        prop_assert_eq!(&verdict, &quot.verify(&lut).unwrap());
        if let Verdict::Fails { witness, .. } = &verdict {
            assert_witness_replayable(&lut, witness);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Symmetry-aware fault-set enumeration (one game per fault-set size,
    /// statistics scaled by multiplicity) is a bitwise no-op on the
    /// summary — including which first failing fault set is reported,
    /// because the preorder enumeration visits the prefix chain first.
    #[test]
    fn dedup_fault_sets_matches_full_enumeration(
        states in 2u8..=3,
        seed in proptest::any::<u64>(),
    ) {
        let lut = random_symmetric_lut(4, 1, states, 2, seed);
        let mut plain = Analyzer::with_mode(SolverMode::Quotient);
        let mut dedup = Analyzer::with_mode(SolverMode::Quotient);
        dedup.dedup_fault_sets(true);
        prop_assert_eq!(plain.analyze(&lut).unwrap(), dedup.analyze(&lut).unwrap());

        // The flag is sound on the full engine too (it simply never fires
        // for non-exchangeable tables, and fires identically here).
        let mut full_dedup = Analyzer::new();
        full_dedup.dedup_fault_sets(true);
        prop_assert_eq!(
            plain.analyze(&lut).unwrap(),
            full_dedup.analyze(&lut).unwrap()
        );
    }
}

#[test]
fn quotient_mode_refuses_asymmetric_tables() {
    // A positional table (copy node 0's received state) is not invariant
    // under permuting received positions: Auto must fall back to the full
    // solver, and forced Quotient must error rather than quotient it.
    let rows: Vec<u8> = (0..8).map(|r| (r & 1) as u8).collect();
    let lut = LutCounter::new(LutSpec {
        n: 3,
        f: 0,
        c: 2,
        states: 2,
        transition: vec![rows; 3],
        output: vec![vec![0, 1]; 3],
        stabilization_bound: 0,
    })
    .unwrap();
    let full = Analyzer::with_mode(SolverMode::Full).analyze(&lut).unwrap();
    assert_eq!(full, Analyzer::new().analyze(&lut).unwrap());
    assert!(Analyzer::with_mode(SolverMode::Quotient)
        .analyze(&lut)
        .is_err());
}

/// The n = 5 instance the old limits reject: 16 states on 5 nodes is
/// `16^5 = 2^20` configurations — the full solver's fault-free mask table
/// (`2^20 · 5` words) exceeds its budget and the reference checker's seed
/// limit (`2^14`) is far behind — but only `C(20, 5) = 15504` orbits.
fn sum_mod_lut_n5_x16() -> LutCounter {
    let n = 5usize;
    let x = 16usize;
    let rows = x.pow(n as u32);
    let mut table = vec![0u8; rows];
    for (r, slot) in table.iter_mut().enumerate() {
        let mut sum = 0usize;
        let mut rest = r;
        for _ in 0..n {
            sum += rest % x;
            rest /= x;
        }
        *slot = (sum % x) as u8;
    }
    LutCounter::new(LutSpec {
        n,
        f: 1,
        c: 2,
        states: 16,
        transition: vec![table; n],
        output: vec![(0..16).map(|s| s % 2).collect(); n],
        stabilization_bound: 0,
    })
    .unwrap()
}

#[test]
fn quotient_decides_an_n5_instance_beyond_the_old_limits() {
    let lut = sum_mod_lut_n5_x16();
    assert!(reference::analyze(&lut).is_err(), "reference must reject");
    assert!(
        Analyzer::with_mode(SolverMode::Full).analyze(&lut).is_err(),
        "the unquotiented solver's limits must reject 2^20 × 5 mask words"
    );
    let mut quot = Analyzer::with_mode(SolverMode::Quotient);
    quot.dedup_fault_sets(true);
    let summary = quot.analyze(&lut).unwrap();
    // Sum-following has no quorum: one equivocating fault breaks it (and
    // even fault-free counting mod 2 over a sum mod 16 drifts). What
    // matters here is that the quotient *decides* the instance exactly.
    assert!(summary.coverage >= 0.0 && summary.coverage <= 1.0);
    assert!(
        summary.failure.is_some(),
        "sum-following should not be 1-resilient"
    );
}

#[test]
fn quotient_witness_is_byte_identical_and_replays_on_the_simulator() {
    // Follow-max is exchangeable (max is position-invariant) and
    // 0-resilient: both engines must refute it with the *same* witness,
    // and the quotient-extracted lasso must drive the live simulator.
    let rows: Vec<u8> = (0..16u32)
        .map(|index| {
            let max = (0..4).map(|u| (index >> u & 1) as u8).max().unwrap();
            (max + 1) % 2
        })
        .collect();
    let spec = LutSpec {
        n: 4,
        f: 1,
        c: 2,
        states: 2,
        transition: vec![rows; 4],
        output: vec![vec![0, 1]; 4],
        stabilization_bound: 0,
    };
    let lut = LutCounter::new(spec.clone()).unwrap();

    let full = Analyzer::with_mode(SolverMode::Full).verify(&lut).unwrap();
    let quot = Analyzer::with_mode(SolverMode::Quotient)
        .verify(&lut)
        .unwrap();
    assert_eq!(full, quot, "witnesses must be byte-identical across modes");
    let Verdict::Fails { witness, .. } = quot else {
        panic!("follow-max must fail");
    };
    assert_witness_replayable(&lut, &witness);

    // Replay the quotient's witness on the real engine via the scripted
    // adversary: the live states must track the predicted configurations.
    let algo = Algorithm::lut(spec).unwrap();
    let mut states = vec![CounterState::Lut(0); 4];
    for (hi, &node) in witness.honest.iter().enumerate() {
        states[node] = CounterState::Lut(witness.configs[0][hi]);
    }
    let script = Script::from_witness(&witness);
    let adversary = ScriptedAdversary::new(&script, &algo);
    let mut sim = Simulation::with_states(&algo, adversary, states, 0);
    let steps = witness.byz.len();
    let cycle = steps - witness.cycle_start;
    for t in 0..steps + 2 * cycle {
        let idx = if t < steps {
            t
        } else {
            witness.cycle_start + ((t - witness.cycle_start) % cycle)
        };
        for (hi, &node) in witness.honest.iter().enumerate() {
            assert_eq!(
                sim.states()[node],
                CounterState::Lut(witness.configs[idx][hi]),
                "round {t}: simulator diverged from the quotient witness"
            );
        }
        sim.step();
    }
}

#[test]
fn n5_family_sweep_is_filter_sound_end_to_end() {
    // The declared n = 5, f = 1 candidate family: 2 states, 6 multiset
    // classes, 64 exchangeable candidates. Sweep it twice — once through
    // the attack pre-filter, once unfiltered — and audit the ledgers.
    let family = SymmetricFamily::new(5, 1, 2, 2).unwrap();
    assert_eq!(family.classes(), 6);
    assert_eq!(family.len(), Some(64));

    let mut filtered = SweepCheckpoint::new();
    let mut filter = AttackPreFilter::new(4, 3, 48, 9);
    let mut analyzer = Analyzer::new();
    analyzer.dedup_fault_sets(true);
    let outcome =
        sweep_family(&family, &mut filter, &mut analyzer, &mut filtered, u64::MAX).unwrap();
    assert!(outcome.complete);
    assert_eq!(outcome.processed, 64);

    let mut baseline = SweepCheckpoint::new();
    sweep_family(
        &family,
        &mut NoFilter,
        &mut analyzer,
        &mut baseline,
        u64::MAX,
    )
    .unwrap();

    // Ledger invariants: every candidate is screened, the split is exact,
    // every survivor is exhaustively verified.
    let ledger = filtered.ledger;
    assert_eq!(ledger.screened, 64);
    assert_eq!(ledger.screened, ledger.filtered + ledger.survivors);
    assert_eq!(ledger.verified, ledger.survivors);
    assert!(ledger.found <= ledger.verified);
    assert_eq!(filter.screened(), 64);
    assert_eq!(filter.rejected(), ledger.filtered);
    assert_eq!(baseline.ledger.screened, 64);
    assert_eq!(baseline.ledger.survivors, 64);

    // Reject-only soundness, audited two ways: (1) the filtered sweep
    // finds exactly the correct candidates the unfiltered sweep finds;
    // (2) every candidate the filter rejected is one the exhaustive
    // verifier refutes.
    assert_eq!(filtered.found, baseline.found);
    let mut lut = family.seed().unwrap();
    for index in 0..64 {
        if filtered.survivors.contains(&index) {
            continue;
        }
        family.instantiate(index, &mut lut);
        assert!(
            analyzer.analyze(&lut).unwrap().failure.is_some(),
            "pre-filter rejected candidate {index} but the verifier accepts it"
        );
    }
}
