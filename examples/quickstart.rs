//! Quickstart: build a self-stabilising Byzantine 3-counter for 4 nodes and
//! watch it stabilise, reproducing the execution sketch from the paper's
//! introduction:
//!
//! ```text
//!          Stabilisation      Counting
//! Node 1:  2 2 0 2 0 | 0 1 2 0 1 2 …
//! Node 2:  0 2 0 1 0 | 0 1 2 0 1 2 …
//! Node 3:  faulty node, arbitrary behaviour
//! Node 4:  0 0 2 0 2 | 0 1 2 0 1 2 …
//! ```
//!
//! Run with `cargo run --release --example quickstart`.

use synchronous_counting::core::CounterBuilder;
use synchronous_counting::protocol::Counter;
use synchronous_counting::sim::{adversaries, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A(4, 1): four single-node blocks over the trivial counter
    // (Corollary 1), counting modulo 3 like the paper's intro example.
    let counter = CounterBuilder::corollary1(1, 3)?.build()?;
    println!(
        "built a {}-node counter: f = {}, c = {}, S = {} bits, T ≤ {} rounds",
        4,
        counter.resilience(),
        counter.modulus(),
        counter.state_bits(),
        counter.stabilization_bound()
    );

    // Node 2 (0-indexed) is Byzantine and equivocates; initial states are
    // arbitrary (drawn from the full state space).
    let adversary = adversaries::two_faced(&counter, [2], 7);
    let mut sim = Simulation::new(&counter, adversary, 42);

    // Run to stabilisation first so we know where the bar goes.
    let report = sim.run_until_stable(counter.stabilization_bound() + 64)?;
    println!(
        "stabilised after {} rounds (proven bound {}), confirmed over {} rounds\n",
        report.stabilization_round,
        counter.stabilization_bound(),
        report.confirmed_rounds
    );

    // Replay the interesting prefix and print the paper-style table.
    let adversary = adversaries::two_faced(&counter, [2], 7);
    let mut replay = Simulation::new(&counter, adversary, 42);
    let show = report.stabilization_round + 8;
    let mut columns: Vec<Vec<u64>> = Vec::new();
    for _ in 0..show {
        columns.push(replay.outputs_now());
        replay.step();
    }
    let honest = replay.honest().to_vec();
    for (row, node) in honest.iter().enumerate() {
        let mut line = format!("Node {}: ", node.index() + 1);
        for (t, col) in columns.iter().enumerate() {
            if t as u64 == report.stabilization_round {
                line.push_str("| ");
            }
            line.push_str(&format!("{} ", col[row]));
        }
        println!("{line}…");
    }
    println!("Node 3: faulty node, arbitrary behaviour …");
    println!("\n(the bar marks the measured stabilisation round)");
    Ok(())
}
