//! The algorithm-synthesis workbench: exhaustively verify small counters
//! (the pipeline behind the computer-designed algorithms of Table 1) and
//! search for new ones, then *run* a synthesised algorithm on the simulator
//! to cross-check the model checker against execution.
//!
//! Run with `cargo run --release --example synthesis_workbench`.

use synchronous_counting::core::{Algorithm, LutSpec};
use synchronous_counting::protocol::Counter;
use synchronous_counting::sim::{adversaries, Simulation};
use synchronous_counting::verifier::{synthesize, verify, SynthesisOutcome, Verdict};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Verify a hand-written algorithm: 2 nodes following node 0.
    let follow_leader = LutSpec {
        n: 2,
        f: 0,
        c: 2,
        states: 2,
        transition: vec![vec![1, 0, 1, 0], vec![1, 0, 1, 0]],
        output: vec![vec![0, 1], vec![0, 1]],
        stabilization_bound: 1,
    };
    let lut = synchronous_counting::core::LutCounter::new(follow_leader)?;
    match verify(&lut)? {
        Verdict::Stabilizes { worst_case_time } => {
            println!("follow-leader verifies: exact worst-case time {worst_case_time}");
        }
        Verdict::Fails { .. } => unreachable!("follow-leader is correct"),
    }

    // 2. Synthesise a 2-node 2-counter from scratch.
    let report = synthesize(2, 0, 2, 2, 1, 5_000)?;
    let SynthesisOutcome::Found {
        counter,
        worst_case_time,
    } = report.outcome
    else {
        panic!("the fault-free instance is easily synthesisable");
    };
    println!(
        "synthesised a 2-node 2-counter in {} evaluations; verified T = {worst_case_time}",
        report.evaluations
    );

    // 3. Run the synthesised algorithm on the simulator from every initial
    //    configuration: the observed stabilisation must respect the
    //    verifier's exact worst case.
    let algo = Algorithm::lut(counter.spec().clone())?;
    let mut worst_seen = 0u64;
    for s0 in 0..2u8 {
        for s1 in 0..2u8 {
            let states = vec![
                synchronous_counting::core::CounterState::Lut(s0),
                synchronous_counting::core::CounterState::Lut(s1),
            ];
            let mut sim = Simulation::with_states(&algo, adversaries::none(), states, 0);
            let observed = sim.run_until_stable(64)?;
            worst_seen = worst_seen.max(observed.stabilization_round);
        }
    }
    println!(
        "simulated from all {} initial configurations: worst observed {} ≤ verified {}",
        4, worst_seen, worst_case_time
    );
    assert!(worst_seen <= worst_case_time);

    // 4. Attempt the hard instance of [4, 5] with a small budget and report
    //    how close the search got.
    let report = synthesize(4, 1, 2, 3, 7, 10_000)?;
    match report.outcome {
        SynthesisOutcome::Found {
            worst_case_time, ..
        } => {
            println!("n=4, f=1, |X|=3: FOUND a counter with T = {worst_case_time}!");
        }
        SynthesisOutcome::Exhausted { best_coverage } => {
            println!(
                "n=4, f=1, |X|=3: budget exhausted at coverage {best_coverage:.3} \
                 (the published solution needed SAT-scale search)"
            );
        }
    }
    let _ = algo.modulus();
    Ok(())
}
