//! The recursive construction at work: build the paper's Figure 2 stack
//! `A(4,1) → A(12,3) → A(36,7)` with `CounterBuilder`, inspect the derived
//! parameters of every level, and run the 36-node counter with 7 Byzantine
//! nodes placed adversarially (one entire block corrupted).
//!
//! Run with `cargo run --release --example recursive_scaling`.

use synchronous_counting::core::CounterBuilder;
use synchronous_counting::protocol::{Counter, SyncProtocol};
use synchronous_counting::sim::{adversaries, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let builder = CounterBuilder::corollary1(1, 2)?.boost(3)?.boost(3)?;
    println!("recursive plan (level: n, f, k, modulus, S bits, T bound):");
    for p in builder.plan()? {
        println!(
            "  level {}: n = {:>3}, f = {:>2}, k = {}, C = {:>4}, S = {:>2} bits, T ≤ {}",
            p.level, p.n, p.f, p.k, p.modulus, p.state_bits, p.time_bound
        );
    }

    let a36 = builder.build()?;
    println!(
        "\nA({}, {}): {} state bits per node, stabilisation bound {} rounds",
        a36.n(),
        a36.resilience(),
        a36.state_bits(),
        a36.stabilization_bound()
    );

    // Adversarial placement: the first mid-level block (nodes 0..4) is
    // fully corrupted (a faulty block), the rest spread.
    let faulty = [0usize, 1, 2, 3, 4, 12, 24];
    println!("Byzantine nodes: {faulty:?} (block 0 of A(12,3) #0 fully corrupt)");

    for (label, seed) in [("seed A", 5u64), ("seed B", 91)] {
        let adversary = adversaries::two_faced(&a36, faulty, seed);
        let mut sim = Simulation::new(&a36, adversary, seed);
        let report = sim.run_until_stable(a36.stabilization_bound() + 64)?;
        println!(
            "  {label}: stabilised at round {:>4} (bound {}), confirmed {} rounds",
            report.stabilization_round,
            a36.stabilization_bound(),
            report.confirmed_rounds
        );
    }

    println!("\nscaling preview (analytic plans, modulus 2):");
    for (label, b) in [
        ("k=3 ×4 levels", CounterBuilder::theorem2(3, 3, 2)?),
        ("Theorem 3, P=1", CounterBuilder::theorem3(1, 2)?),
    ] {
        let plan = b.plan()?;
        let top = plan.last().expect("non-empty plan");
        println!(
            "  {label}: n = {}, f = {}, T ≤ {}, S = {} bits",
            top.n, top.f, top.time_bound, top.state_bits
        );
    }
    Ok(())
}
