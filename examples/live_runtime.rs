//! Live runtime demo: run A(4, 1) on real OS threads with a scripted
//! Byzantine node injected mid-run, serve counter reads from the
//! versioned snapshot while the fault burst is raging, and print the
//! watchdog's stability timeline and recovery measurement.
//!
//! Run with `cargo run --release --example live_runtime`.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use synchronous_counting::attack::{MoveSpace, Script};
use synchronous_counting::core::CounterBuilder;
use synchronous_counting::protocol::Counter;
use synchronous_counting::runtime::{
    run_deterministic, run_live, FaultEntry, FaultKind, FaultPlan, RuntimeConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let counter = CounterBuilder::corollary1(1, 2)?.build()?;
    println!(
        "A(4,1): n = 4, f = {}, counting mod {}, {} state bits",
        counter.resilience(),
        counter.modulus(),
        counter.state_bits()
    );

    // A searched-style lasso script for node 2 — the same witness format
    // the attack search emits — replayed live during rounds [20, 44).
    let mut rng = SmallRng::seed_from_u64(7);
    let script = Script::random(4, vec![2], 6, 2, &MoveSpace::echoes(3), &mut rng);
    let plan = FaultPlan::new(
        4,
        vec![FaultEntry {
            node: 2,
            from_round: 20,
            until_round: Some(44),
            kind: FaultKind::Scripted(script),
        }],
    )?;
    let config = RuntimeConfig {
        period_ns: 2_000_000, // 2 ms rounds
        horizon: 120,
        seed: 42,
        confirm: None,
        quorum: None,
        plan,
    };

    // Four node threads + a monitor start here; the closure runs
    // concurrently on this thread, reading the converged counter exactly
    // like an external service would.
    let (report, reads) = run_live(&counter, &config, |handle| {
        let mut reads = 0u64;
        let mut last = (0u64, u64::MAX);
        while !handle.is_done() {
            let (version, value) = handle.read(); // one atomic load
            if version > 0 && (version, value) != last {
                last = (version, value);
            }
            reads += 1;
        }
        reads
    })?;

    println!(
        "\n{} rounds in {:.1} ms; served {} snapshot reads ({:.1}M reads/s)",
        report.rounds,
        report.wall_nanos as f64 / 1e6,
        reads,
        reads as f64 / (report.wall_nanos as f64 / 1e9) / 1e6
    );
    println!("stability timeline (watchdog observations):");
    for event in &report.events {
        println!(
            "  round {:>3}: {} (since round {}, at {:.1} ms)",
            event.round,
            if event.stable { "STABLE" } else { "lost" },
            event.since,
            event.at_nanos as f64 / 1e6
        );
    }
    for recovery in &report.recoveries {
        println!(
            "recovered from the burst ending at round {}: stable again at \
             round {} ({:.1} ms after the burst)",
            recovery.burst_end_round,
            recovery.stable_round,
            recovery.nanos as f64 / 1e6
        );
    }
    if report.recoveries.is_empty() {
        println!(
            "the scripted node stayed within the f = 1 budget: the counter \
             masked it and never lost stability — nothing to recover from"
        );
    }

    // The same scenario through the deterministic harness: virtual
    // clock, seeded scheduler, same node logic — bit-reproducible.
    let det = run_deterministic(&counter, &config)?;
    println!(
        "\ndeterministic replay: first stable round {:?}, digest 0x{:016x}",
        det.first_stable_round, det.digest
    );
    Ok(())
}
