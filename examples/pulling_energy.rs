//! The pulling model (§5): trade a small per-round failure probability for
//! a per-node *energy budget* that does not grow with the network.
//!
//! In the broadcast model every node pays for n−1 links every round. In the
//! pulling model the cost of an exchange is attributed to the pulling node,
//! and the sampled counter pulls only `k·M + M + (F+2)` states per level —
//! independent of how many nodes each block contains.
//!
//! Run with `cargo run --release --example pulling_energy`.

use rand::rngs::SmallRng;
use synchronous_counting::core::CounterBuilder;
use synchronous_counting::protocol::NodeId;
use synchronous_counting::pulling::{KingPullMode, PullCounter, PullProtocol, Pulled, Sampling};
use synchronous_counting::sim::{adversaries, first_stable_window, violation_rate, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A(12, 1): 3 blocks of A(4, 1); fault ratio 1/12 keeps the sampled
    // thresholds well concentrated (Lemma 8).
    let algo = CounterBuilder::corollary1(1, 576)?
        .boost_with_resilience(3, 1)?
        .build()?;

    let full = PullCounter::from_algorithm(&algo, Sampling::Full)?;
    let sampled = PullCounter::from_algorithm(
        &algo,
        Sampling::Sampled {
            m: 15,
            king_mode: KingPullMode::All,
            fixed_seed: None,
        },
    )?;
    println!("per-node energy budget (pulls per round):");
    println!("  full pulling (deterministic): {}", full.plan_len());
    println!("  sampled, M = 15 (Theorem 4):  {}", sampled.plan_len());
    println!("  (the sampled cost depends on levels and blocks, not on block sizes)\n");

    // Run the sampled counter against a Byzantine node and measure both the
    // stabilisation point and the residual per-round failure rate.
    let sampler = |node: NodeId, rng: &mut SmallRng| sampled.random_state(node, rng);
    let adversary = adversaries::random_from(sampler, [5], 9);
    let pulled = Pulled::new(&sampled);
    let mut sim = Simulation::new(&pulled, adversary, 17);
    let bound = sampled.stabilization_bound();
    let trace = sim.run_trace(bound + 512);
    let start = first_stable_window(&trace, sampled.modulus(), 64)
        .expect("sampled counter should stabilise");
    let rate = violation_rate(&trace, sampled.modulus(), start);
    println!("sampled run with one Byzantine node:");
    println!("  stabilised at round {start} (bound {bound})");
    println!("  post-stabilisation failure rate: {rate:.4} per round");
    println!(
        "  max pulls by a correct node:     {}",
        pulled.pulls_per_round()
    );

    // The pseudo-random variant (Corollary 5): fix the samples once.
    let fixed = PullCounter::from_algorithm(
        &algo,
        Sampling::Sampled {
            m: 15,
            king_mode: KingPullMode::All,
            fixed_seed: Some(7),
        },
    )?;
    let sampler = |node: NodeId, rng: &mut SmallRng| fixed.random_state(node, rng);
    let adversary = adversaries::random_from(sampler, [5], 9);
    let pulled = Pulled::new(&fixed);
    let mut sim = Simulation::new(&pulled, adversary, 23);
    let trace = sim.run_trace(bound + 512);
    let start = first_stable_window(&trace, fixed.modulus(), 64)
        .expect("pseudo-random counter should stabilise (whp over the seed)");
    let rate = violation_rate(&trace, fixed.modulus(), start);
    println!("\npseudo-random variant (fixed samples, oblivious fault):");
    println!("  stabilised at round {start}; residual failure rate {rate:.4}");
    println!("  (once the fixed samples are good, counting is deterministic)");
    Ok(())
}
