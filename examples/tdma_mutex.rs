//! Fault-tolerant TDMA / mutual exclusion — the motivating application from
//! the paper's introduction: "synchronous counting is a coordination
//! primitive that can be used e.g. in large integrated circuits to
//! synchronise subsystems so that we can easily implement mutual exclusion
//! and time division multiple access in a fault-tolerant manner".
//!
//! Four subsystems share one bus. Each drives the bus exactly when the
//! shared counter (mod 4) equals its identifier. Before stabilisation the
//! bus sees collisions; after stabilisation — despite a Byzantine subsystem
//! and arbitrary power-on states — every correct subsystem owns disjoint
//! slots forever.
//!
//! Run with `cargo run --release --example tdma_mutex`.

use synchronous_counting::core::CounterBuilder;
use synchronous_counting::protocol::Counter;
use synchronous_counting::sim::{adversaries, Simulation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4usize;
    let counter = CounterBuilder::corollary1(1, n as u64)?.build()?;
    let adversary = adversaries::random(&counter, [1], 3); // subsystem 1 is faulty
    let mut sim = Simulation::new(&counter, adversary, 11);

    let horizon = counter.stabilization_bound() + 64;
    let mut collisions_before = 0u64;
    let mut collisions_after = 0u64;
    let mut stabilized_at: Option<u64> = None;

    // First pass: find the stabilisation round.
    let mut probe = Simulation::new(&counter, adversaries::random(&counter, [1], 3), 11);
    let report = probe.run_until_stable(horizon)?;
    let stab = report.stabilization_round;

    // Second pass: drive the bus.
    for round in 0..horizon {
        let outputs = sim.outputs_now();
        // A correct subsystem v transmits iff its counter says "slot v".
        let transmitting: Vec<usize> = sim
            .honest()
            .iter()
            .zip(&outputs)
            .filter(|(v, &slot)| slot == v.index() as u64)
            .map(|(v, _)| v.index())
            .collect();
        if transmitting.len() > 1 {
            if round < stab {
                collisions_before += 1;
            } else {
                collisions_after += 1;
            }
        }
        if round == stab {
            stabilized_at = Some(round);
        }
        sim.step();
    }

    println!("bus slots owned by counter value (mod {n}); subsystem 1 Byzantine");
    println!(
        "stabilised at round {} (bound {})",
        stab,
        counter.stabilization_bound()
    );
    println!("collisions before stabilisation: {collisions_before}");
    println!("collisions after stabilisation:  {collisions_after}");
    assert_eq!(collisions_after, 0, "TDMA broke after stabilisation");
    assert!(stabilized_at.is_some());

    // Show a stabilised schedule excerpt.
    println!("\nschedule excerpt (rounds {}..{}):", stab, stab + 8);
    let adversary = adversaries::random(&counter, [1], 3);
    let mut replay = Simulation::new(&counter, adversary, 11);
    replay.run(stab);
    for _ in 0..8 {
        let outputs = replay.outputs_now();
        let slot = outputs[0];
        let owner: Vec<String> = replay
            .honest()
            .iter()
            .map(|v| {
                if v.index() as u64 == slot {
                    format!("[{}]", v.index())
                } else {
                    format!(" {} ", v.index())
                }
            })
            .collect();
        println!("  slot {slot}: {}", owner.join(" "));
        replay.step();
    }
    println!("\nexactly one correct subsystem drives the bus per round — mutual exclusion holds");
    Ok(())
}
