//! Adversary-search workbench: hunt for stabilisation-delaying attacks on
//! A(4,1) and compare them against the built-in strategy library.
//!
//! ```sh
//! cargo run --release --example attack_search -- [budget] [horizon] [seed]
//! ```
//!
//! The search treats adversaries as data ([`Script`]s of per-(round,
//! sender, receiver) moves), scores them by the stabilisation delay they
//! inflict on a fixed seed sweep, and climbs the equivocation space with
//! in-place script edits. The printed table shows every built-in strategy's
//! delay on the same sweep next to the best found script — the measured
//! lower bound on the protocol's worst case.

use synchronous_counting::attack::{search, MoveSpace, Objective, SampledRaw, SearchConfig};
use synchronous_counting::core::CounterBuilder;
use synchronous_counting::protocol::{BitVec, Counter};
use synchronous_counting::sim::{adversaries, sleeper, Adversary};

fn main() {
    let mut args = std::env::args().skip(1);
    let budget: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(512);
    let horizon: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(96);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    let algo = CounterBuilder::corollary1(1, 2)
        .expect("Corollary 1 parameters are valid")
        .build()
        .expect("A(4,1) builds");
    let faulty = vec![1usize];
    let seeds = 0..8u64;
    println!(
        "A(4,1): n = 4, f = 1, proven bound T(A) = {} rounds; sweep = {} seeds x {} rounds, faulty {:?}\n",
        algo.stabilization_bound(),
        seeds.end,
        horizon,
        faulty
    );

    let mut objective = Objective::new(&algo, SampledRaw(&algo), faulty.clone(), seeds, horizon)
        .expect("horizon fits the confirmation suffix");

    println!(
        "| {:<16} | {:>10} | {:>8} | {:>12} |",
        "strategy", "worst", "unstable", "total delay"
    );
    println!(
        "|{}|{}|{}|{}|",
        "-".repeat(18),
        "-".repeat(12),
        "-".repeat(10),
        "-".repeat(14)
    );
    let mut best_builtin = synchronous_counting::attack::Delay::default();
    let builtins: Vec<(&str, synchronous_counting::attack::Delay)> = vec![
        (
            "crash",
            objective.measure(|seed| {
                Box::new(adversaries::crash(&algo, faulty.iter().copied(), seed))
                    as Box<dyn Adversary<_>>
            }),
        ),
        (
            "random",
            objective.measure(|seed| {
                Box::new(adversaries::random(&algo, faulty.iter().copied(), seed))
                    as Box<dyn Adversary<_>>
            }),
        ),
        (
            "two-faced",
            objective.measure(|seed| {
                Box::new(adversaries::two_faced(&algo, faulty.iter().copied(), seed))
                    as Box<dyn Adversary<_>>
            }),
        ),
        (
            "replay",
            objective.measure(|_| {
                Box::new(adversaries::replay(faulty.iter().copied(), 3)) as Box<dyn Adversary<_>>
            }),
        ),
        (
            "sleeper+crash",
            objective.measure(|seed| {
                Box::new(sleeper(
                    &algo,
                    faulty.iter().copied(),
                    32,
                    adversaries::crash(&algo, faulty.iter().copied(), seed),
                    seed,
                )) as Box<dyn Adversary<_>>
            }),
        ),
    ];
    for (name, delay) in &builtins {
        println!(
            "| {:<16} | {:>10} | {:>8} | {:>12} |",
            name, delay.worst, delay.unstable, delay.total
        );
        best_builtin = best_builtin.max(*delay);
    }

    let mut cfg = SearchConfig::new(
        4,
        MoveSpace {
            raw_values: 8,
            salts: 3,
            max_lag: 3,
        },
        seed,
    );
    cfg.budget = budget;
    let start = std::time::Instant::now();
    let report = search::search(&objective, &cfg);
    let elapsed = start.elapsed().as_secs_f64();
    println!(
        "| {:<16} | {:>10} | {:>8} | {:>12} |",
        "searched script", report.delay.worst, report.delay.unstable, report.delay.total
    );

    let mut bits = BitVec::new();
    report.best.encode(&mut bits);
    println!(
        "\nsearch: {} sweep evaluations in {:.2} s ({:.0} evals/s); best script = {} rounds, {} bits encoded",
        report.evaluations,
        elapsed,
        report.evaluations as f64 / elapsed,
        report.best.len(),
        bits.len()
    );
    println!(
        "search vs best built-in: worst {} vs {} ({})",
        report.delay.worst,
        best_builtin.worst,
        if report.delay > best_builtin {
            "search wins"
        } else {
            "library wins — raise the budget"
        }
    );
}
