//! Flight-recorder demo: run A(4, 1) live on real OS threads with a
//! recording observability bundle attached, push the fault budget over
//! the line mid-run (two simultaneous equivocators — one more than
//! `f = 1` tolerates), and watch the watchdog fire the flight recorder:
//! the last window of merged, globally-ordered trace events is frozen
//! and printed as a table, followed by the recovery percentiles and the
//! run's metrics.
//!
//! Run with `cargo run --release --features trace --example trace_live`.

use synchronous_counting::core::CounterBuilder;
use synchronous_counting::protocol::Counter;
use synchronous_counting::runtime::obs::FlightConfig;
use synchronous_counting::runtime::{
    run_deterministic, run_live_obs, FaultEntry, FaultKind, FaultPlan, RuntimeConfig, RuntimeObs,
};

/// Nearest-rank percentile on a sorted sample.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let counter = CounterBuilder::corollary1(1, 2)?.build()?;
    println!(
        "A(4,1): n = 4, f = {}, counting mod {}",
        counter.resilience(),
        counter.modulus()
    );

    // Probe the fault-free run on the deterministic harness to learn
    // where this seed confirms stability; the live run below is the same
    // protocol on the same seed, so the burst lands after confirmation.
    let seed = 90;
    let probe_cfg = RuntimeConfig {
        period_ns: 2_000_000, // 2 ms rounds
        horizon: 200,
        seed,
        confirm: None,
        quorum: None,
        plan: FaultPlan::honest(4),
    };
    let stable_at = run_deterministic(&counter, &probe_cfg)?
        .first_stable_round
        .expect("the fault-free run stabilises");

    // Over budget: A(4,1) masks any single fault, so ONE equivocator
    // would be absorbed silently. TWO simultaneous equivocators leave
    // only two fresh board rows — below any majority quorum — and the
    // watchdog sees confirmed stability collapse.
    let burst_start = stable_at + 6;
    let burst_end = burst_start + 16;
    let plan = FaultPlan::new(
        4,
        (2..4)
            .map(|node| FaultEntry {
                node,
                from_round: burst_start,
                until_round: Some(burst_end),
                kind: FaultKind::Equivocate,
            })
            .collect(),
    )?;
    let config = RuntimeConfig {
        // Re-stabilisation after the burst takes a handful of rounds in
        // practice; 57 spare rounds keep the demo under a second.
        horizon: burst_end + 57,
        // The derived quorum `n − fault_count` is 2 here — no majority of
        // n = 4 — so pin the watchdog to 3 agreeing reports.
        quorum: Some(3),
        plan,
        ..probe_cfg
    };
    println!(
        "stable from round {stable_at}; equivocation burst on nodes 2 and 3 \
         over rounds [{burst_start}, {burst_end})\n"
    );

    // A recording bundle: per-thread event rings, a metrics registry, and
    // the flight recorder. The recorder keeps the first trigger only, and
    // on a loaded machine scheduler noise under the saturating reader can
    // trip the miss-storm alarm before the scripted burst — park that
    // threshold out of reach so the demo shows the stability-loss path.
    let obs = RuntimeObs::recording(FlightConfig {
        miss_storm: u64::MAX,
        ..FlightConfig::default()
    });
    let (report, reads) = run_live_obs(&counter, &config, &obs, |handle| {
        // Serve counter reads through the metered path while the burst
        // is raging — the meter feeds the `runtime.reads` counter.
        let metered = obs.meter_reads(handle);
        let mut reads = 0u64;
        while !metered.is_done() {
            metered.read();
            reads += 1;
        }
        reads
    })?;

    // --- the flight recorder's frozen window. -----------------------------
    assert!(
        obs.flight_fired(),
        "the over-budget burst must trip the watchdog"
    );
    let dump = obs.flight_dump().expect("fired recorder has a dump");
    print!("{}", dump.to_table());

    // --- recovery percentiles and the run's metrics. ----------------------
    let mut recovery_ns: Vec<u64> = report.recoveries.iter().map(|r| r.nanos).collect();
    recovery_ns.sort_unstable();
    println!(
        "\n{} recoveries; re-stabilisation p50 {:.1} ms, p90 {:.1} ms, max {:.1} ms",
        recovery_ns.len(),
        percentile(&recovery_ns, 0.5) as f64 / 1e6,
        percentile(&recovery_ns, 0.9) as f64 / 1e6,
        recovery_ns.last().copied().unwrap_or(0) as f64 / 1e6
    );

    let metrics = obs.metrics().expect("recording bundle snapshots");
    println!(
        "{} rounds in {:.1} ms; {} snapshot reads served, {} publishes, \
         {} deadline misses, {} events pushed",
        report.rounds,
        report.wall_nanos as f64 / 1e6,
        reads,
        metrics.counter("runtime.publishes").unwrap_or(0),
        metrics.counter("runtime.deadline_misses").unwrap_or(0),
        obs.collector().expect("recording bundle").total_pushed()
    );
    println!(
        "the same dump as JSON-lines starts: {}",
        dump.to_jsonl().lines().next().unwrap_or_default()
    );
    Ok(())
}
