//! Panic-safety regression suite for the executor: a panicking `map`
//! must not poison the pool, later submissions, or per-worker
//! [`WorkerScratch`] state. The scenario that motivated these tests is a
//! worker task that panics halfway through mutating its scratch slot —
//! without unwind discarding, the *next* batch folded against the
//! half-mutated leftovers.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use sc_exec::{Pool, WorkerScratch};

#[test]
fn panicking_map_does_not_poison_the_next_fold() {
    // Per-worker accumulators that the panicking task corrupts mid-way:
    // it pushes a poison marker *then* panics, so a slot returned to the
    // table despite the unwind would contaminate the next batch's fold.
    let scratch: WorkerScratch<Vec<u64>> = WorkerScratch::new();
    let pool = Pool::new(3);

    let attempt = catch_unwind(AssertUnwindSafe(|| {
        pool.map(32, 4, |i| {
            scratch.with(Vec::new, |acc| {
                if i == 13 {
                    acc.push(u64::MAX); // half-done mutation…
                    panic!("task 13 exploded mid-mutation");
                }
                acc.push(i as u64);
            });
            i
        })
    }));
    assert!(attempt.is_err(), "the panic must re-raise on the submitter");

    // Whatever survived in the table must be clean: the panicking
    // thread's slot was dropped on unwind, not returned.
    for slot in scratch.take_all() {
        assert!(
            !slot.contains(&u64::MAX),
            "a half-mutated scratch slot leaked past the panic: {slot:?}"
        );
    }

    // The next submission folds correctly from fresh scratch.
    let got = pool.map(16, 4, |i| {
        scratch.with(Vec::new, |acc| acc.push(i as u64));
        i * 2
    });
    assert_eq!(got, (0..16).map(|i| i * 2).collect::<Vec<_>>());
    let mut folded: Vec<u64> = scratch.take_all().into_iter().flatten().collect();
    folded.sort_unstable();
    assert_eq!(folded, (0..16).collect::<Vec<u64>>());
}

#[test]
fn batch_aborts_eagerly_after_a_panic() {
    // Once a task panics, indices claimed afterwards are drained without
    // executing. Honest tasks take ~0.5 ms here so the racing claimant
    // cannot burn through the whole batch before the abort flag lands —
    // the unwind itself costs far less than the 30+ ms the full batch
    // would need.
    let pool = Pool::new(2);
    let executed = AtomicUsize::new(0);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        pool.map(64, 2, |i| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                panic!("first task fails");
            }
            std::thread::sleep(std::time::Duration::from_micros(500));
            i
        })
    }));
    assert!(attempt.is_err());
    // 64 tasks, 2 claimants, abort flagged on the very first index: the
    // vast majority of the batch must have been skipped, not executed.
    let ran = executed.load(Ordering::Relaxed);
    assert!(
        ran < 60,
        "abort flag must stop the batch from running every task, ran {ran}"
    );

    // The pool itself survives and serves the next batch in full.
    assert_eq!(pool.map(8, 4, |i| i + 1), (1..=8).collect::<Vec<_>>());
}

#[test]
fn serial_map_skips_everything_after_the_panicking_index() {
    // cap = 1 executes on the submitting thread in index order, so the
    // abort semantics are exact: the panic propagates immediately and
    // no later index runs.
    let pool = Pool::new(2);
    let executed = AtomicUsize::new(0);
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        pool.map(16, 1, |i| {
            executed.fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                panic!("index 3 fails serially");
            }
            i
        })
    }));
    assert!(attempt.is_err());
    assert_eq!(
        executed.load(Ordering::Relaxed),
        4,
        "serial execution stops at the panicking index"
    );
    assert_eq!(pool.map(4, 4, |i| i), vec![0, 1, 2, 3]);
}

#[test]
fn repeated_panics_never_wedge_the_pool() {
    // A pool that leaks a ticket, a slot, or a poisoned mutex on panic
    // eventually deadlocks under repetition. Hammer it.
    let pool = Pool::new(2);
    for round in 0..50 {
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            pool.map(8, 4, move |i| {
                if i == round % 8 {
                    panic!("round {round} fails at {i}");
                }
                i
            })
        }));
        assert!(attempt.is_err(), "round {round} must re-raise");
        let ok = pool.map(4, 4, |i| i * 10);
        assert_eq!(ok, vec![0, 10, 20, 30], "round {round} aftermath");
    }
}
