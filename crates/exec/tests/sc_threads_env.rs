//! `SC_THREADS` end-to-end: the override must reach [`sc_exec::threads`]
//! and size the process-wide pool. This lives in its own integration
//! binary — and therefore its own process — because both values are
//! probed once and cached for the process lifetime, so the variable must
//! be set before anything touches them.

use std::sync::atomic::{AtomicUsize, Ordering};

#[test]
fn sc_threads_overrides_the_probed_parallelism() {
    // Set before the first `threads()` call anywhere in this process; no
    // other thread is running yet — this binary has only this test.
    std::env::set_var("SC_THREADS", "7");
    assert_eq!(sc_exec::threads(), 7);
    // The submitter always participates, so the pool carries one fewer.
    assert_eq!(sc_exec::pool().workers(), 6);
    // And the global map actually fans out across them, in order.
    let claimed = AtomicUsize::new(0);
    let doubled = sc_exec::map(100, sc_exec::threads(), |i| {
        claimed.fetch_add(1, Ordering::Relaxed);
        i * 2
    });
    assert_eq!(claimed.load(Ordering::Relaxed), 100);
    assert_eq!(doubled, (0..100).map(|i| i * 2).collect::<Vec<_>>());
}
