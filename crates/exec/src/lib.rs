//! Persistent work-stealing executor for the workspace's fan-out sites.
//!
//! Every parallel site in the workspace — [`Batch`](../sc_sim) sweeps,
//! `SlicedBatch` lane groups, the attack-search restart fan-out, the
//! verifier's fault-set fan-out, and `sweep_family` candidate screening —
//! shares one shape: `len` independent tasks where task `i`'s result is a
//! pure function of `i`, folded back **in index order**. [`Pool::map`]
//! serves exactly that shape from a lazily-started pool of persistent OS
//! threads, so repeated small fan-outs stop paying a `thread::scope`
//! spawn/join per call:
//!
//! * **Determinism.** Workers *claim* indices dynamically (an atomic
//!   counter — the work-stealing), but results land in per-index slots and
//!   are returned in index order. Since every caller's task is pure per
//!   index, the output is bitwise identical for every pool size and cap,
//!   including fully serial execution.
//! * **Submitter self-sufficiency.** The submitting thread claims indices
//!   itself after enqueueing at most `cap - 1` wake-up tickets, so a `map`
//!   always makes progress even when every pool worker is busy — nested
//!   submission (a task that itself calls [`Pool::map`]) cannot deadlock.
//! * **Panic propagation.** A panicking task is caught on the worker,
//!   recorded, and re-raised on the submitting thread once the batch has
//!   drained, matching the old `scope.join().expect(…)` behaviour. The
//!   batch aborts eagerly: indices claimed after the first panic are
//!   drained without executing the task, and per-worker
//!   [`WorkerScratch`] slots touched by the panicking closure are
//!   discarded rather than returned, so the next submission starts from
//!   freshly initialised scratch instead of half-mutated state.
//!
//! The pool size comes from [`threads`]: the `SC_THREADS` environment
//! variable when set (clamped to ≥ 1), else `available_parallelism`. The
//! global pool keeps `threads() - 1` workers because the submitter always
//! participates — a budget of `N` means at most `N` threads execute a map.
//!
//! [`WorkerScratch`] complements the pool with typed per-thread scratch
//! slots so hot-path state (round workspaces, plane arenas, warm solvers)
//! is built once per worker and reused across calls instead of per
//! invocation.

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::ThreadId;
use std::time::Instant;

/// Parses an `SC_THREADS`-style override: a decimal thread budget, clamped
/// to at least 1. Returns `None` (fall back to `available_parallelism`)
/// when the variable is unset, empty, or not a number.
pub fn thread_budget(raw: Option<&str>) -> Option<usize> {
    let text = raw?.trim();
    let parsed: usize = text.parse().ok()?;
    Some(parsed.max(1))
}

/// The process-wide thread budget: `SC_THREADS` when set (see
/// [`thread_budget`]), else `available_parallelism`, else 1. Cached on
/// first use — changing the environment afterwards has no effect.
pub fn threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        let env = std::env::var("SC_THREADS").ok();
        thread_budget(env.as_deref())
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
    })
}

/// The global pool: `threads() - 1` persistent workers (the submitting
/// thread is always the remaining executor), started on first use.
pub fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(threads().saturating_sub(1)))
}

/// `pool().map(len, cap, task)` — the call shape every fan-out site uses.
pub fn map<T, F>(len: usize, cap: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    pool().map(len, cap, task)
}

/// Lifetime pool introspection counters. All updates are relaxed atomics:
/// the hot claim path pays exactly one extra `fetch_add`, everything else
/// is per-batch or per-panic (cold).
#[derive(Default)]
struct StatCells {
    batches: AtomicU64,
    submitted: AtomicU64,
    claimed: AtomicU64,
    panicked: AtomicU64,
    busy_ns: AtomicU64,
}

/// A point-in-time copy of a pool's introspection counters
/// ([`Pool::stats`]). Counters are lifetime totals, monotone across
/// snapshots; observability code derives rates by differencing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Background worker threads (the submitter is always one more).
    pub workers: usize,
    /// `map` calls served (serial fast path included).
    pub batches: u64,
    /// Task indices submitted across all batches.
    pub submitted: u64,
    /// Task indices claimed and executed (equals `submitted` once all
    /// batches have drained, short only of serial-path panics).
    pub claimed: u64,
    /// Tasks that panicked (each re-raised on its submitter).
    pub panicked: u64,
    /// Total wall nanoseconds background workers spent inside batches
    /// (executing claims). Submitter participation is not counted — it
    /// is the caller's own time. Idle time is uptime minus this.
    pub busy_ns: u64,
}

/// The per-batch progress ledger, shared between submitter and workers.
struct BatchState {
    /// Indices fully executed (slot written or panic recorded).
    finished: usize,
    /// First task panic, re-raised by the submitter after the drain.
    panic: Option<Box<dyn Any + Send>>,
}

/// The type-erased heart of one `map` call. Lives in an [`Arc`] so queue
/// tickets keep it alive past the submitter's return: a worker that pops a
/// stale ticket finds `next >= len` and exits without ever touching the
/// (by then freed) closure or slots behind the raw pointers.
struct BatchCore {
    /// Monomorphised entry point restoring the erased `F`/`T` types.
    enter: unsafe fn(&BatchCore),
    /// Points at the submitter's `F`; valid while any index `< len` is
    /// unclaimed or in flight, i.e. until `finished == len`.
    task: *const (),
    /// Points at the submitter's `[Slot<T>]`; same validity as `task`.
    slots: *const (),
    /// Claim counter — the work-stealing. Values `>= len` mean "done".
    next: AtomicUsize,
    len: usize,
    /// Set on the first task panic. Later claimants still drain their
    /// indices (the `finished == len` handshake must complete) but skip
    /// executing the task: the batch's result is already doomed to
    /// re-raise, so running more of a possibly-corrupted closure only
    /// wastes work and risks compounding damage.
    aborted: AtomicBool,
    state: Mutex<BatchState>,
    done: Condvar,
    /// The owning pool's counters (claim / panic accounting).
    stats: Arc<StatCells>,
}

// The raw pointers are only dereferenced for claimed indices `< len`,
// which the submitter outlives by construction (it blocks until
// `finished == len`).
unsafe impl Send for BatchCore {}
unsafe impl Sync for BatchCore {}

/// One result cell; written by exactly one claimant, read by the
/// submitter only after the `finished == len` handshake.
struct Slot<T>(UnsafeCell<Option<T>>);

unsafe impl<T: Send> Sync for Slot<T> {}

/// Claims and executes indices of `core`'s batch until none remain.
/// Shared by the submitter and every ticket-holding worker.
///
/// # Safety
///
/// `core.task` must point at a live `F` and `core.slots` at `core.len`
/// live `Slot<T>` cells for as long as any index `< len` is in flight.
unsafe fn enter_batch<T, F>(core: &BatchCore)
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    loop {
        let index = core.next.fetch_add(1, Ordering::Relaxed);
        if index >= core.len {
            return;
        }
        core.stats.claimed.fetch_add(1, Ordering::Relaxed);
        // Only form references once the claim guarantees liveness.
        let task = &*(core.task as *const F);
        let slots = core.slots as *const Slot<T>;
        // Slot writes precede the `finished` bump: the submitter reads
        // slots only after observing `finished == len` under the mutex.
        let panicked = if core.aborted.load(Ordering::Relaxed) {
            None // drain the claim without running the doomed task
        } else {
            match catch_unwind(AssertUnwindSafe(|| task(index))) {
                Ok(value) => {
                    *(*slots.add(index)).0.get() = Some(value);
                    None
                }
                Err(payload) => {
                    core.aborted.store(true, Ordering::Relaxed);
                    core.stats.panicked.fetch_add(1, Ordering::Relaxed);
                    Some(payload)
                }
            }
        };
        let mut state = core.state.lock().unwrap();
        if let Some(payload) = panicked {
            state.panic.get_or_insert(payload);
        }
        state.finished += 1;
        if state.finished == core.len {
            core.done.notify_all();
        }
    }
}

/// The ticket queue workers block on.
struct Queue {
    jobs: Mutex<VecDeque<Arc<BatchCore>>>,
    available: Condvar,
}

/// A persistent pool of detached worker threads serving [`Pool::map`]
/// batches. The global instance is [`pool`]; sized instances exist for
/// benchmarks and tests.
pub struct Pool {
    queue: Arc<Queue>,
    workers: usize,
    stats: Arc<StatCells>,
}

impl Pool {
    /// Starts `workers` detached pool threads (0 is valid: every `map`
    /// runs serially on the submitting thread).
    pub fn new(workers: usize) -> Pool {
        let queue = Arc::new(Queue {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        });
        let stats = Arc::new(StatCells::default());
        let mut started = 0;
        for worker in 0..workers {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let spawned = std::thread::Builder::new()
                .name(format!("sc-exec-{worker}"))
                .spawn(move || worker_loop(&queue, &stats));
            if spawned.is_ok() {
                started += 1;
            }
        }
        Pool {
            queue,
            workers: started,
            stats,
        }
    }

    /// Background workers (the submitter is always one more executor).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// A snapshot of the pool's lifetime counters. Lock-free reads of
    /// relaxed atomics — safe to poll from a metrics thread at any rate.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers,
            batches: self.stats.batches.load(Ordering::Relaxed),
            submitted: self.stats.submitted.load(Ordering::Relaxed),
            claimed: self.stats.claimed.load(Ordering::Relaxed),
            panicked: self.stats.panicked.load(Ordering::Relaxed),
            busy_ns: self.stats.busy_ns.load(Ordering::Relaxed),
        }
    }

    /// Batches currently enqueued and not yet picked up (wake-up tickets
    /// outstanding). Takes the queue lock briefly; observability only.
    pub fn queue_depth(&self) -> usize {
        self.queue.jobs.lock().unwrap().len()
    }

    /// Evaluates `task(0..len)` with at most `cap` threads (submitter
    /// included) and returns the results in index order. `task` must be a
    /// pure function of its index for the thread-count invariance
    /// contract to hold — every call site in the workspace is.
    pub fn map<T, F>(&self, len: usize, cap: usize, task: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if len == 0 {
            return Vec::new();
        }
        self.stats.batches.fetch_add(1, Ordering::Relaxed);
        self.stats
            .submitted
            .fetch_add(len as u64, Ordering::Relaxed);
        let cap = cap.min(len).max(1);
        if cap == 1 || self.workers == 0 {
            let out: Vec<T> = (0..len).map(task).collect();
            self.stats.claimed.fetch_add(len as u64, Ordering::Relaxed);
            return out;
        }

        let slots: Vec<Slot<T>> = (0..len).map(|_| Slot(UnsafeCell::new(None))).collect();
        let core = Arc::new(BatchCore {
            enter: enter_batch::<T, F>,
            task: (&task as *const F).cast(),
            slots: slots.as_ptr().cast(),
            next: AtomicUsize::new(0),
            len,
            aborted: AtomicBool::new(false),
            state: Mutex::new(BatchState {
                finished: 0,
                panic: None,
            }),
            done: Condvar::new(),
            stats: Arc::clone(&self.stats),
        });

        let tickets = (cap - 1).min(self.workers);
        {
            let mut jobs = self.queue.jobs.lock().unwrap();
            for _ in 0..tickets {
                jobs.push_back(Arc::clone(&core));
            }
        }
        if tickets == 1 {
            self.queue.available.notify_one();
        } else {
            self.queue.available.notify_all();
        }

        // The submitter claims indices too: progress is guaranteed even
        // when every worker is busy, so nested maps cannot deadlock.
        unsafe { enter_batch::<T, F>(&core) };

        let panic = {
            let mut state = core.state.lock().unwrap();
            while state.finished < len {
                state = core.done.wait(state).unwrap();
            }
            state.panic.take()
        };
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|slot| {
                slot.0
                    .into_inner()
                    .expect("every claimed index wrote its slot")
            })
            .collect()
    }
}

fn worker_loop(queue: &Queue, stats: &StatCells) {
    loop {
        let core = {
            let mut jobs = queue.jobs.lock().unwrap();
            loop {
                if let Some(core) = jobs.pop_front() {
                    break core;
                }
                jobs = queue.available.wait(jobs).unwrap();
            }
        };
        let entered = Instant::now();
        unsafe { (core.enter)(&core) };
        stats
            .busy_ns
            .fetch_add(entered.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Typed per-worker scratch: one slot per OS thread, keyed by
/// [`ThreadId`], so hot-path state is built once per worker and stays
/// warm across [`Pool::map`] calls.
///
/// Usable as a `static` (state warm across calls, `T: 'static`) or as a
/// stack local threaded through one fan-out (state warm across the items
/// one worker claims, `T` may borrow). [`WorkerScratch::with`] *takes*
/// the calling thread's slot for the duration of the closure, so nested
/// use from one thread initialises a fresh value instead of aliasing.
pub struct WorkerScratch<T> {
    slots: Mutex<Vec<(ThreadId, T)>>,
    /// `with` calls that reused a parked slot.
    warm: AtomicU64,
    /// `with` calls that ran `init` (first use per thread, or nested
    /// checkout).
    cold: AtomicU64,
}

impl<T> WorkerScratch<T> {
    /// An empty scratch table (usable in `static` position).
    pub const fn new() -> WorkerScratch<T> {
        WorkerScratch {
            slots: Mutex::new(Vec::new()),
            warm: AtomicU64::new(0),
            cold: AtomicU64::new(0),
        }
    }

    /// `with` calls that found a warm per-thread slot.
    pub fn warm_hits(&self) -> u64 {
        self.warm.load(Ordering::Relaxed)
    }

    /// `with` calls that had to build fresh state.
    pub fn cold_inits(&self) -> u64 {
        self.cold.load(Ordering::Relaxed)
    }

    /// Runs `body` with the calling thread's slot, initialising it via
    /// `init` on the thread's first use (or when the slot is checked
    /// out by a nested `with`). The slot is returned to the table
    /// afterwards; a panicking `body` drops it instead, so a fresh one
    /// is built on the next call.
    pub fn with<R>(&self, init: impl FnOnce() -> T, body: impl FnOnce(&mut T) -> R) -> R {
        let me = std::thread::current().id();
        let taken = {
            let mut slots = self.slots.lock().unwrap();
            slots
                .iter()
                .position(|(owner, _)| *owner == me)
                .map(|at| slots.swap_remove(at).1)
        };
        let cell = if taken.is_some() {
            &self.warm
        } else {
            &self.cold
        };
        cell.fetch_add(1, Ordering::Relaxed);
        let mut value = taken.unwrap_or_else(init);
        let out = body(&mut value);
        self.slots.lock().unwrap().push((me, value));
        out
    }

    /// Drains every parked slot (used to fold per-worker state — audit
    /// counters, forked filters — back into a caller's aggregate).
    pub fn take_all(&self) -> Vec<T> {
        let mut slots = self.slots.lock().unwrap();
        std::mem::take(&mut *slots)
            .into_iter()
            .map(|(_, value)| value)
            .collect()
    }
}

impl<T> Default for WorkerScratch<T> {
    fn default() -> WorkerScratch<T> {
        WorkerScratch::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_budget_parses_and_clamps() {
        assert_eq!(thread_budget(None), None);
        assert_eq!(thread_budget(Some("")), None);
        assert_eq!(thread_budget(Some("not a number")), None);
        assert_eq!(thread_budget(Some("-3")), None);
        assert_eq!(thread_budget(Some("0")), Some(1));
        assert_eq!(thread_budget(Some("1")), Some(1));
        assert_eq!(thread_budget(Some(" 7 ")), Some(7));
        assert_eq!(thread_budget(Some("64")), Some(64));
    }

    #[test]
    fn map_is_identity_ordered_for_every_pool_and_cap() {
        let serial: Vec<u64> = (0..97).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        for workers in [0, 1, 3, 7] {
            let pool = Pool::new(workers);
            for cap in [1, 2, 5, 64] {
                let got = pool.map(97, cap, |i| (i as u64).wrapping_mul(0x9E37));
                assert_eq!(got, serial, "workers={workers} cap={cap}");
            }
        }
    }

    #[test]
    fn empty_and_single_item_maps() {
        let pool = Pool::new(2);
        assert_eq!(pool.map(0, 8, |i| i), Vec::<usize>::new());
        assert_eq!(pool.map(1, 8, |i| i + 41), vec![41]);
    }

    #[test]
    fn nested_maps_do_not_deadlock() {
        let pool = Pool::new(2);
        let sums = pool.map(8, 8, |outer| {
            crate::map(5, 4, move |inner| outer * 10 + inner)
                .into_iter()
                .sum::<usize>()
        });
        let expect: Vec<usize> = (0..8).map(|outer| outer * 50 + 10).collect();
        assert_eq!(sums, expect);
    }

    #[test]
    fn panics_propagate_to_the_submitter() {
        let pool = Pool::new(2);
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            pool.map(16, 4, |i| {
                if i == 11 {
                    panic!("task 11 exploded");
                }
                i
            })
        }));
        let payload = attempt.expect_err("the task panic must re-raise");
        let text = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(text, "task 11 exploded");
        // The pool survives a panicked batch.
        assert_eq!(pool.map(4, 4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn worker_scratch_reuses_per_thread_state() {
        let scratch: WorkerScratch<Vec<u32>> = WorkerScratch::new();
        let first = scratch.with(|| vec![1], |v| v.clone());
        assert_eq!(first, vec![1]);
        scratch.with(|| unreachable!("slot must be reused"), |v| v.push(2));
        let drained = scratch.take_all();
        assert_eq!(drained, vec![vec![1, 2]]);
        // Nested `with` checks the slot out: the inner call re-inits.
        let nested: WorkerScratch<u32> = WorkerScratch::new();
        nested.with(
            || 5,
            |outer| {
                nested.with(|| 9, |inner| assert_eq!(*inner, 9));
                assert_eq!(*outer, 5);
            },
        );
        let mut parked = nested.take_all();
        parked.sort_unstable();
        assert_eq!(parked, vec![5, 9]);
    }

    #[test]
    fn stats_count_batches_tasks_and_panics() {
        let pool = Pool::new(2);
        let start = pool.stats();
        assert_eq!(start.workers, 2);
        assert_eq!((start.batches, start.submitted, start.claimed), (0, 0, 0));

        pool.map(10, 4, |i| i); // parallel path
        pool.map(5, 1, |i| i); // serial fast path
        let after = pool.stats();
        assert_eq!(after.batches, 2);
        assert_eq!(after.submitted, 15);
        assert_eq!(after.claimed, 15, "all submitted tasks drain");
        assert_eq!(after.panicked, 0);

        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.map(8, 4, |i| {
                if i == 3 {
                    panic!("boom");
                }
                i
            })
        }));
        let end = pool.stats();
        assert_eq!(end.batches, 3);
        assert_eq!(end.submitted, 23);
        assert_eq!(end.panicked, 1);
        // Aborted claims still drain: claimed covers the whole batch.
        assert_eq!(end.claimed, 23);
        // Stale wake-up tickets are popped asynchronously; the depth
        // must reach 0 once workers catch up.
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        while pool.queue_depth() > 0 && Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(pool.queue_depth(), 0, "no stale tickets after drains");
    }

    #[test]
    fn scratch_counts_warm_and_cold_paths() {
        let scratch: WorkerScratch<u32> = WorkerScratch::new();
        scratch.with(|| 1, |_| {});
        scratch.with(|| unreachable!(), |_| {});
        scratch.with(|| unreachable!(), |_| {});
        assert_eq!(scratch.cold_inits(), 1);
        assert_eq!(scratch.warm_hits(), 2);
    }

    #[test]
    fn pool_map_matches_serial_under_contention() {
        // Many small batches through one pool: the reuse regime the
        // executor exists for. Each batch's results must stay ordered.
        let pool = Pool::new(3);
        for round in 0..200usize {
            let got = pool.map(9, 4, move |i| round * 100 + i);
            let expect: Vec<usize> = (0..9).map(|i| round * 100 + i).collect();
            assert_eq!(got, expect, "round {round}");
        }
    }
}
