//! Vendored, dependency-free subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access to crates.io, so this shim
//! provides the surface the workspace's benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `sample_size` / `measurement_time`,
//! `bench_function` / `bench_with_input`, [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a plain timed loop: per sample the closure body is run
//! repeatedly for ~1/`sample_size` of the measurement budget, and the
//! median, minimum and maximum per-iteration times are printed. No HTML
//! reports, statistics engine, or regression baseline — just honest numbers
//! on stdout.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // First positional CLI argument acts as a substring filter, like
        // upstream `cargo bench -- <filter>`.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion { filter }
    }
}

impl Criterion {
    /// Accepted for source compatibility with upstream.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = id.to_string();
        if self.matches(&label) {
            run_benchmark(&label, 10, Duration::from_secs(3), f);
        }
        self
    }

    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }
}

/// A named group of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Accepted for source compatibility; this shim has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        if self.criterion.matches(&label) {
            run_benchmark(&label, self.sample_size, self.measurement_time, f);
        }
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (upstream emits summary reports here; the shim's
    /// output is already printed per benchmark).
    pub fn finish(self) {}
}

/// A benchmark name with a parameter, rendered `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the body.
#[derive(Debug)]
pub struct Bencher {
    /// Iterations the body should run this sample.
    iters: u64,
    /// Measured duration of the whole sample.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of `body`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    measurement_time: Duration,
    mut f: F,
) {
    // Calibrate: time one iteration to size the samples.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.as_secs_f64() / sample_size as f64;
    let iters_per_sample = (budget / per_iter.as_secs_f64()).clamp(1.0, 1e9) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let max = samples[samples.len() - 1];
    println!(
        "{label:<50} time: [{} {} {}] ({} samples × {} iters)",
        format_time(min),
        format_time(median),
        format_time(max),
        sample_size,
        iters_per_sample,
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_prints() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("shim");
        g.sample_size(2).measurement_time(Duration::from_millis(10));
        let mut runs = 0u64;
        g.bench_function("noop", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs > 0);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("other".into()),
        };
        let mut ran = false;
        c.bench_function("this_one", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
