//! Minimal loom-style model checker: exhaustive interleaving of a small
//! number of straight-line threads over cloneable shared state.
//!
//! The real `loom` crate explores thread schedules at the granularity of
//! atomic operations by instrumenting `std::sync::atomic`. This offline
//! shim takes a simpler but still exhaustive approach suited to the
//! mailbox seqlock protocol in `sc-runtime`: each thread is a list of
//! *steps* (closures over shared state `S` and a thread-local `L`), and
//! the explorer enumerates **every** interleaving of those step lists via
//! depth-first search, cloning the state at each branch point. An
//! invariant callback runs after every step of every schedule; the first
//! violation is reported with the schedule that produced it.
//!
//! Because each step runs atomically with respect to the other threads,
//! steps must be written at the granularity of individual shared-memory
//! accesses (one load or one store per step) for the exploration to be
//! meaningful — the same discipline loom imposes. With that granularity,
//! exhaustive interleaving of sequentially-consistent steps soundly
//! over-approximates the torn-read behaviours the seqlock defends
//! against: every possible "reader sees a half-written message" ordering
//! appears as some schedule.
//!
//! The number of schedules for threads with `k1, k2, ...` steps is the
//! multinomial `(k1+k2+...)! / (k1! k2! ...)` — keep step counts small
//! (≤ ~10 total for 3 threads) and cap exploration with
//! [`Explorer::schedule_limit`].

use std::fmt;

/// One atomic step of a modelled thread: mutates the shared state and the
/// thread's local state.
pub type Step<S, L> = Box<dyn Fn(&mut S, &mut L)>;

/// A modelled thread: a name (for diagnostics) and a straight-line list
/// of steps executed in order.
pub struct ModelThread<S, L> {
    pub name: &'static str,
    pub steps: Vec<Step<S, L>>,
}

impl<S, L> ModelThread<S, L> {
    pub fn new(name: &'static str, steps: Vec<Step<S, L>>) -> Self {
        ModelThread { name, steps }
    }
}

/// A schedule prefix that violated the invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Thread indices in execution order, up to and including the step
    /// that exposed the violation.
    pub schedule: Vec<usize>,
    /// The invariant's explanation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule {:?}: {}", self.schedule, self.message)
    }
}

/// Exploration statistics for a completed (violation-free) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// Number of complete schedules executed.
    pub schedules: u64,
    /// Total steps executed across all schedules.
    pub steps: u64,
}

/// Exhaustive-interleaving explorer over threads sharing state `S` with
/// per-thread locals `L`.
pub struct Explorer<S, L> {
    threads: Vec<ModelThread<S, L>>,
    schedule_limit: u64,
}

impl<S: Clone, L: Clone> Explorer<S, L> {
    pub fn new(threads: Vec<ModelThread<S, L>>) -> Self {
        Explorer {
            threads,
            schedule_limit: 5_000_000,
        }
    }

    /// Cap the number of complete schedules explored (safety valve for
    /// accidentally large models). Exceeding the cap panics: a truncated
    /// exploration would silently weaken the check.
    pub fn schedule_limit(mut self, limit: u64) -> Self {
        self.schedule_limit = limit;
        self
    }

    /// Run every interleaving from `initial` shared state and `locals`
    /// (one per thread), checking `invariant` after each step.
    ///
    /// The invariant receives the shared state, all thread locals, and
    /// the per-thread program counters (steps completed so far), and
    /// returns `Err(message)` to report a violation.
    pub fn check<F>(
        &self,
        initial: S,
        locals: Vec<L>,
        invariant: F,
    ) -> Result<ExploreStats, Violation>
    where
        F: Fn(&S, &[L], &[usize]) -> Result<(), String>,
    {
        assert_eq!(
            locals.len(),
            self.threads.len(),
            "one local state per thread"
        );
        let mut stats = ExploreStats {
            schedules: 0,
            steps: 0,
        };
        let mut pcs = vec![0usize; self.threads.len()];
        let mut schedule = Vec::new();
        self.dfs(
            &initial,
            &locals,
            &mut pcs,
            &mut schedule,
            &invariant,
            &mut stats,
        )?;
        Ok(stats)
    }

    fn dfs<F>(
        &self,
        state: &S,
        locals: &[L],
        pcs: &mut Vec<usize>,
        schedule: &mut Vec<usize>,
        invariant: &F,
        stats: &mut ExploreStats,
    ) -> Result<(), Violation>
    where
        F: Fn(&S, &[L], &[usize]) -> Result<(), String>,
    {
        let mut any_runnable = false;
        for t in 0..self.threads.len() {
            if pcs[t] >= self.threads[t].steps.len() {
                continue;
            }
            any_runnable = true;
            // Branch: clone the world, run thread t's next step.
            let mut next_state = state.clone();
            let mut next_locals = locals.to_vec();
            (self.threads[t].steps[pcs[t]])(&mut next_state, &mut next_locals[t]);
            pcs[t] += 1;
            schedule.push(t);
            stats.steps += 1;
            let verdict = invariant(&next_state, &next_locals, pcs);
            let result = match verdict {
                Err(message) => Err(Violation {
                    schedule: schedule.clone(),
                    message,
                }),
                Ok(()) => self.dfs(&next_state, &next_locals, pcs, schedule, invariant, stats),
            };
            schedule.pop();
            pcs[t] -= 1;
            result?;
        }
        if !any_runnable {
            stats.schedules += 1;
            assert!(
                stats.schedules <= self.schedule_limit,
                "model exceeded schedule limit {} — shrink the step lists",
                self.schedule_limit
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn incr_thread(times: usize) -> ModelThread<i64, ()> {
        let steps: Vec<Step<i64, ()>> = (0..times)
            .map(|_| Box::new(|s: &mut i64, _: &mut ()| *s += 1) as Step<i64, ()>)
            .collect();
        ModelThread::new("incr", steps)
    }

    #[test]
    fn schedule_count_is_multinomial() {
        // 2 threads × 3 steps each: C(6,3) = 20 schedules, 6 steps each.
        let explorer = Explorer::new(vec![incr_thread(3), incr_thread(3)]);
        let stats = explorer
            .check(0i64, vec![(), ()], |_, _, _| Ok(()))
            .expect("no violation");
        assert_eq!(stats.schedules, 20);
        // Steps counts edges of the prefix tree, shared between
        // schedules: Σ_{a≤3, b≤3} C(a+b, a) − 1 = 68.
        assert_eq!(stats.steps, 68);
    }

    #[test]
    fn finds_lost_update() {
        // Classic non-atomic read-modify-write: each thread loads into a
        // local, then stores local+1. Some interleaving loses an update.
        let make = || {
            let steps: Vec<Step<i64, i64>> = vec![
                Box::new(|s: &mut i64, l: &mut i64| *l = *s),
                Box::new(|s: &mut i64, l: &mut i64| *s = *l + 1),
            ];
            ModelThread::new("rmw", steps)
        };
        let explorer = Explorer::new(vec![make(), make()]);
        let result = explorer.check(0i64, vec![0, 0], |s, _, pcs| {
            if pcs.iter().all(|&pc| pc == 2) && *s != 2 {
                return Err(format!("lost update: counter = {s}"));
            }
            Ok(())
        });
        let violation = result.expect_err("interleaving must lose an update");
        assert!(violation.message.contains("lost update"));
    }

    #[test]
    fn three_thread_exploration_terminates() {
        let explorer = Explorer::new(vec![incr_thread(2), incr_thread(2), incr_thread(2)]);
        let stats = explorer
            .check(0i64, vec![(), (), ()], |_, _, _| Ok(()))
            .expect("no violation");
        // 6! / (2! 2! 2!) = 90 schedules.
        assert_eq!(stats.schedules, 90);
    }
}
