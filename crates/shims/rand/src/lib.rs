//! Vendored, dependency-free subset of the `rand` crate API.
//!
//! The build environment of this workspace has no network access to
//! crates.io, so the few `rand` features the workspace actually uses are
//! provided by this shim: the [`RngCore`] / [`SeedableRng`] traits, the
//! [`Rng`] extension trait with `random_range` / `random_bool`, and
//! [`rngs::SmallRng`] implemented as xoshiro256++ (the same generator family
//! upstream `SmallRng` uses on 64-bit targets) seeded through SplitMix64.
//!
//! Only determinism *within this workspace* is relied upon — no test or
//! experiment assumes upstream `rand`'s exact streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of uniformly distributed random bits.
pub trait RngCore {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&bytes[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it with SplitMix64 —
    /// distinct inputs yield well-separated streams.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Creates a generator seeded from another generator.
    fn from_rng<R: RngCore + ?Sized>(source: &mut R) -> Self {
        let mut seed = Self::Seed::default();
        source.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// A value type that integer ranges can be uniformly sampled over.
pub trait SampleUniform: Copy {
    /// Converts to the `u64` sampling domain.
    fn to_u64(self) -> u64;
    /// Converts back from the `u64` sampling domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Uniformly samples `v ∈ [0, span)` without modulo bias (Lemire rejection).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let m = (rng.next_u64() as u128) * (span as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// A range type that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample empty range");
        T::from_u64(lo + sample_below(rng, hi - lo))
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample empty range");
        // Wrapping: a range spanning the whole u64 domain has span 0.
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + sample_below(rng, span))
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability outside [0, 1]");
        // 53 uniform mantissa bits, exactly as upstream's float conversion.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// family upstream `SmallRng` uses on 64-bit targets.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 1, 2];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = rng.random_range(0..=3);
            assert!(w <= 3);
            let z: u8 = rng.random_range(0..3u8);
            assert!(z < 3);
        }
    }

    #[test]
    fn full_domain_inclusive_range_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(9);
        let _: u64 = rng.random_range(0..=u64::MAX);
        let v: u64 = rng.random_range(1..=u64::MAX);
        assert!(v >= 1);
    }

    #[test]
    fn range_sampling_covers_all_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.random_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn dyn_rng_core_supports_extension_methods() {
        let mut rng = SmallRng::seed_from_u64(4);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let v = dyn_rng.random_range(0..10u64);
        assert!(v < 10);
        let _ = dyn_rng.random_bool(0.5);
    }

    #[test]
    fn fill_bytes_fills_every_byte_position() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        // With 100 fills the probability any byte position stays 0 is ~0.
        let mut or = [0u8; 13];
        for _ in 0..100 {
            rng.fill_bytes(&mut buf);
            for (o, b) in or.iter_mut().zip(&buf) {
                *o |= b;
            }
        }
        assert!(or.iter().all(|&b| b != 0));
    }
}
