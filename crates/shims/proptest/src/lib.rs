//! Vendored, dependency-free subset of the `proptest` API.
//!
//! Provides exactly what this workspace's property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, integer-range and
//! tuple strategies, [`any`], [`Just`], weighted [`prop_oneof!`] unions,
//! [`collection::vec`], and `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a fixed deterministic
//! seed (plus the case index), and failing cases are reported by panic
//! without shrinking. That trades minimal counterexamples for a zero-dep
//! build; the fixed seed keeps CI runs reproducible.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::{Rng as _, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The deterministic generator driving value generation for one test.
#[derive(Clone, Debug)]
pub struct TestRng(SmallRng);

impl TestRng {
    /// A deterministic generator for case number `case` of a test.
    pub fn deterministic(case: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(
            0xC0FF_EE00 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ))
    }

    /// Raw access for strategies.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.0
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Generation configuration; only `cases` is honoured by this shim.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each `#[test]` runs.
    pub cases: u32,
    /// Accepted for source compatibility; unused (no shrinking).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform values over the whole domain of `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy produced by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.$m() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                    u64 => next_u64, usize => next_u64,
                    i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Weighted union of boxed strategies — the engine behind [`prop_oneof!`].
pub struct Union<T> {
    options: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(options: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
        let total: u64 = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! requires a positive total weight");
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.rng().random_range(0..self.total);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if roll < w {
                return s.generate(rng);
            }
            roll -= w;
        }
        unreachable!("weights summed incorrectly")
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;
    use std::ops::Range;

    /// Element-count specification for [`vec()`]: a fixed size or a range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `element` and a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec()`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.rng().random_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property test case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),)+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, Box::new($strategy) as Box<dyn $crate::Strategy<Value = _>>),)+
        ])
    };
}

/// Declares property tests: each `fn` runs `config.cases` deterministic
/// cases with its arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = ($config:expr);
        $(
            // `#[test]` itself is captured as one of the metas (matching it
            // literally next to `$meta:meta` would be ambiguous), so the
            // source's own `#[test]` attribute is re-emitted verbatim.
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::TestRng::deterministic(case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic(0);
        for _ in 0..100 {
            let (a, b) = (0u64..5, 10usize..=12).generate(&mut rng);
            assert!(a < 5 && (10..=12).contains(&b));
        }
    }

    #[test]
    fn oneof_covers_all_branches() {
        let s = prop_oneof![4 => 0u64..8, 1 => Just(u64::MAX)];
        let mut rng = crate::TestRng::deterministic(1);
        let mut saw_max = false;
        let mut saw_small = false;
        for _ in 0..200 {
            match s.generate(&mut rng) {
                u64::MAX => saw_max = true,
                v if v < 8 => saw_small = true,
                v => panic!("out of domain: {v}"),
            }
        }
        assert!(saw_max && saw_small);
    }

    #[test]
    fn vec_strategy_respects_size_range() {
        let s = crate::collection::vec(0u8..3, 2..5);
        let mut rng = crate::TestRng::deterministic(2);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// The macro itself: bindings, map, and assertions.
        #[test]
        fn macro_end_to_end(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let y = (0u64..10).prop_map(|v| v * 2).generate(&mut crate::TestRng::deterministic(x));
            prop_assert!(y % 2 == 0, "flag was {flag}");
        }
    }
}
