//! The collector: named per-thread rings merged into one global-order
//! event stream.
//!
//! A [`Collector`] hands each instrumented thread its own
//! [`EventRing`] (get-or-create by source name, same discipline as the
//! metrics registry), so producers never contend. [`Collector::collect`]
//! snapshots every ring and merges them into a single stream ordered by
//! `(t_ns, source, seq)` — timestamp first, with the source index and
//! the ring-local sequence number as deterministic tie-breakers, so two
//! collections over quiescent rings yield byte-identical streams.

use std::sync::{Arc, Mutex};

use crate::ring::{Event, EventRing};

/// One event tagged with where it came from: `source` indexes into the
/// owning stream's source-name table, `seq` is the ring-local sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaggedEvent {
    /// Index into [`MergedStream::sources`].
    pub source: u32,
    /// Producer-local sequence number.
    pub seq: u64,
    /// The event itself.
    pub event: Event,
}

/// A merged, globally-ordered snapshot of every ring a collector owns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MergedStream {
    /// Source names, indexed by [`TaggedEvent::source`].
    pub sources: Vec<String>,
    /// Events ordered by `(t_ns, source, seq)`.
    pub events: Vec<TaggedEvent>,
}

impl MergedStream {
    /// The events of `self` whose round is within `[first_round, ∞)`.
    pub fn since_round(&self, first_round: u64) -> MergedStream {
        MergedStream {
            sources: self.sources.clone(),
            events: self
                .events
                .iter()
                .copied()
                .filter(|t| t.event.round >= first_round)
                .collect(),
        }
    }

    /// The source name of a tagged event.
    pub fn source_name(&self, event: &TaggedEvent) -> &str {
        self.sources
            .get(event.source as usize)
            .map_or("?", String::as_str)
    }
}

/// Owns the per-thread rings and merges them on demand. Cheap to clone
/// through an `Arc`; ring handles are get-or-create by name so a
/// restarted producer thread reattaches to its ring.
pub struct Collector {
    ring_capacity: usize,
    rings: Mutex<Vec<(String, Arc<EventRing>)>>,
}

impl Collector {
    /// A collector whose rings each hold `ring_capacity` events
    /// (rounded up to a power of two per [`EventRing::new`]).
    pub fn new(ring_capacity: usize) -> Collector {
        Collector {
            ring_capacity,
            rings: Mutex::new(Vec::new()),
        }
    }

    /// The ring for `source`, creating it on first use. Each producer
    /// thread must use a distinct source name (rings are SPSC).
    pub fn ring(&self, source: &str) -> Arc<EventRing> {
        let mut rings = self.rings.lock().unwrap();
        match rings.iter().find(|(n, _)| n == source) {
            Some((_, ring)) => Arc::clone(ring),
            None => {
                let ring = Arc::new(EventRing::new(self.ring_capacity));
                rings.push((source.to_string(), Arc::clone(&ring)));
                ring
            }
        }
    }

    /// Total events pushed across all rings (lifetime, not recoverable).
    pub fn total_pushed(&self) -> u64 {
        self.rings
            .lock()
            .unwrap()
            .iter()
            .map(|(_, r)| r.pushed())
            .sum()
    }

    /// Snapshots every ring and merges into global `(t_ns, source, seq)`
    /// order. Safe to call while producers are still pushing; slots
    /// overwritten mid-scan are skipped, never torn.
    pub fn collect(&self) -> MergedStream {
        let rings: Vec<(String, Arc<EventRing>)> = self
            .rings
            .lock()
            .unwrap()
            .iter()
            .map(|(n, r)| (n.clone(), Arc::clone(r)))
            .collect();
        let mut sources = Vec::with_capacity(rings.len());
        let mut events = Vec::new();
        for (index, (name, ring)) in rings.into_iter().enumerate() {
            sources.push(name);
            for (seq, event) in ring.snapshot() {
                events.push(TaggedEvent {
                    source: index as u32,
                    seq,
                    event,
                });
            }
        }
        events.sort_by_key(|t| (t.event.t_ns, t.source, t.seq));
        MergedStream { sources, events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::EventKind;

    #[test]
    fn ring_handles_are_shared_by_source() {
        let collector = Collector::new(8);
        let a = collector.ring("node-0");
        let b = collector.ring("node-0");
        a.push(Event::new(5, EventKind::Custom, 0, 0, 0));
        assert_eq!(b.pushed(), 1);
    }

    #[test]
    fn merge_orders_by_time_then_source_then_seq() {
        let collector = Collector::new(8);
        let n0 = collector.ring("node-0");
        let n1 = collector.ring("node-1");
        n1.push(Event::new(10, EventKind::Publish, 1, 1, 0));
        n0.push(Event::new(10, EventKind::Publish, 1, 0, 0));
        n0.push(Event::new(3, EventKind::RoundOpen, 0, 0, 0));
        n1.push(Event::new(30, EventKind::Observe, 1, 1, 0));
        let stream = collector.collect();
        assert_eq!(stream.sources, vec!["node-0", "node-1"]);
        let order: Vec<(u64, u32)> = stream
            .events
            .iter()
            .map(|t| (t.event.t_ns, t.source))
            .collect();
        // t=10 ties broken by source index: node-0 before node-1.
        assert_eq!(order, vec![(3, 0), (10, 0), (10, 1), (30, 1)]);
    }

    #[test]
    fn since_round_filters_the_window() {
        let collector = Collector::new(8);
        let ring = collector.ring("monitor");
        for round in 0..6u64 {
            ring.push(Event::new(round * 100, EventKind::Verdict, round, 0, 0));
        }
        let stream = collector.collect().since_round(4);
        assert_eq!(stream.events.len(), 2);
        assert!(stream.events.iter().all(|t| t.event.round >= 4));
        assert_eq!(stream.source_name(&stream.events[0]), "monitor");
    }
}
