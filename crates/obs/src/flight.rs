//! The flight recorder: freeze the last N rounds of trace events when a
//! watchdog anomaly fires, and dump them for post-mortem analysis.
//!
//! The recorder wraps a [`Collector`]. Watchdogs (the runtime's monitor
//! shim detecting an over-budget burst, a deadline-miss storm, or a
//! failed re-stabilisation) call [`FlightRecorder::trigger`]; the *first*
//! trigger wins — it snapshots every ring, keeps the events belonging to
//! the last `window_rounds` rounds, and freezes them as a [`FlightDump`].
//! Later triggers are no-ops so the dump always describes the earliest
//! anomaly, not whatever cascade followed it. Dumps render as JSON-lines
//! ([`FlightDump::to_jsonl`]) for machines and as an aligned table
//! ([`FlightDump::to_table`]) for humans.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use crate::collect::{Collector, MergedStream};

/// Why the recorder fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum TriggerReason {
    /// The monitor observed stability lost mid-run (over-budget burst).
    StabilityLost = 0,
    /// Deadline misses exceeded the configured per-observation storm
    /// threshold.
    MissStorm = 1,
    /// The run stayed unstable longer than the re-stabilisation budget.
    FailedRestabilise = 2,
    /// Explicit programmatic trigger (tests, examples, operators).
    Manual = 3,
}

impl TriggerReason {
    /// Stable lower-case name used in dumps.
    pub fn name(self) -> &'static str {
        match self {
            TriggerReason::StabilityLost => "stability_lost",
            TriggerReason::MissStorm => "miss_storm",
            TriggerReason::FailedRestabilise => "failed_restabilise",
            TriggerReason::Manual => "manual",
        }
    }
}

/// Watchdog thresholds. The recorder itself only uses `window_rounds`;
/// the storm and re-stabilisation limits are read by the runtime's
/// monitor shim, which owns the state needed to evaluate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightConfig {
    /// How many rounds of history to keep in a dump.
    pub window_rounds: u64,
    /// Deadline misses within one observation interval that count as a
    /// storm.
    pub miss_storm: u64,
    /// Consecutive unstable observations tolerated before the run is
    /// declared failed-to-restabilise.
    pub max_unstable_rounds: u64,
}

impl Default for FlightConfig {
    fn default() -> FlightConfig {
        FlightConfig {
            window_rounds: 16,
            miss_storm: 8,
            max_unstable_rounds: 32,
        }
    }
}

/// The frozen post-mortem: the anomaly plus the merged, globally-ordered
/// events of the `window_rounds` rounds leading up to it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// What fired the recorder.
    pub reason: TriggerReason,
    /// Round at which the anomaly was detected.
    pub round: u64,
    /// First round included in the window.
    pub first_round: u64,
    /// The frozen event stream (global `(t_ns, source, seq)` order).
    pub stream: MergedStream,
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl FlightDump {
    /// Renders the dump as JSON-lines: a header line describing the
    /// anomaly, then one line per event in global order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"flight\":");
        push_json_str(&mut out, self.reason.name());
        let _ = writeln!(
            out,
            ",\"round\":{},\"first_round\":{},\"events\":{}}}",
            self.round,
            self.first_round,
            self.stream.events.len()
        );
        for tagged in &self.stream.events {
            let e = &tagged.event;
            out.push_str("{\"t_ns\":");
            let _ = write!(out, "{}", e.t_ns);
            out.push_str(",\"source\":");
            push_json_str(&mut out, self.stream.source_name(tagged));
            out.push_str(",\"seq\":");
            let _ = write!(out, "{}", tagged.seq);
            out.push_str(",\"kind\":");
            push_json_str(&mut out, e.kind.name());
            let _ = writeln!(out, ",\"round\":{},\"a\":{},\"b\":{}}}", e.round, e.a, e.b);
        }
        out
    }

    /// Renders the dump as an aligned human-readable table.
    pub fn to_table(&self) -> String {
        let source_width = self
            .stream
            .sources
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(6)
            .max(6);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "flight recorder: {} at round {} (window [{}, {}], {} events)",
            self.reason.name(),
            self.round,
            self.first_round,
            self.round,
            self.stream.events.len()
        );
        let _ = writeln!(
            out,
            "{:>12}  {:<source_width$}  {:>5}  {:<16}  {:>20}  {:>20}",
            "t_ns", "source", "round", "kind", "a", "b"
        );
        for tagged in &self.stream.events {
            let e = &tagged.event;
            let _ = writeln!(
                out,
                "{:>12}  {:<source_width$}  {:>5}  {:<16}  {:>20}  {:>20}",
                e.t_ns,
                self.stream.source_name(tagged),
                e.round,
                e.kind.name(),
                e.a,
                e.b
            );
        }
        out
    }
}

/// First-trigger-wins recorder over a shared [`Collector`].
pub struct FlightRecorder {
    collector: Arc<Collector>,
    config: FlightConfig,
    fired: AtomicBool,
    dump: Mutex<Option<FlightDump>>,
}

impl FlightRecorder {
    /// A recorder watching `collector` with the given thresholds.
    pub fn new(collector: Arc<Collector>, config: FlightConfig) -> FlightRecorder {
        FlightRecorder {
            collector,
            config,
            fired: AtomicBool::new(false),
            dump: Mutex::new(None),
        }
    }

    /// The thresholds this recorder (and its watchdogs) run with.
    pub fn config(&self) -> FlightConfig {
        self.config
    }

    /// Whether the recorder has already fired.
    pub fn fired(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }

    /// Fires the recorder: freezes the last `window_rounds` rounds of
    /// events as of now. Only the first call wins; returns `true` iff
    /// this call produced the dump.
    pub fn trigger(&self, reason: TriggerReason, round: u64) -> bool {
        if self
            .fired
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return false;
        }
        let first_round = round.saturating_sub(self.config.window_rounds);
        let stream = self.collector.collect().since_round(first_round);
        *self.dump.lock().unwrap() = Some(FlightDump {
            reason,
            round,
            first_round,
            stream,
        });
        true
    }

    /// The frozen dump, if the recorder has fired.
    pub fn dump(&self) -> Option<FlightDump> {
        self.dump.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{Event, EventKind};

    fn seeded_recorder() -> (Arc<Collector>, FlightRecorder) {
        let collector = Arc::new(Collector::new(64));
        let ring = collector.ring("node-0");
        for round in 0..40u64 {
            ring.push(Event::new(
                round * 1000,
                EventKind::Publish,
                round,
                0,
                round,
            ));
        }
        let recorder = FlightRecorder::new(
            Arc::clone(&collector),
            FlightConfig {
                window_rounds: 5,
                ..FlightConfig::default()
            },
        );
        (collector, recorder)
    }

    #[test]
    fn first_trigger_wins_and_freezes_the_window() {
        let (collector, recorder) = seeded_recorder();
        assert!(!recorder.fired());
        assert!(recorder.trigger(TriggerReason::MissStorm, 39));
        assert!(!recorder.trigger(TriggerReason::Manual, 39));
        // Events pushed after the trigger do not leak into the dump.
        collector
            .ring("node-0")
            .push(Event::new(99_000, EventKind::Publish, 99, 0, 0));
        let dump = recorder.dump().unwrap();
        assert_eq!(dump.reason, TriggerReason::MissStorm);
        assert_eq!(dump.first_round, 34);
        assert!(dump.stream.events.iter().all(|t| t.event.round >= 34));
        assert!(dump.stream.events.iter().all(|t| t.event.round <= 39));
        assert!(!dump.stream.events.is_empty());
    }

    #[test]
    fn jsonl_has_header_plus_one_line_per_event() {
        let (_, recorder) = seeded_recorder();
        recorder.trigger(TriggerReason::StabilityLost, 39);
        let dump = recorder.dump().unwrap();
        let jsonl = dump.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), dump.stream.events.len() + 1);
        assert!(lines[0].contains("\"flight\":\"stability_lost\""));
        assert!(lines[1].starts_with("{\"t_ns\":"));
        assert!(lines[1].contains("\"source\":\"node-0\""));
        assert!(lines[1].contains("\"kind\":\"publish\""));
        // Every line is brace-delimited (JSON-lines shape).
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn table_lists_every_event() {
        let (_, recorder) = seeded_recorder();
        recorder.trigger(TriggerReason::FailedRestabilise, 39);
        let dump = recorder.dump().unwrap();
        let table = dump.to_table();
        assert!(table.contains("failed_restabilise"));
        assert_eq!(table.lines().count(), dump.stream.events.len() + 2);
    }

    #[test]
    fn json_strings_are_escaped() {
        let mut out = String::new();
        push_json_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\u000ad\"");
    }
}
