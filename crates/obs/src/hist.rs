//! Log-bucketed latency/round histograms with lossless snapshots.
//!
//! [`LogHistogram`] is the recording side: a fixed array of relaxed
//! atomic bucket counters, so `record` is wait-free and safe to call
//! from any thread of a live run. [`HistSnapshot`] is the analysis side:
//! a plain, mergeable, codec-serialisable copy with exact percentile
//! extraction *over the quantised samples* (see [`HistSnapshot::percentile`]
//! for the precise contract the property tests pin against a sorted-vec
//! oracle).
//!
//! # Bucketing
//!
//! The scheme is log-linear (HdrHistogram-style): values below
//! `2^SUB_BITS` get one bucket each (exact), and every octave above is
//! split into `2^SUB_BITS` linear sub-buckets, so the relative
//! quantisation error is bounded by `2^-SUB_BITS` (12.5% at the default
//! `SUB_BITS = 3`) while the whole `u64` range fits in
//! [`BUCKETS`] buckets. Boundaries are monotone and gap-free:
//! `bucket_bound(i) ≤ v < bucket_bound(i + 1) ⟺ bucket_index(v) == i`.

use std::sync::atomic::{AtomicU64, Ordering};

use sc_protocol::{BitReader, BitVec, CodecError};

/// Linear sub-bucket resolution: each octave splits into `2^SUB_BITS`
/// buckets, bounding relative quantisation error by `2^-SUB_BITS`.
pub const SUB_BITS: u32 = 3;

/// Total bucket count covering all of `u64`:
/// `2^SUB_BITS` exact low buckets plus `(64 - SUB_BITS)` octaves of
/// `2^SUB_BITS` sub-buckets each.
pub const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) << SUB_BITS;

/// The bucket index recording `value`. Monotone in `value`, gap-free,
/// and exact (`bucket_bound(bucket_index(v)) == v`) below `2^SUB_BITS`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < (1 << SUB_BITS) {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let mantissa = (value >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1);
    (((exp - SUB_BITS + 1) << SUB_BITS) | mantissa as u32) as usize
}

/// The smallest value mapping to bucket `index` — the bucket's
/// representative in percentile extraction.
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
#[inline]
pub fn bucket_bound(index: usize) -> u64 {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index < (1 << SUB_BITS) {
        return index as u64;
    }
    let high = (index as u32) >> SUB_BITS;
    let mantissa = (index as u64) & ((1 << SUB_BITS) - 1);
    let exp = high + SUB_BITS - 1;
    (1u64 << exp) | (mantissa << (exp - SUB_BITS))
}

/// Wait-free recording histogram: relaxed atomic buckets plus exact
/// count, sum, and max side-channels.
///
/// `record` costs one `fetch_add` on the bucket, two more for
/// count-and-sum, and a `fetch_max` — all relaxed, no fences, no
/// allocation. Snapshots are taken with [`LogHistogram::snapshot`].
pub struct LogHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl LogHistogram {
    /// An empty histogram covering all of `u64`.
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Wait-free, relaxed ordering throughout.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into a plain [`HistSnapshot`].
    ///
    /// Concurrent recording is permitted; the snapshot is then *some*
    /// interleaving (each bucket read once, relaxed), which is the usual
    /// monitoring contract. Quiescent histograms snapshot losslessly.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let n = b.load(Ordering::Relaxed);
                    (n > 0).then_some((i as u32, n))
                })
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// A plain, mergeable histogram snapshot: sparse `(bucket, count)` pairs
/// in ascending bucket order plus the exact count/sum/max side-channels.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<(u32, u64)>,
    /// Total samples.
    pub count: u64,
    /// Exact sum of all recorded values (wrapping at `u64`).
    pub sum: u64,
    /// Exact maximum recorded value (0 when empty).
    pub max: u64,
}

impl HistSnapshot {
    /// Merges `other` into `self`: the result is the snapshot of the
    /// union of both sample streams (max of maxes, sums added).
    pub fn merge(&mut self, other: &HistSnapshot) {
        let mut merged: Vec<(u32, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia == ib {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    } else if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else {
                        merged.push((ib, nb));
                        b.next();
                    }
                }
                (Some(_), None) => {
                    merged.extend(a.by_ref().copied());
                }
                (None, Some(_)) => {
                    merged.extend(b.by_ref().copied());
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Exact percentile over the *quantised* sample stream.
    ///
    /// Contract (the oracle the property tests check against): quantise
    /// every recorded sample to its bucket's lower bound
    /// ([`bucket_bound`]` ∘ `[`bucket_index`]), sort ascending, and
    /// return the element at rank `max(1, ceil(q · count))`. Returns 0
    /// on an empty snapshot. `q` is clamped to `[0, 1]`.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return bucket_bound(index as usize);
            }
        }
        bucket_bound(self.buckets.last().map_or(0, |&(i, _)| i as usize))
    }

    /// Mean of the recorded values (exact sum / count), 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p50 / p90 / p99 / max` summary row used by tables and
    /// trajectory artifacts.
    pub fn summary(&self) -> [u64; 4] {
        [
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
            self.max,
        ]
    }

    /// Appends the snapshot to `out` in the workspace codec style:
    /// bucket count (16 bits), then ascending `(index: 16, count: 64)`
    /// pairs, then count/sum/max at 64 bits each.
    pub fn encode(&self, out: &mut BitVec) {
        debug_assert!(self.buckets.len() <= BUCKETS);
        out.push_bits(self.buckets.len() as u64, 16);
        for &(index, n) in &self.buckets {
            out.push_bits(u64::from(index), 16);
            out.push_bits(n, 64);
        }
        out.push_bits(self.count, 64);
        out.push_bits(self.sum, 64);
        out.push_bits(self.max, 64);
    }

    /// Decodes a snapshot written by [`HistSnapshot::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError::OutOfBits`] on truncation;
    /// [`CodecError::InvalidField`] when a bucket index is out of range
    /// or the ascending-order invariant is violated.
    pub fn decode(input: &mut BitReader<'_>) -> Result<HistSnapshot, CodecError> {
        let len = input.read_bits(16)? as usize;
        let mut buckets = Vec::with_capacity(len.min(BUCKETS));
        let mut prev: Option<u32> = None;
        for _ in 0..len {
            let index = input.read_bits(16)? as u32;
            if index as usize >= BUCKETS || prev.is_some_and(|p| p >= index) {
                return Err(CodecError::InvalidField {
                    field: "histogram bucket index",
                    value: u64::from(index),
                });
            }
            prev = Some(index);
            let n = input.read_bits(64)?;
            buckets.push((index, n));
        }
        Ok(HistSnapshot {
            buckets,
            count: input.read_bits(64)?,
            sum: input.read_bits(64)?,
            max: input.read_bits(64)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_monotone_and_gap_free() {
        for i in 0..BUCKETS - 1 {
            assert!(bucket_bound(i) < bucket_bound(i + 1), "bucket {i}");
            assert_eq!(bucket_index(bucket_bound(i)), i);
            assert_eq!(bucket_index(bucket_bound(i + 1) - 1), i);
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_index(bucket_bound(BUCKETS - 1)), BUCKETS - 1);
    }

    #[test]
    fn small_values_are_exact() {
        for v in 0..(1u64 << SUB_BITS) {
            assert_eq!(bucket_bound(bucket_index(v)), v);
        }
    }

    #[test]
    fn record_snapshot_round_trip() {
        let h = LogHistogram::new();
        for v in [0, 1, 7, 8, 9, 100, 1000, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 8);
        assert_eq!(snap.max, u64::MAX);
        let mut bits = BitVec::new();
        snap.encode(&mut bits);
        let back = HistSnapshot::decode(&mut bits.reader()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn merge_is_stream_union() {
        let (a, b) = (LogHistogram::new(), LogHistogram::new());
        let union = LogHistogram::new();
        for v in [3u64, 17, 999] {
            a.record(v);
            union.record(v);
        }
        for v in [3u64, 250_000, 17] {
            b.record(v);
            union.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
    }

    #[test]
    fn percentiles_match_quantised_oracle() {
        let h = LogHistogram::new();
        let samples = [5u64, 5, 9, 12, 90, 1200, 1201, 40_000];
        for &v in &samples {
            h.record(v);
        }
        let snap = h.snapshot();
        let mut oracle: Vec<u64> = samples
            .iter()
            .map(|&v| bucket_bound(bucket_index(v)))
            .collect();
        oracle.sort_unstable();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            assert_eq!(snap.percentile(q), oracle[rank - 1], "q = {q}");
        }
        assert_eq!(snap.summary()[3], 40_000, "max is exact");
    }

    #[test]
    fn decode_rejects_disorder_and_bad_indices() {
        let mut bits = BitVec::new();
        bits.push_bits(2, 16);
        bits.push_bits(9, 16);
        bits.push_bits(1, 64);
        bits.push_bits(9, 16); // duplicate index: order violation
        bits.push_bits(1, 64);
        for _ in 0..3 {
            bits.push_bits(0, 64);
        }
        assert!(matches!(
            HistSnapshot::decode(&mut bits.reader()),
            Err(CodecError::InvalidField { .. })
        ));
        let mut bits = BitVec::new();
        bits.push_bits(1, 16);
        bits.push_bits(BUCKETS as u64, 16); // out of range
        bits.push_bits(1, 64);
        for _ in 0..3 {
            bits.push_bits(0, 64);
        }
        assert!(matches!(
            HistSnapshot::decode(&mut bits.reader()),
            Err(CodecError::InvalidField { .. })
        ));
    }
}
