//! Per-thread lock-free SPSC trace rings.
//!
//! Each instrumented thread owns one [`EventRing`]: a power-of-two array
//! of sequence-stamped slots written with the same seqlock discipline as
//! the runtime mailboxes. The producer never blocks and never allocates —
//! when the ring is full it overwrites the oldest slot, so a ring always
//! holds the *most recent* window of that thread's events. Any other
//! thread (the collector) may snapshot the ring at any time; a slot whose
//! version stamp does not match the expected generation is being
//! overwritten mid-read and is skipped rather than torn.
//!
//! # Slot protocol
//!
//! Slot `seq % capacity` carries event number `seq` with version
//! `2·seq + 1` while the producer is writing it and `2·seq + 2` once
//! stable. Because the version encodes the full sequence number (not
//! just parity), a reader can tell "this slot now holds a *newer*
//! generation" apart from "this slot is mid-write", which is what makes
//! overwrite-oldest safe without ever locking the producer.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// What happened. The vocabulary is shared by every instrumented crate;
/// the `u16` raw form is what lands in ring slots and dumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum EventKind {
    /// A node entered its round slot (`a` = node id).
    RoundOpen = 0,
    /// A node published its state (`a` = node id, `b` = packed state).
    Publish = 1,
    /// A publish landed after its deadline (`a` = node, `b` = lateness ns).
    PublishLate = 2,
    /// A node took its observation snapshot (`a` = node id).
    Observe = 3,
    /// A node read neighbours and stepped (`a` = node, `b` = new state).
    ReadStep = 4,
    /// A node missed a neighbour's publish (`a` = reader, `b` = writer).
    DeadlineMiss = 5,
    /// A fault window is active on a node this round (`a` = node,
    /// `b` = fault kind tag).
    FaultActive = 6,
    /// The monitor declared the run stable (`a` = agreed count).
    Stable = 7,
    /// The monitor lost stability (`a` = disagreeing verdict tag).
    Unstable = 8,
    /// Stability re-established after a burst (`a` = recovery rounds).
    Recovered = 9,
    /// Raw monitor verdict (`a` = verdict tag, `b` = sampled count).
    Verdict = 10,
    /// The flight recorder fired (`a` = trigger reason tag).
    FlightTrigger = 11,
    /// A worker claimed one task index (`a` = worker, `b` = index).
    TaskClaim = 12,
    /// A batch finished on this thread (`a` = tasks executed here).
    BatchDone = 13,
    /// Per-thread scratch reused warm (`a` = worker id).
    ScratchWarm = 14,
    /// Per-thread scratch built cold (`a` = worker id).
    ScratchCold = 15,
    /// One simulation scenario completed (`a` = seed, `b` = exit tag).
    Scenario = 16,
    /// An adversary-objective evaluation completed (`a` = evaluations).
    Eval = 17,
    /// The attack pre-filter rejected a candidate (`a` = rejected total).
    PrefilterReject = 18,
    /// Synthesis sweep progress (`a` = candidates done, `b` = total).
    SweepProgress = 19,
    /// Free-form event for tests and examples (`a`, `b` caller-defined).
    Custom = 20,
}

impl EventKind {
    /// Stable lower-case name used in JSON-lines dumps and tables.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::RoundOpen => "round_open",
            EventKind::Publish => "publish",
            EventKind::PublishLate => "publish_late",
            EventKind::Observe => "observe",
            EventKind::ReadStep => "read_step",
            EventKind::DeadlineMiss => "deadline_miss",
            EventKind::FaultActive => "fault_active",
            EventKind::Stable => "stable",
            EventKind::Unstable => "unstable",
            EventKind::Recovered => "recovered",
            EventKind::Verdict => "verdict",
            EventKind::FlightTrigger => "flight_trigger",
            EventKind::TaskClaim => "task_claim",
            EventKind::BatchDone => "batch_done",
            EventKind::ScratchWarm => "scratch_warm",
            EventKind::ScratchCold => "scratch_cold",
            EventKind::Scenario => "scenario",
            EventKind::Eval => "eval",
            EventKind::PrefilterReject => "prefilter_reject",
            EventKind::SweepProgress => "sweep_progress",
            EventKind::Custom => "custom",
        }
    }

    /// Inverse of `self as u16`; `None` for unknown raw values (a slot
    /// overwritten by a future vocabulary is skipped, not misread).
    pub fn from_raw(raw: u16) -> Option<EventKind> {
        Some(match raw {
            0 => EventKind::RoundOpen,
            1 => EventKind::Publish,
            2 => EventKind::PublishLate,
            3 => EventKind::Observe,
            4 => EventKind::ReadStep,
            5 => EventKind::DeadlineMiss,
            6 => EventKind::FaultActive,
            7 => EventKind::Stable,
            8 => EventKind::Unstable,
            9 => EventKind::Recovered,
            10 => EventKind::Verdict,
            11 => EventKind::FlightTrigger,
            12 => EventKind::TaskClaim,
            13 => EventKind::BatchDone,
            14 => EventKind::ScratchWarm,
            15 => EventKind::ScratchCold,
            16 => EventKind::Scenario,
            17 => EventKind::Eval,
            18 => EventKind::PrefilterReject,
            19 => EventKind::SweepProgress,
            20 => EventKind::Custom,
            _ => return None,
        })
    }
}

/// One structured trace event: a timestamp, a kind, the round it belongs
/// to, and two kind-specific payload words (see [`EventKind`] for each
/// kind's `a`/`b` meaning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanosecond timestamp (wall or virtual clock, run-relative).
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
    /// Round the event belongs to.
    pub round: u64,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

impl Event {
    /// Convenience constructor.
    pub fn new(t_ns: u64, kind: EventKind, round: u64, a: u64, b: u64) -> Event {
        Event {
            t_ns,
            kind,
            round,
            a,
            b,
        }
    }
}

struct Slot {
    /// `2·seq + 1` while writing event `seq`, `2·seq + 2` once stable,
    /// 0 when never written.
    version: AtomicU64,
    t_ns: AtomicU64,
    kind: AtomicU64,
    round: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            round: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// A fixed-capacity single-producer trace ring with overwrite-oldest
/// semantics. See the module docs for the slot protocol.
///
/// `push` is safe to call from exactly one thread at a time (the owning
/// producer); [`EventRing::snapshot`] may run concurrently from any
/// thread. All slot traffic is atomic, so even a misused ring can only
/// drop or skip events, never exhibit undefined behaviour.
pub struct EventRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Number of events ever pushed (the next sequence number). Written
    /// only by the producer, `Release` so a collector that observes it
    /// also observes the slots it covers.
    head: AtomicU64,
}

impl EventRing {
    /// A ring holding the most recent `capacity` events (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> EventRing {
        let cap = capacity.next_power_of_two().max(2);
        EventRing {
            slots: (0..cap).map(|_| Slot::empty()).collect(),
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events pushed over the ring's lifetime (≥ what a snapshot can
    /// recover once the ring has wrapped).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Appends one event, overwriting the oldest if the ring is full.
    /// Single-producer: must not race with another `push` on this ring.
    #[inline]
    pub fn push(&self, event: Event) {
        let seq = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        // Seqlock write: odd (writing) stamp, fence, relaxed payload,
        // even (stable) stamp with Release.
        slot.version.store(2 * seq + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.t_ns.store(event.t_ns, Ordering::Relaxed);
        slot.kind
            .store(u64::from(event.kind as u16), Ordering::Relaxed);
        slot.round.store(event.round, Ordering::Relaxed);
        slot.a.store(event.a, Ordering::Relaxed);
        slot.b.store(event.b, Ordering::Relaxed);
        slot.version.store(2 * seq + 2, Ordering::Release);
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Reads one stable slot generation. `None` if the slot is mid-write
    /// or already holds a different generation.
    fn read_seq(&self, seq: u64) -> Option<Event> {
        let slot = &self.slots[(seq & self.mask) as usize];
        let expect = 2 * seq + 2;
        if slot.version.load(Ordering::Acquire) != expect {
            return None;
        }
        let t_ns = slot.t_ns.load(Ordering::Relaxed);
        let kind = slot.kind.load(Ordering::Relaxed);
        let round = slot.round.load(Ordering::Relaxed);
        let a = slot.a.load(Ordering::Relaxed);
        let b = slot.b.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        if slot.version.load(Ordering::Relaxed) != expect {
            return None;
        }
        let kind = EventKind::from_raw(kind as u16)?;
        Some(Event {
            t_ns,
            kind,
            round,
            a,
            b,
        })
    }

    /// Copies out the currently recoverable events as `(seq, event)`
    /// pairs in sequence order. Slots overwritten (or mid-overwrite)
    /// during the scan are skipped, never torn.
    pub fn snapshot(&self) -> Vec<(u64, Event)> {
        let head = self.head.load(Ordering::Acquire);
        let first = head.saturating_sub(self.slots.len() as u64);
        (first..head)
            .filter_map(|seq| self.read_seq(seq).map(|e| (seq, e)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn kind_raw_round_trips() {
        for raw in 0..=20u16 {
            let kind = EventKind::from_raw(raw).unwrap();
            assert_eq!(kind as u16, raw);
            assert!(!kind.name().is_empty());
        }
        assert_eq!(EventKind::from_raw(21), None);
    }

    #[test]
    fn ring_keeps_most_recent_window() {
        let ring = EventRing::new(4);
        for i in 0..10u64 {
            ring.push(Event::new(i, EventKind::Custom, i, i * 2, 0));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|&(seq, _)| seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        for &(seq, event) in &events {
            assert_eq!(event.t_ns, seq);
            assert_eq!(event.a, seq * 2);
        }
        assert_eq!(ring.pushed(), 10);
    }

    #[test]
    fn concurrent_snapshot_never_tears() {
        let ring = Arc::new(EventRing::new(8));
        let writer = Arc::clone(&ring);
        let producer = std::thread::spawn(move || {
            for i in 0..200_000u64 {
                // a and b carry the same value: a torn read would show
                // a mismatch.
                writer.push(Event::new(i, EventKind::Custom, i, i, i));
            }
        });
        let mut seen = 0usize;
        while seen < 50 {
            for (seq, event) in ring.snapshot() {
                assert_eq!(event.a, event.b, "torn slot at seq {seq}");
                assert_eq!(event.t_ns, event.round);
                seen += 1;
            }
        }
        producer.join().unwrap();
        let last = ring.snapshot();
        assert_eq!(last.last().unwrap().0, 199_999);
    }
}
