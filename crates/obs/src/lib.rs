//! `sc-obs` — the workspace's lock-free observability substrate.
//!
//! Everything in this crate is observe-only by construction: recording a
//! metric or emitting a trace event never blocks, never allocates on the
//! hot path, and never feeds back into the instrumented computation —
//! which is what lets the runtime promise bit-identical digests with
//! tracing enabled or disabled. Consumer crates gate their wiring behind
//! a `trace` cargo feature whose disabled default compiles to inlined
//! no-ops (see each crate's `obs` shim module); this crate itself is
//! always the real implementation.
//!
//! The pieces:
//!
//! - [`metrics`]: a named registry of relaxed-atomic counters, gauges
//!   and log-bucketed histograms with lossless codec snapshots
//!   ([`Registry`], [`MetricsSnapshot`]).
//! - [`hist`]: the histogram itself ([`LogHistogram`], [`HistSnapshot`])
//!   with p50/p90/p99/max extraction exact against a sorted-vec oracle.
//! - [`ring`]: per-thread SPSC trace rings ([`EventRing`]) of
//!   sequence-stamped fixed slots with overwrite-oldest semantics.
//! - [`collect`]: the [`Collector`] merging rings into one stream in
//!   global `(t_ns, source, seq)` order.
//! - [`flight`]: the [`FlightRecorder`] — first anomaly freezes the last
//!   N rounds of events as JSON-lines plus a human-readable table.
//! - [`TraceSink`]: the seam instrumented code writes through, with
//!   [`NoopSink`] as the zero-cost disabled default and
//!   [`RingSink`] as the live implementation.

pub mod collect;
pub mod flight;
pub mod hist;
pub mod metrics;
pub mod ring;

pub use collect::{Collector, MergedStream, TaggedEvent};
pub use flight::{FlightConfig, FlightDump, FlightRecorder, TriggerReason};
pub use hist::{bucket_bound, bucket_index, HistSnapshot, LogHistogram, BUCKETS, SUB_BITS};
pub use metrics::{CounterCell, GaugeCell, MetricsSnapshot, Registry};
pub use ring::{Event, EventKind, EventRing};

use std::sync::{Arc, OnceLock};

/// Where instrumented code sends trace events. Implementations must be
/// observe-only: no blocking, no feedback into the caller.
pub trait TraceSink {
    /// Records one event.
    fn emit(&self, event: Event);
}

/// The zero-cost disabled default: `emit` is an inlined empty body, so a
/// sink-generic call site monomorphised with `NoopSink` compiles to
/// nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    #[inline(always)]
    fn emit(&self, _event: Event) {}
}

/// The live sink: one producer thread writing its [`Collector`]-owned
/// ring.
#[derive(Clone)]
pub struct RingSink(pub Arc<EventRing>);

impl TraceSink for RingSink {
    #[inline]
    fn emit(&self, event: Event) {
        self.0.push(event);
    }
}

/// The process-wide metrics registry. Sweep engines and the executor
/// meter through this; scoped runs (tests, the deterministic harness)
/// may instead carry their own [`Registry`] to stay isolated.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_sink_is_a_zst() {
        assert_eq!(std::mem::size_of::<NoopSink>(), 0);
        NoopSink.emit(Event::new(0, EventKind::Custom, 0, 0, 0));
    }

    #[test]
    fn ring_sink_forwards_to_the_ring() {
        let collector = Collector::new(8);
        let sink = RingSink(collector.ring("t"));
        sink.emit(Event::new(1, EventKind::Custom, 0, 7, 8));
        let stream = collector.collect();
        assert_eq!(stream.events.len(), 1);
        assert_eq!(stream.events[0].event.a, 7);
    }

    #[test]
    fn global_registry_is_a_singleton() {
        registry().counter("obs.lib.test").inc();
        assert!(registry().snapshot().counter("obs.lib.test").is_some());
    }
}
