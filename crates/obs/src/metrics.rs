//! The metrics registry: named atomic counters, gauges, and histograms
//! with lossless, codec-serialisable snapshots.
//!
//! Handles are `Arc`s handed out by [`Registry::counter`] /
//! [`Registry::gauge`] / [`Registry::histogram`] (get-or-register by
//! name, so every call site naming the same metric shares one cell).
//! Recording is relaxed-atomic and wait-free; the registry lock is taken
//! only at registration and snapshot time, never on the hot path. The
//! process-wide instance is [`crate::registry`].

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sc_protocol::{BitReader, BitVec, CodecError};

use crate::hist::{HistSnapshot, LogHistogram};

/// A monotone counter: one relaxed `fetch_add` per increment.
#[derive(Debug, Default)]
pub struct CounterCell(AtomicU64);

impl CounterCell {
    /// A zeroed counter.
    pub const fn new() -> CounterCell {
        CounterCell(AtomicU64::new(0))
    }

    /// Adds `n`. Relaxed; safe from any thread.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins signed gauge.
#[derive(Debug, Default)]
pub struct GaugeCell(AtomicI64);

impl GaugeCell {
    /// A zeroed gauge.
    pub const fn new() -> GaugeCell {
        GaugeCell(AtomicI64::new(0))
    }

    /// Sets the gauge. Relaxed store.
    #[inline]
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (queue depths, in-flight counts).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: Vec<(String, Arc<CounterCell>)>,
    gauges: Vec<(String, Arc<GaugeCell>)>,
    hists: Vec<(String, Arc<LogHistogram>)>,
}

/// A named-metric registry. See the module docs for the usage contract;
/// the process-wide instance is [`crate::registry`].
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

fn get_or_insert<T: Default>(table: &mut Vec<(String, Arc<T>)>, name: &str) -> Arc<T> {
    match table.iter().find(|(n, _)| n == name) {
        Some((_, cell)) => Arc::clone(cell),
        None => {
            let cell = Arc::new(T::default());
            table.push((name.to_string(), Arc::clone(&cell)));
            cell
        }
    }
}

impl Registry {
    /// An empty registry (tests and scoped meters; production code uses
    /// the global [`crate::registry`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<CounterCell> {
        get_or_insert(&mut self.inner.lock().unwrap().counters, name)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<GaugeCell> {
        get_or_insert(&mut self.inner.lock().unwrap().gauges, name)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<LogHistogram> {
        get_or_insert(&mut self.inner.lock().unwrap().hists, name)
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        let mut counters: Vec<(String, u64)> = inner
            .counters
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let mut gauges: Vec<(String, i64)> = inner
            .gauges
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let mut hists: Vec<(String, HistSnapshot)> = inner
            .hists
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            hists,
        }
    }
}

/// A plain copy of a [`Registry`] at one instant; sorted by name within
/// each section, losslessly codec-serialisable, and renderable as a
/// table via `Display`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, ascending by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` per histogram, ascending by name.
    pub hists: Vec<(String, HistSnapshot)>,
}

const MAX_NAME_BYTES: u64 = 1 << 12;

fn encode_name(name: &str, out: &mut BitVec) {
    let bytes = name.as_bytes();
    debug_assert!((bytes.len() as u64) < MAX_NAME_BYTES);
    out.push_bits(bytes.len() as u64, 12);
    for &b in bytes {
        out.push_bits(u64::from(b), 8);
    }
}

fn decode_name(input: &mut BitReader<'_>) -> Result<String, CodecError> {
    let len = input.read_bits(12)? as usize;
    let mut bytes = Vec::with_capacity(len);
    for _ in 0..len {
        bytes.push(input.read_bits(8)? as u8);
    }
    String::from_utf8(bytes).map_err(|e| CodecError::InvalidField {
        field: "metric name utf-8",
        value: e.utf8_error().valid_up_to() as u64,
    })
}

impl MetricsSnapshot {
    /// Appends the snapshot in the workspace codec style: three
    /// length-prefixed sections (counters, gauges, histograms), names as
    /// length-prefixed UTF-8, values at 64 bits (gauges two's-complement).
    pub fn encode(&self, out: &mut BitVec) {
        out.push_bits(self.counters.len() as u64, 16);
        for (name, value) in &self.counters {
            encode_name(name, out);
            out.push_bits(*value, 64);
        }
        out.push_bits(self.gauges.len() as u64, 16);
        for (name, value) in &self.gauges {
            encode_name(name, out);
            out.push_bits(*value as u64, 64);
        }
        out.push_bits(self.hists.len() as u64, 16);
        for (name, hist) in &self.hists {
            encode_name(name, out);
            hist.encode(out);
        }
    }

    /// Decodes a snapshot written by [`MetricsSnapshot::encode`].
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation, non-UTF-8 names, or malformed
    /// histogram sections.
    pub fn decode(input: &mut BitReader<'_>) -> Result<MetricsSnapshot, CodecError> {
        let n = input.read_bits(16)? as usize;
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            let name = decode_name(input)?;
            counters.push((name, input.read_bits(64)?));
        }
        let n = input.read_bits(16)? as usize;
        let mut gauges = Vec::with_capacity(n);
        for _ in 0..n {
            let name = decode_name(input)?;
            gauges.push((name, input.read_bits(64)? as i64));
        }
        let n = input.read_bits(16)? as usize;
        let mut hists = Vec::with_capacity(n);
        for _ in 0..n {
            let name = decode_name(input)?;
            hists.push((name, HistSnapshot::decode(input)?));
        }
        Ok(MetricsSnapshot {
            counters,
            gauges,
            hists,
        })
    }

    /// The counter named `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The gauge named `name`, if present.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram named `name`, if present.
    pub fn hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

impl fmt::Display for MetricsSnapshot {
    /// Renders the snapshot as an aligned human-readable table: one row
    /// per counter and gauge, one `p50/p90/p99/max` row per histogram.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = self
            .counters
            .iter()
            .map(|(n, _)| n.len())
            .chain(self.gauges.iter().map(|(n, _)| n.len()))
            .chain(self.hists.iter().map(|(n, _)| n.len()))
            .max()
            .unwrap_or(8)
            .max(8);
        for (name, value) in &self.counters {
            writeln!(f, "{name:<width$}  {value}")?;
        }
        for (name, value) in &self.gauges {
            writeln!(f, "{name:<width$}  {value}")?;
        }
        for (name, hist) in &self.hists {
            let [p50, p90, p99, max] = hist.summary();
            writeln!(
                f,
                "{name:<width$}  n={} p50={p50} p90={p90} p99={p99} max={max}",
                hist.count
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_handles_are_shared_by_name() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        reg.gauge("depth").set(-4);
        reg.gauge("depth").add(1);
        assert_eq!(reg.gauge("depth").get(), -3);
        reg.histogram("lat").record(7);
        assert_eq!(reg.histogram("lat").count(), 1);
    }

    #[test]
    fn snapshot_codec_round_trips() {
        let reg = Registry::new();
        reg.counter("b.count").add(41);
        reg.counter("a.count").add(7);
        reg.gauge("q").set(-9);
        let h = reg.histogram("lat.ns");
        for v in [1u64, 5, 5, 900, 1 << 40] {
            h.record(v);
        }
        let snap = reg.snapshot();
        // Sections sorted by name.
        assert_eq!(snap.counters[0].0, "a.count");
        let mut bits = BitVec::new();
        snap.encode(&mut bits);
        let back = MetricsSnapshot::decode(&mut bits.reader()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("b.count"), Some(41));
        assert_eq!(back.gauge("q"), Some(-9));
        assert_eq!(back.hist("lat.ns").unwrap().max, 1 << 40);
    }

    #[test]
    fn display_renders_every_metric() {
        let reg = Registry::new();
        reg.counter("runs").add(3);
        reg.gauge("eta_ms").set(1500);
        reg.histogram("recovery_ns").record(100);
        let text = reg.snapshot().to_string();
        assert!(text.contains("runs"), "{text}");
        assert!(text.contains("eta_ms"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }

    #[test]
    fn truncated_snapshot_fails_typed() {
        let reg = Registry::new();
        reg.counter("c").add(1);
        let mut bits = BitVec::new();
        reg.snapshot().encode(&mut bits);
        // Rebuild a truncated prefix bit-by-bit and decode: must error,
        // never panic or return a bogus snapshot.
        let mut prefix = BitVec::new();
        for i in 0..bits.len() - 1 {
            prefix.push_bit(bits.bit(i));
        }
        assert!(MetricsSnapshot::decode(&mut prefix.reader()).is_err());
    }
}
