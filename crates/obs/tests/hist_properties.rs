//! Property coverage for the log-bucketed histogram: monotone gap-free
//! bucket boundaries, lossless record → snapshot → codec round-trips,
//! merge as stream union, and percentile extraction exact against a
//! sorted-vec oracle on random samples.

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_obs::{bucket_bound, bucket_index, HistSnapshot, LogHistogram, BUCKETS};
use sc_protocol::BitVec;

/// Random samples spread across the full dynamic range: mixes exact
/// low values, mid-range, and values near `u64::MAX` so every octave
/// regime is exercised.
fn random_samples(seed: u64) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let len: usize = rng.random_range(1..200);
    (0..len)
        .map(|_| {
            let magnitude: u32 = rng.random_range(0..64);
            rng.random_range(0..=u64::MAX) >> magnitude
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `bucket_index` is monotone over random pairs and agrees with the
    /// boundary inverse: every value lands in the bucket whose bound
    /// window contains it.
    #[test]
    fn bucketing_is_monotone_and_gap_free(seed in proptest::any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..200 {
            let magnitude: u32 = rng.random_range(0..64);
            let v = rng.random_range(0..=u64::MAX) >> magnitude;
            let i = bucket_index(v);
            prop_assert!(i < BUCKETS);
            prop_assert!(bucket_bound(i) <= v);
            if i + 1 < BUCKETS {
                prop_assert!(v < bucket_bound(i + 1));
            }
            let w = rng.random_range(0..=u64::MAX) >> rng.random_range(0..64u32);
            let (lo, hi) = (v.min(w), v.max(w));
            prop_assert!(bucket_index(lo) <= bucket_index(hi));
        }
    }

    /// Record → snapshot → encode → decode is lossless: the decoded
    /// snapshot equals the original and re-encodes bit-identically.
    #[test]
    fn record_snapshot_codec_round_trip(seed in proptest::any::<u64>()) {
        let samples = random_samples(seed);
        let hist = LogHistogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot();
        prop_assert_eq!(snap.count, samples.len() as u64);
        prop_assert_eq!(snap.max, samples.iter().copied().max().unwrap_or(0));
        let expected_sum = samples.iter().fold(0u64, |acc, &v| acc.wrapping_add(v));
        prop_assert_eq!(snap.sum, expected_sum);
        let mut bits = BitVec::new();
        snap.encode(&mut bits);
        let back = HistSnapshot::decode(&mut bits.reader()).unwrap();
        prop_assert_eq!(&back, &snap);
        let mut bits2 = BitVec::new();
        back.encode(&mut bits2);
        prop_assert_eq!(bits.len(), bits2.len());
        prop_assert_eq!(bits.words(), bits2.words());
    }

    /// Merging two snapshots equals recording the concatenated stream
    /// into one histogram: merge is the snapshot of the union.
    #[test]
    fn merge_equals_union_stream(seed in proptest::any::<u64>()) {
        let left = random_samples(seed);
        let right = random_samples(seed ^ 0x9e37_79b9_7f4a_7c15);
        let (a, b, union) = (LogHistogram::new(), LogHistogram::new(), LogHistogram::new());
        for &v in &left {
            a.record(v);
            union.record(v);
        }
        for &v in &right {
            b.record(v);
            union.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        prop_assert_eq!(merged, union.snapshot());
    }

    /// Percentile extraction matches the sorted-vec oracle exactly at
    /// random quantiles: quantise each sample to its bucket's lower
    /// bound, sort, index at rank `max(1, ceil(q·count))`.
    #[test]
    fn percentiles_match_sorted_vec_oracle(seed in proptest::any::<u64>()) {
        let samples = random_samples(seed);
        let hist = LogHistogram::new();
        for &v in &samples {
            hist.record(v);
        }
        let snap = hist.snapshot();
        let mut oracle: Vec<u64> = samples
            .iter()
            .map(|&v| bucket_bound(bucket_index(v)))
            .collect();
        oracle.sort_unstable();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
        let mut quantiles = vec![0.0, 0.5, 0.9, 0.99, 1.0];
        for _ in 0..16 {
            quantiles.push(rng.random_range(0..=1000u32) as f64 / 1000.0);
        }
        for q in quantiles {
            let rank = ((q * oracle.len() as f64).ceil() as usize).clamp(1, oracle.len());
            prop_assert_eq!(snap.percentile(q), oracle[rank - 1], "q = {}", q);
        }
        // The summary's max channel is exact, not quantised.
        prop_assert_eq!(snap.summary()[3], samples.iter().copied().max().unwrap());
    }
}
