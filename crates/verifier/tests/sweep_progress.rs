//! Pins the `sweep_family_observed` contract: metering is observe-only
//! (checkpoints bitwise-match a plain `sweep_family` run), the gauges
//! mirror the ledger live, and a detached bundle records nothing.

#![cfg(feature = "trace")]

use sc_verifier::{
    sweep_family, sweep_family_observed, Analyzer, NoFilter, SweepCheckpoint, SweepObs,
    SymmetricFamily,
};

#[test]
fn observed_sweep_checkpoint_matches_plain() {
    let family = SymmetricFamily::new(4, 1, 2, 2).unwrap();
    let total = family.len().unwrap();

    let mut plain = SweepCheckpoint::new();
    let plain_outcome = sweep_family(
        &family,
        &mut NoFilter,
        &mut Analyzer::new(),
        &mut plain,
        total,
    )
    .unwrap();
    assert!(plain_outcome.complete);

    let obs = SweepObs::recording();
    assert!(obs.is_recording());
    let mut observed = SweepCheckpoint::new();
    let outcome = sweep_family_observed(
        &family,
        &mut NoFilter,
        &mut Analyzer::new(),
        &mut observed,
        total,
        &obs,
    )
    .unwrap();

    assert!(outcome.complete, "full budget must finish the family");
    assert_eq!(outcome.processed, plain_outcome.processed);
    assert_eq!(observed, plain, "metering must not perturb the sweep");

    // The gauges mirror the final checkpoint.
    assert_eq!(obs.progress(), (total, total));
    let metrics = obs.metrics().expect("recording bundle snapshots");
    assert_eq!(metrics.gauge("sweep.position"), Some(total as i64));
    assert_eq!(metrics.gauge("sweep.total"), Some(total as i64));
    assert_eq!(
        metrics.gauge("sweep.screened"),
        Some(observed.ledger.screened as i64)
    );
    assert_eq!(
        metrics.gauge("sweep.filtered"),
        Some(observed.ledger.filtered as i64)
    );
    assert_eq!(
        metrics.gauge("sweep.survivors"),
        Some(observed.ledger.survivors as i64)
    );
    assert_eq!(
        metrics.gauge("sweep.verified"),
        Some(observed.ledger.verified as i64)
    );
    assert_eq!(
        metrics.gauge("sweep.found"),
        Some(observed.ledger.found as i64)
    );
    // Finished run: no work remaining, so the ETA collapses to zero.
    assert_eq!(obs.eta_ms(), Some(0));
}

#[test]
fn partial_budgets_resume_under_one_bundle() {
    let family = SymmetricFamily::new(4, 1, 2, 2).unwrap();
    let total = family.len().unwrap();
    let obs = SweepObs::recording();
    let mut checkpoint = SweepCheckpoint::new();
    let mut analyzer = Analyzer::new();

    let first = sweep_family_observed(
        &family,
        &mut NoFilter,
        &mut analyzer,
        &mut checkpoint,
        total / 2,
        &obs,
    )
    .unwrap();
    assert!(!first.complete);
    assert_eq!(obs.progress(), (checkpoint.position, total));
    let mid_position = checkpoint.position;

    let rest = sweep_family_observed(
        &family,
        &mut NoFilter,
        &mut analyzer,
        &mut checkpoint,
        total,
        &obs,
    )
    .unwrap();
    assert!(rest.complete);
    assert_eq!(first.processed + rest.processed, total);
    assert!(checkpoint.position > mid_position);
    assert_eq!(obs.progress(), (total, total));

    // Same family swept plain must agree bitwise.
    let mut plain = SweepCheckpoint::new();
    sweep_family(
        &family,
        &mut NoFilter,
        &mut Analyzer::new(),
        &mut plain,
        total,
    )
    .unwrap();
    assert_eq!(checkpoint, plain);
}

#[test]
fn detached_bundle_records_nothing() {
    let obs = SweepObs::default();
    assert!(!obs.is_recording());
    assert!(obs.metrics().is_none());
    assert_eq!(obs.progress(), (0, 0));
    assert_eq!(obs.eta_ms(), None);

    let family = SymmetricFamily::new(4, 1, 2, 2).unwrap();
    let total = family.len().unwrap();
    let mut checkpoint = SweepCheckpoint::new();
    let outcome = sweep_family_observed(
        &family,
        &mut NoFilter,
        &mut Analyzer::new(),
        &mut checkpoint,
        total,
        &obs,
    )
    .unwrap();
    assert!(outcome.complete);
    assert!(obs.metrics().is_none(), "detached stays detached");
}
