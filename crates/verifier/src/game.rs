//! The bitset safety-game core of the exhaustive checker.
//!
//! One [`Solver::run`] call is the full verification of one fault set `F`,
//! solved on a compact representation:
//!
//! * **Successor masks** instead of successor lists: for every configuration
//!   `e` and every honest node position `i`, a single `u64` whose bit `σ` is
//!   set iff some Byzantine behaviour makes node `i` move to state `σ`. The
//!   successor set of `e` is the product of the per-node masks; it is never
//!   materialised — [`Solver::for_each_successor`] walks the product as a
//!   mixed-radix odometer over set bits, in ascending configuration order,
//!   with early exit.
//! * **Predecessor bitsets**: for every `(i, σ)` a bitset over
//!   configurations, `P[i][σ] = { e : σ ∈ mask_i(e) }`. The predecessors of
//!   `s` are `⋂_i P[i][digit_i(s)]`, computed word-by-word (64
//!   configurations per AND, short-circuited on zero) and filtered by the
//!   caller's live set — the engine of the worklist fixpoints below.
//! * **Incremental LUT row index**: the inner Byzantine loop never rebuilds
//!   an `n`-entry received vector. The honest part of the LUT row index is
//!   maintained across configurations and the Byzantine part across combos
//!   by mixed-radix increments — amortised O(1) faulty positions touched per
//!   combo, O(1) honest positions per configuration.
//!
//! On top of the representation, the two fixpoints of the verification
//! method run as worklists instead of repeated full sweeps:
//!
//! * the **safe set** (greatest fixed point) seeds from the factored check
//!   "every successor agrees on `out(e)+1 mod c`" — which is per-node:
//!   `mask_i(e) ⊆ {σ : h(i, σ) = expect}` — then removes configurations
//!   whose successor products escape the set, propagating each removal to
//!   its predecessors exactly once;
//! * the **attractor** is counter-based: `cnt[e]` counts undecided
//!   successors (`∏ popcount(mask_i(e))` — product tuples are distinct
//!   configurations, so no dedup exists); when a configuration is decided
//!   in layer `t`, each predecessor's counter drops, and a counter hitting
//!   zero decides the predecessor at time `t + 1`. Every configuration is
//!   re-examined only when one of its successors changes, never by sweep.
//!
//! A [`Solver`] owns every buffer and is reused run after run — scoring a
//! synthesis candidate allocates nothing, which is where the hill-climb's
//! per-evaluation time went in the first-generation checker.

use std::collections::HashMap;

use sc_core::LutCounter;
use sc_protocol::{BitVec, ParamError};

/// Hard limits keeping exhaustive exploration tractable. The bitset core
/// raises the seed's `1 << 14` configurations / `1 << 10` Byzantine combos
/// to the bounds below; [`MAX_MASK_WORDS`] additionally caps the
/// successor-mask table (`h` words per configuration) so extreme
/// many-node/low-state instances cannot balloon memory.
pub(crate) const MAX_CONFIGS: usize = 1 << 20;
pub(crate) const MAX_BYZ_COMBOS: usize = 1 << 14;
const MAX_MASK_WORDS: usize = 1 << 22;

/// Sentinel for configurations the attractor never decides.
const UNDECIDED: u32 = u32::MAX;

/// The game solver: all per-fault-set state, owned once and rebuilt in
/// place by every [`Solver::run`] — after a run it holds the solved game of
/// that fault set (for witness extraction and the aggregate counters).
#[derive(Default)]
pub(crate) struct Solver {
    /// Correct nodes, ascending.
    pub honest: Vec<usize>,
    /// The fault set, in the order Byzantine combos are decoded.
    pub faulty: Vec<usize>,
    /// Number of states `|X|`.
    pub x: usize,
    /// Byzantine combinations per step (`|X|^|F|`).
    pub combos: usize,
    /// Number of configurations (`|X|^h`).
    pub configs: usize,
    /// Configurations with a decided stabilisation time.
    pub covered: usize,
    /// Exact worst-case stabilisation time over decided configurations.
    pub worst_time: u64,
    /// The greatest fixed point: counting is guaranteed forever.
    pub safe: BitVec,
    /// Per-configuration next-state masks, `h` words per configuration:
    /// `masks[e * h + i]` is the mask of honest position `i`.
    masks: Vec<u64>,
    /// Flat predecessor bitsets: `(i * x + σ) * words ..` is the bitset of
    /// configurations whose position-`i` mask contains `σ`.
    pred: Vec<u64>,
    /// `x^i` for honest positions `i` (configuration radix).
    xpow: Vec<usize>,
    /// `x^{honest[i]}` — LUT row weight of honest position `i`.
    pow_h: Vec<usize>,
    /// `x^{faulty[g]}` — LUT row weight of faulty position `g`.
    pow_f: Vec<usize>,
    /// 64-bit words per configuration bitset.
    words: usize,
    /// Attractor time per configuration ([`UNDECIDED`] = stuck).
    time: Vec<u32>,
    /// Attractor counters: undecided successors per configuration.
    cnt: Vec<u32>,
    /// Per honest position, `(output value, mask of states producing it)`
    /// pairs; `out_ok_off[i]..out_ok_off[i + 1]` is position `i`'s range.
    out_ok: Vec<(u64, u64)>,
    out_ok_off: Vec<usize>,
    // Worklist and odometer scratch.
    undecided: Vec<u64>,
    digits: Vec<u8>,
    byz: Vec<u8>,
    stack: Vec<u32>,
    preds: Vec<u32>,
    frontier: Vec<u32>,
    next: Vec<u32>,
    /// Attractor scratch: hoisted predecessor-row offsets of the current
    /// frontier (`h` per member).
    rows: Vec<usize>,
    /// Attractor scratch: the shrinking window of configuration words that
    /// still hold undecided bits.
    live: Vec<u32>,
}

/// The aggregate a fault-set run contributes to an analysis summary.
pub(crate) struct SetStats {
    pub configs: usize,
    pub covered: usize,
    pub worst_time: u64,
}

impl Solver {
    /// Builds the game for `lut` under fault set `faulty` and solves it:
    /// masks, predecessor index, safe-set fixpoint, attractor layering.
    /// Reuses every buffer from the previous run; allocation-free once the
    /// buffers have grown to the instance size.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when the instance exceeds the exploration
    /// limits, has more than 64 states (a mask is one `u64`), or the fault
    /// set leaves no correct node.
    pub(crate) fn run(
        &mut self,
        lut: &LutCounter,
        faulty: &[usize],
    ) -> Result<SetStats, ParamError> {
        self.build(lut, faulty)?;
        self.refine_safe();
        self.attract();
        Ok(SetStats {
            configs: self.configs,
            covered: self.covered,
            worst_time: self.worst_time,
        })
    }

    fn build(&mut self, lut: &LutCounter, faulty: &[usize]) -> Result<(), ParamError> {
        let spec = lut.spec();
        let x = spec.states as usize;
        if x > 64 {
            return Err(ParamError::overflow(format!(
                "|X| = {x} states exceed the 64-bit successor masks"
            )));
        }
        self.honest.clear();
        self.honest
            .extend((0..spec.n).filter(|v| !faulty.contains(v)));
        self.faulty.clear();
        self.faulty.extend_from_slice(faulty);
        let h = self.honest.len();
        if h == 0 {
            return Err(ParamError::constraint(
                "fault set covers every node: nothing to verify",
            ));
        }
        // Only reachable with |X| = 1 (otherwise |X|^h caps h at 20): the
        // successor odometer keeps its digits on the stack.
        if h > 64 {
            return Err(ParamError::overflow(format!(
                "{h} correct nodes exceed the odometer width"
            )));
        }
        let configs = x
            .checked_pow(h as u32)
            .filter(|&c| c <= MAX_CONFIGS)
            .ok_or_else(|| ParamError::overflow(format!("|X|^h = {x}^{h}")))?;
        let combos = x
            .checked_pow(faulty.len() as u32)
            .filter(|&c| c <= MAX_BYZ_COMBOS)
            .ok_or_else(|| ParamError::overflow(format!("|X|^|F| = {x}^{}", faulty.len())))?;
        if configs
            .checked_mul(h)
            .filter(|&w| w <= MAX_MASK_WORDS)
            .is_none()
        {
            return Err(ParamError::overflow(format!(
                "successor-mask table |X|^h·h = {configs}·{h} words"
            )));
        }
        self.x = x;
        self.configs = configs;
        self.combos = combos;
        self.words = configs.div_ceil(64);

        self.xpow.clear();
        self.pow_h.clear();
        self.pow_f.clear();
        let mut p = 1usize;
        for _ in 0..h {
            self.xpow.push(p);
            p *= x;
        }
        for &v in &self.honest {
            self.pow_h.push(x.pow(v as u32));
        }
        for &v in &self.faulty {
            self.pow_f.push(x.pow(v as u32));
        }

        // Per honest position: output value → mask of states producing it
        // (the factored "all successors output `expect`" check). A handful
        // of linear-scanned pairs, not a hash map — `x ≤ 64`.
        self.out_ok.clear();
        self.out_ok_off.clear();
        self.out_ok_off.push(0);
        for i in 0..h {
            let outputs = &spec.output[self.honest[i]];
            let start = self.out_ok.len();
            for state in 0..x {
                let value = outputs[state];
                match self.out_ok[start..].iter_mut().find(|(v, _)| *v == value) {
                    Some((_, mask)) => *mask |= 1u64 << state,
                    None => self.out_ok.push((value, 1u64 << state)),
                }
            }
            self.out_ok_off.push(self.out_ok.len());
        }

        self.masks.clear();
        self.masks.resize(configs * h, 0);
        self.pred.clear();
        self.pred.resize(h * x * self.words, 0);
        self.cnt.clear();
        self.cnt.resize(configs, 0);
        self.time.clear();
        self.time.resize(configs, UNDECIDED);
        self.safe.reset(configs);
        self.digits.clear();
        self.digits.resize(h, 0);
        self.byz.clear();
        self.byz.resize(faulty.len(), 0);

        // --- masks, predecessor index, agreement, seed safe set. ----------
        let words = self.words;
        let transition = &spec.transition;
        let mut base = 0usize; // LUT row index of the honest part
        let c = spec.c;
        for e in 0..configs {
            // Next-state masks under all Byzantine combinations. The LUT
            // row index is shared by every receiver, so the combo loop is
            // outermost and the index is maintained by a mixed-radix
            // increment — no received vector is ever built.
            let mrow = &mut self.masks[e * h..(e + 1) * h];
            let mut idx = base;
            let mut remaining = combos;
            loop {
                for i in 0..h {
                    mrow[i] |= 1u64 << transition[self.honest[i]][idx];
                }
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
                let mut g = 0;
                loop {
                    if (self.byz[g] as usize) + 1 < x {
                        self.byz[g] += 1;
                        idx += self.pow_f[g];
                        break;
                    }
                    idx -= (x - 1) * self.pow_f[g];
                    self.byz[g] = 0;
                    g += 1;
                }
            }
            // The combo odometer ends at all-(x−1); reset it for the next
            // configuration (idx is re-seeded from `base`).
            self.byz.iter_mut().for_each(|b| *b = 0);

            // Predecessor index and undecided-successor counter.
            let mut count = 1u32;
            for i in 0..h {
                count *= mrow[i].count_ones();
                let mut m = mrow[i];
                while m != 0 {
                    let state = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let slot = (i * x + state) * words + e / 64;
                    self.pred[slot] |= 1u64 << (63 - (e % 64));
                }
            }
            self.cnt[e] = count;

            // Output agreement and the factored safe-set seed: every
            // successor agrees on `out(e) + 1 mod c` iff every per-node
            // mask stays within the states outputting that value.
            let first = spec.output[self.honest[0]][self.digits[0] as usize];
            if (1..h).all(|i| spec.output[self.honest[i]][self.digits[i] as usize] == first) {
                let expect = (first + 1) % c;
                let ok = (0..h).all(|i| {
                    let pairs = &self.out_ok[self.out_ok_off[i]..self.out_ok_off[i + 1]];
                    let okm = pairs
                        .iter()
                        .find(|(v, _)| *v == expect)
                        .map_or(0, |(_, m)| *m);
                    mrow[i] & !okm == 0
                });
                if ok {
                    self.safe.set_bit(e, true);
                }
            }

            // Advance the configuration digits and the honest row index.
            if e + 1 < configs {
                let mut d = 0;
                loop {
                    if (self.digits[d] as usize) + 1 < x {
                        self.digits[d] += 1;
                        base += self.pow_h[d];
                        break;
                    }
                    base -= (x - 1) * self.pow_h[d];
                    self.digits[d] = 0;
                    d += 1;
                }
            }
        }
        Ok(())
    }

    /// Greatest-fixed-point refinement of the seeded safe set: a
    /// configuration survives iff its whole successor product stays safe.
    /// One lazy product walk per seed member (early exit on the first
    /// escape), then worklist propagation — every removal scans its
    /// predecessors once, and only configurations whose successor changed
    /// are ever touched again.
    fn refine_safe(&mut self) {
        let mut removals = std::mem::take(&mut self.stack);
        removals.clear();
        // Initial verification pass, ascending. Checking against the live
        // set is sound: a member removed earlier only strengthens the check,
        // and predecessors of any removal are re-examined below.
        for w in 0..self.words {
            let mut acc = self.safe.words()[w];
            while acc != 0 {
                let lead = acc.leading_zeros() as usize;
                acc &= !(1u64 << (63 - lead));
                let e = w * 64 + lead;
                let safe = &self.safe;
                if !self.for_each_successor(e, |s| safe.bit(s)) {
                    self.safe.set_bit(e, false);
                    removals.push(e as u32);
                }
            }
        }
        let mut preds = std::mem::take(&mut self.preds);
        while let Some(s) = removals.pop() {
            preds.clear();
            self.collect_preds(s as usize, self.safe.words(), &mut preds);
            for &e in &preds {
                // Collected under the safe filter; the product of a safe
                // predecessor contains the removed `s`, so it escapes too.
                self.safe.set_bit(e as usize, false);
                removals.push(e);
            }
        }
        self.stack = removals;
        self.preds = preds;
    }

    /// Counter-based attractor layering over the predecessor index:
    /// `time = 0` on the safe set; a configuration is decided at `t + 1`
    /// the moment its last undecided successor is decided at `t`.
    ///
    /// The decided frontier is processed as a **batched bitset pass**, not
    /// per-index scans: each layer hoists the predecessor-row offsets of
    /// every frontier member once, then sweeps the configuration words of a
    /// **shrinking live window** — words whose undecided bits all dropped
    /// are skipped for the whole frontier, so late layers (where most of
    /// the space is already decided) touch only the still-contested words.
    /// Decisions are order-independent (counter decrements commute), so the
    /// layering — `time`, `covered`, `worst_time`, and the witness derived
    /// from them — is bit-identical to the per-index scan; the
    /// `verifier_cross` proptests enforce it against the retained
    /// reference checker.
    fn attract(&mut self) {
        // Live filter: undecided configurations (padding bits clear).
        self.undecided.clear();
        self.undecided.resize(self.words, u64::MAX);
        let tail = self.configs - (self.words - 1) * 64;
        if tail < 64 {
            self.undecided[self.words - 1] = !0u64 << (64 - tail);
        }
        let mut frontier = std::mem::take(&mut self.frontier);
        frontier.clear();
        frontier.extend(self.safe.iter_ones().map(|e| e as u32));
        for &e in &frontier {
            self.time[e as usize] = 0;
            self.undecided[e as usize / 64] &= !(1u64 << (63 - (e as usize % 64)));
        }
        self.covered = frontier.len();
        self.worst_time = 0;
        let mut next = std::mem::take(&mut self.next);
        let mut rows = std::mem::take(&mut self.rows);
        let mut live = std::mem::take(&mut self.live);
        next.clear();
        live.clear();
        live.extend(0..self.words as u32);
        let h = self.honest.len();
        let words = self.words;
        let mut t = 0u32;
        while !frontier.is_empty() {
            // The window only ever shrinks: words with no undecided bits
            // left are dropped for this and every later layer — before the
            // offset hoist, so a fully-decided space skips the layer
            // entirely (on verifying instances layer 0's frontier is the
            // whole safe set and would otherwise hoist h·|safe| offsets
            // just to discard them).
            live.retain(|&w| self.undecided[w as usize] != 0);
            if live.is_empty() {
                break;
            }
            // Hoist every frontier member's predecessor-row offsets (the
            // digits of `s`) once per layer instead of once per word.
            rows.clear();
            for &s in &frontier {
                let mut rest = s as usize;
                for i in 0..h {
                    rows.push((i * self.x + rest % self.x) * words);
                    rest /= self.x;
                }
            }
            for &w in &live {
                let w = w as usize;
                for srows in rows.chunks_exact(h) {
                    let mut acc = self.undecided[w];
                    if acc == 0 {
                        break; // every bit of this word decided mid-layer
                    }
                    for &row in srows {
                        acc &= self.pred[row + w];
                        if acc == 0 {
                            break;
                        }
                    }
                    while acc != 0 {
                        let lead = acc.leading_zeros() as usize;
                        let bit = 1u64 << (63 - lead);
                        acc &= !bit;
                        let e = w * 64 + lead;
                        self.cnt[e] -= 1;
                        if self.cnt[e] == 0 {
                            self.time[e] = t + 1;
                            self.undecided[w] &= !bit;
                            next.push(e as u32);
                        }
                    }
                }
            }
            self.covered += next.len();
            if !next.is_empty() {
                self.worst_time = u64::from(t + 1);
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
            t += 1;
        }
        self.frontier = frontier;
        self.next = next;
        self.rows = rows;
        self.live = live;
    }

    /// Decodes configuration `e` into per-honest-position states.
    pub(crate) fn config_digits(&self, e: usize) -> Vec<u8> {
        let mut digits = vec![0u8; self.honest.len()];
        let mut rest = e;
        for d in digits.iter_mut() {
            *d = (rest % self.x) as u8;
            rest /= self.x;
        }
        digits
    }

    /// Whether the attractor decided configuration `e`.
    pub(crate) fn decided(&self, e: usize) -> bool {
        self.time[e] != UNDECIDED
    }

    /// Walks the successor product of `e` in ascending configuration order,
    /// stopping when `visit` returns `false`. Returns whether the walk
    /// completed. The product is never materialised: a mixed-radix odometer
    /// advances one set bit at a time, updating the successor index
    /// incrementally.
    fn for_each_successor(&self, e: usize, mut visit: impl FnMut(usize) -> bool) -> bool {
        let h = self.honest.len();
        let masks = &self.masks[e * h..(e + 1) * h];
        let mut current = [0u8; 64];
        let mut succ = 0usize;
        for i in 0..h {
            let low = masks[i].trailing_zeros() as usize;
            current[i] = low as u8;
            succ += low * self.xpow[i];
        }
        loop {
            if !visit(succ) {
                return false;
            }
            let mut i = 0;
            loop {
                if i == h {
                    return true;
                }
                let cur = current[i] as usize;
                let rest = if cur + 1 < 64 {
                    masks[i] >> (cur + 1)
                } else {
                    0
                };
                if rest != 0 {
                    let nxt = cur + 1 + rest.trailing_zeros() as usize;
                    current[i] = nxt as u8;
                    succ += (nxt - cur) * self.xpow[i];
                    break;
                }
                let low = masks[i].trailing_zeros() as usize;
                current[i] = low as u8;
                succ -= (cur - low) * self.xpow[i];
                i += 1;
            }
        }
    }

    /// First successor of `e` (ascending) failing `keep`, if any.
    fn first_escaping_successor(&self, e: usize, keep: impl Fn(usize) -> bool) -> Option<usize> {
        let mut found = None;
        self.for_each_successor(e, |s| {
            if keep(s) {
                true
            } else {
                found = Some(s);
                false
            }
        });
        found
    }

    /// Appends to `out` every configuration whose successor product
    /// contains `s`, restricted to the set bits of `filter`: the word-wise
    /// intersection `filter ∩ ⋂_i P[i][digit_i(s)]`, short-circuited on
    /// zero words.
    fn collect_preds(&self, s: usize, filter: &[u64], out: &mut Vec<u32>) {
        let h = self.honest.len();
        let words = self.words;
        // Hoist the h predecessor-row offsets (digits of s).
        let mut rows = [0usize; 64];
        let mut rest = s;
        for (i, row) in rows.iter_mut().enumerate().take(h) {
            *row = (i * self.x + rest % self.x) * words;
            rest /= self.x;
        }
        for w in 0..words {
            let mut acc = filter[w];
            for &row in rows.iter().take(h) {
                if acc == 0 {
                    break;
                }
                acc &= self.pred[row + w];
            }
            while acc != 0 {
                let lead = acc.leading_zeros() as usize;
                acc &= !(1u64 << (63 - lead));
                out.push((w * 64 + lead) as u32);
            }
        }
    }

    /// Extracts a lasso-shaped non-stabilising execution from the stuck
    /// region, including the Byzantine values realising every transition —
    /// identical (configuration for configuration, value for value) to the
    /// witness the enumerate-everything reference extracts: the walk starts
    /// at the lowest stuck configuration, always follows the lowest stuck
    /// successor, and realises each honest transition with the first
    /// Byzantine combo in mixed-radix order.
    pub(crate) fn extract_witness(&self, lut: &LutCounter) -> Option<crate::checker::Witness> {
        let spec = lut.spec();
        let start = (0..self.configs).find(|&e| !self.decided(e))?;
        let mut configs: Vec<usize> = vec![start];
        let mut byz: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut visited: HashMap<usize, usize> = HashMap::new();
        visited.insert(start, 0);
        let mut current = start;
        let cycle_start;
        loop {
            // A stuck configuration always has a stuck successor (otherwise
            // its undecided-successor counter would have reached zero).
            let next = self
                .first_escaping_successor(current, |s| self.decided(s))
                .expect("stuck configuration without stuck successor");
            let digits = self.config_digits(current);
            let target = self.config_digits(next);
            let base: usize = digits
                .iter()
                .zip(&self.pow_h)
                .map(|(&d, &p)| d as usize * p)
                .sum();
            // For every honest node find the first Byzantine combo
            // realising its next state, and record the per-faulty values.
            let mut step: Vec<Vec<u8>> = Vec::with_capacity(self.honest.len());
            for (hi, &node) in self.honest.iter().enumerate() {
                let row = &spec.transition[node];
                let combo = (0..self.combos)
                    .find(|&combo| {
                        let mut idx = base;
                        let mut rest = combo;
                        for &p in &self.pow_f {
                            idx += (rest % self.x) * p;
                            rest /= self.x;
                        }
                        row[idx] == target[hi]
                    })
                    .expect("successor state must be realisable");
                let mut values = Vec::with_capacity(self.faulty.len());
                let mut rest = combo;
                for _ in &self.faulty {
                    values.push((rest % self.x) as u8);
                    rest /= self.x;
                }
                step.push(values);
            }
            byz.push(step);
            configs.push(next);
            if let Some(&at) = visited.get(&next) {
                cycle_start = at;
                break;
            }
            visited.insert(next, configs.len() - 1);
            current = next;
        }
        Some(crate::checker::Witness {
            honest: self.honest.clone(),
            fault_set: self.faulty.clone(),
            configs: configs.into_iter().map(|e| self.config_digits(e)).collect(),
            byz,
            cycle_start,
        })
    }
}
