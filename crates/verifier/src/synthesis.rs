//! Stochastic local search over transition tables.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_core::{LutCounter, LutSpec};
use sc_protocol::ParamError;

use crate::checker::Analyzer;

/// Result of a [`synthesize`] run.
#[derive(Clone, Debug)]
pub struct SynthesisReport {
    /// What the search produced.
    pub outcome: SynthesisOutcome,
    /// Verifier evaluations spent.
    pub evaluations: u64,
}

/// Outcome of the search.
#[derive(Clone, Debug)]
pub enum SynthesisOutcome {
    /// A verified self-stabilising counter, with its exact worst-case
    /// stabilisation time.
    Found {
        /// The synthesised, verified algorithm.
        counter: LutCounter,
        /// Exact worst-case stabilisation time established by the verifier.
        worst_case_time: u64,
    },
    /// Budget exhausted; reports how close the best candidate came.
    Exhausted {
        /// Best attractor coverage reached (1.0 = correct).
        best_coverage: f64,
    },
}

/// Searches for a self-stabilising `c`-counter with `n` nodes, resilience
/// `f` and `states` states per node, by hill-climbing on the verifier's
/// attractor coverage with random restarts.
///
/// Output tables are fixed to `h(v, s) = s mod c`, as in the space-optimal
/// algorithms of [4, 5] (the state *is* the output, plus auxiliary states);
/// the search space is the transition tables.
///
/// The hill-climb holds **one** live [`LutCounter`] and never clones a
/// candidate: a proposal patches 1–3 entries in place
/// ([`LutCounter::set_transition`]), rejection un-patches them in reverse,
/// and restarts refill the same tables entry by entry. The only per-run
/// table clone left is wrapping the winning spec with its proven bound.
/// The search trajectory (RNG draw order, acceptance rule) is unchanged
/// from the cloning implementation.
///
/// `budget` bounds the number of verifier evaluations. Fault-free instances
/// (`f = 0`) synthesise in well under 1000 evaluations; `n = 4, f = 1`
/// matches the SAT-scale search of \[5\] and is expected to exhaust small
/// budgets (experiment E7 reports the coverage reached).
///
/// # Errors
///
/// Returns [`ParamError`] if the instance is malformed or too large for the
/// exhaustive verifier.
pub fn synthesize(
    n: usize,
    f: usize,
    c: u64,
    states: u8,
    seed: u64,
    budget: u64,
) -> Result<SynthesisReport, ParamError> {
    if u64::from(states) < c {
        return Err(ParamError::constraint(format!(
            "need at least c = {c} states to output all values, got {states}"
        )));
    }
    let rows = (states as usize)
        .checked_pow(n as u32)
        .ok_or_else(|| ParamError::overflow("|X|^n"))?;
    let output: Vec<Vec<u64>> = vec![(0..states).map(|s| u64::from(s) % c).collect(); n];
    let mut rng = SmallRng::seed_from_u64(seed);

    let mut evaluations = 0u64;
    let mut best_coverage = 0.0f64;

    let random_tables = |rng: &mut SmallRng| -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| (0..rows).map(|_| rng.random_range(0..states)).collect())
            .collect()
    };

    // The one live candidate, validated once and mutated in place below.
    let mut current = LutCounter::new(LutSpec {
        n,
        f,
        c,
        states,
        transition: random_tables(&mut rng),
        output,
        stabilization_bound: 0,
    })?;
    let mut current_score = f64::MIN;
    let mut stagnation = 0u32;
    // Patch journal of the pending proposal: (node, row, previous entry).
    let mut undo: Vec<(usize, usize, u8)> = Vec::with_capacity(3);
    // One game solver for the whole search: every evaluation reuses its
    // buffers, so scoring a candidate allocates nothing.
    let mut analyzer = Analyzer::new();

    while evaluations < budget {
        // Propose: mutate 1–3 random entries (or restart on stagnation).
        undo.clear();
        if stagnation > 200 {
            stagnation = 0;
            current_score = f64::MIN;
            // Restart: refill the tables in place, same draw order as a
            // fresh `random_tables` (a restart is always accepted — the
            // score was just reset — so no undo journal is kept).
            for v in 0..n {
                for row in 0..rows {
                    current.set_transition(v, row, rng.random_range(0..states));
                }
            }
        } else {
            for _ in 0..rng.random_range(1..=3usize) {
                let v = rng.random_range(0..n);
                let row = rng.random_range(0..rows);
                let previous = current.set_transition(v, row, rng.random_range(0..states));
                undo.push((v, row, previous));
            }
        }
        let summary = analyzer.analyze(&current)?;
        let coverage = summary.coverage;
        evaluations += 1;
        best_coverage = best_coverage.max(coverage);
        if summary.failure.is_none() {
            // Re-wrap with the proven bound recorded in the spec — the one
            // table clone of the whole search.
            let worst_case_time = summary.worst_time;
            let mut spec = current.spec().clone();
            spec.stabilization_bound = worst_case_time;
            let counter = LutCounter::new(spec)?;
            return Ok(SynthesisReport {
                outcome: SynthesisOutcome::Found {
                    counter,
                    worst_case_time,
                },
                evaluations,
            });
        }
        if coverage >= current_score {
            if coverage == current_score {
                stagnation += 1;
            } else {
                stagnation = 0;
            }
            current_score = coverage;
        } else {
            stagnation += 1;
            // Reject: un-patch in reverse order (entries may repeat).
            for &(v, row, previous) in undo.iter().rev() {
                current.set_transition(v, row, previous);
            }
        }
    }

    Ok(SynthesisReport {
        outcome: SynthesisOutcome::Exhausted { best_coverage },
        evaluations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify, Verdict};

    #[test]
    fn synthesises_a_fault_free_two_node_counter() {
        let report = synthesize(2, 0, 2, 2, 7, 5000).unwrap();
        match report.outcome {
            SynthesisOutcome::Found {
                counter,
                worst_case_time,
            } => {
                assert_eq!(
                    verify(&counter).unwrap(),
                    Verdict::Stabilizes { worst_case_time }
                );
                assert_eq!(counter.spec().stabilization_bound, worst_case_time);
            }
            SynthesisOutcome::Exhausted { best_coverage } => {
                panic!("search failed on a trivial instance (coverage {best_coverage})");
            }
        }
    }

    #[test]
    fn synthesises_the_one_node_counter() {
        let report = synthesize(1, 0, 2, 2, 3, 500).unwrap();
        assert!(matches!(report.outcome, SynthesisOutcome::Found { .. }));
    }

    #[test]
    fn rejects_too_few_states() {
        assert!(synthesize(2, 0, 4, 2, 0, 10).is_err());
    }

    #[test]
    fn exhausted_budget_reports_coverage() {
        // One evaluation cannot solve 3 nodes; outcome must be graceful.
        let report = synthesize(4, 1, 2, 2, 1, 1).unwrap();
        assert_eq!(report.evaluations, 1);
        if let SynthesisOutcome::Exhausted { best_coverage } = report.outcome {
            assert!((0.0..=1.0).contains(&best_coverage));
        }
    }
}
