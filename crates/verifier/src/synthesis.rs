//! Stochastic local search over transition tables, and the exhaustive
//! sweep pipeline: symmetric candidate families, an attack-backed
//! pre-filter seam, and resumable checkpoints.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_core::{LutCounter, LutSpec};
use sc_protocol::{BitReader, BitVec, CodecError, ParamError};

use crate::checker::Analyzer;

/// Result of a [`synthesize`] run.
#[derive(Clone, Debug)]
pub struct SynthesisReport {
    /// What the search produced.
    pub outcome: SynthesisOutcome,
    /// Verifier evaluations spent.
    pub evaluations: u64,
}

/// Outcome of the search.
#[derive(Clone, Debug)]
pub enum SynthesisOutcome {
    /// A verified self-stabilising counter, with its exact worst-case
    /// stabilisation time.
    Found {
        /// The synthesised, verified algorithm.
        counter: LutCounter,
        /// Exact worst-case stabilisation time established by the verifier.
        worst_case_time: u64,
    },
    /// Budget exhausted; reports how close the best candidate came.
    Exhausted {
        /// Best attractor coverage reached (1.0 = correct).
        best_coverage: f64,
    },
}

/// Searches for a self-stabilising `c`-counter with `n` nodes, resilience
/// `f` and `states` states per node, by hill-climbing on the verifier's
/// attractor coverage with random restarts.
///
/// Output tables are fixed to `h(v, s) = s mod c`, as in the space-optimal
/// algorithms of [4, 5] (the state *is* the output, plus auxiliary states);
/// the search space is the transition tables.
///
/// The hill-climb holds **one** live [`LutCounter`] and never clones a
/// candidate: a proposal patches 1–3 entries in place
/// ([`LutCounter::set_transition`]), rejection un-patches them in reverse,
/// and restarts refill the same tables entry by entry. The only per-run
/// table clone left is wrapping the winning spec with its proven bound.
/// The search trajectory (RNG draw order, acceptance rule) is unchanged
/// from the cloning implementation.
///
/// `budget` bounds the number of verifier evaluations. Fault-free instances
/// (`f = 0`) synthesise in well under 1000 evaluations; `n = 4, f = 1`
/// matches the SAT-scale search of \[5\] and is expected to exhaust small
/// budgets (experiment E7 reports the coverage reached).
///
/// # Errors
///
/// Returns [`ParamError`] if the instance is malformed or too large for the
/// exhaustive verifier.
pub fn synthesize(
    n: usize,
    f: usize,
    c: u64,
    states: u8,
    seed: u64,
    budget: u64,
) -> Result<SynthesisReport, ParamError> {
    if u64::from(states) < c {
        return Err(ParamError::constraint(format!(
            "need at least c = {c} states to output all values, got {states}"
        )));
    }
    let rows = (states as usize)
        .checked_pow(n as u32)
        .ok_or_else(|| ParamError::overflow("|X|^n"))?;
    let output: Vec<Vec<u64>> = vec![(0..states).map(|s| u64::from(s) % c).collect(); n];
    let mut rng = SmallRng::seed_from_u64(seed);

    let mut evaluations = 0u64;
    let mut best_coverage = 0.0f64;

    let random_tables = |rng: &mut SmallRng| -> Vec<Vec<u8>> {
        (0..n)
            .map(|_| (0..rows).map(|_| rng.random_range(0..states)).collect())
            .collect()
    };

    // The one live candidate, validated once and mutated in place below.
    let mut current = LutCounter::new(LutSpec {
        n,
        f,
        c,
        states,
        transition: random_tables(&mut rng),
        output,
        stabilization_bound: 0,
    })?;
    let mut current_score = f64::MIN;
    let mut stagnation = 0u32;
    // Patch journal of the pending proposal: (node, row, previous entry).
    let mut undo: Vec<(usize, usize, u8)> = Vec::with_capacity(3);
    // One game solver for the whole search: every evaluation reuses its
    // buffers, so scoring a candidate allocates nothing.
    let mut analyzer = Analyzer::new();

    while evaluations < budget {
        // Propose: mutate 1–3 random entries (or restart on stagnation).
        undo.clear();
        if stagnation > 200 {
            stagnation = 0;
            current_score = f64::MIN;
            // Restart: refill the tables in place, same draw order as a
            // fresh `random_tables` (a restart is always accepted — the
            // score was just reset — so no undo journal is kept).
            for v in 0..n {
                for row in 0..rows {
                    current.set_transition(v, row, rng.random_range(0..states));
                }
            }
        } else {
            for _ in 0..rng.random_range(1..=3usize) {
                let v = rng.random_range(0..n);
                let row = rng.random_range(0..rows);
                let previous = current.set_transition(v, row, rng.random_range(0..states));
                undo.push((v, row, previous));
            }
        }
        let summary = analyzer.analyze(&current)?;
        let coverage = summary.coverage;
        evaluations += 1;
        best_coverage = best_coverage.max(coverage);
        if summary.failure.is_none() {
            // Re-wrap with the proven bound recorded in the spec — the one
            // table clone of the whole search.
            let worst_case_time = summary.worst_time;
            let mut spec = current.spec().clone();
            spec.stabilization_bound = worst_case_time;
            let counter = LutCounter::new(spec)?;
            return Ok(SynthesisReport {
                outcome: SynthesisOutcome::Found {
                    counter,
                    worst_case_time,
                },
                evaluations,
            });
        }
        if coverage >= current_score {
            if coverage == current_score {
                stagnation += 1;
            } else {
                stagnation = 0;
            }
            current_score = coverage;
        } else {
            stagnation += 1;
            // Reject: un-patch in reverse order (entries may repeat).
            for &(v, row, previous) in undo.iter().rev() {
                current.set_transition(v, row, previous);
            }
        }
    }

    Ok(SynthesisReport {
        outcome: SynthesisOutcome::Exhausted { best_coverage },
        evaluations,
    })
}

/// A cheap screen run in front of the exhaustive verifier during a sweep.
///
/// # Soundness contract: reject-only
///
/// `reject(lut) == true` must imply the candidate is **not** a correct
/// self-stabilising counter — a filter may only *reject*, never accept: a
/// `false` return says nothing (the exhaustive verifier still decides every
/// survivor), so a sweep with any filter finds exactly the correct
/// candidates a sweep with [`NoFilter`] finds, at lower cost. The
/// [`SweepLedger`] keeps the split auditable, and `tests/quotient_cross.rs`
/// cross-checks every filtered candidate against the exhaustive verdict.
///
/// The library implementation is `sc_attack`'s `AttackPreFilter`, which
/// runs a budgeted scripted-attack search per candidate (sliced evals)
/// and rejects when a found script provably prevents stabilisation for a
/// horizon no correct candidate of that shape can need.
pub trait CandidateFilter {
    /// Whether a cheap attack already breaks `lut`. `true` must be sound
    /// (see the trait docs); `false` means "exhaustively verify me".
    fn reject(&mut self, lut: &LutCounter) -> bool;

    /// A fresh filter for one worker thread of a parallel sweep, or `None`
    /// when this filter cannot screen candidates concurrently — the sweep
    /// then stays serial, so the default is always sound. A fork must
    /// reject exactly the candidates the parent would (rejection must be a
    /// pure function of the candidate) and starts with zeroed audit
    /// counters; the parent recovers them through
    /// [`CandidateFilter::absorb`].
    fn fork(&self) -> Option<Self>
    where
        Self: Sized,
    {
        None
    }

    /// Folds a fork's audit counters back into `self` once its worker is
    /// done. Counters are sums, so the totals are independent of which
    /// thread screened which candidate.
    fn absorb(&mut self, fork: Self)
    where
        Self: Sized,
    {
        let _ = fork;
    }
}

/// The identity filter: every candidate survives to exhaustive
/// verification. A sweep with `NoFilter` is the audit baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFilter;

impl CandidateFilter for NoFilter {
    fn reject(&mut self, _lut: &LutCounter) -> bool {
        false
    }

    fn fork(&self) -> Option<NoFilter> {
        Some(NoFilter)
    }
}

/// The audit trail of a sweep: how many candidates each pipeline stage
/// consumed. Invariants (checked by the test suites):
/// `screened = filtered + survivors`, `verified = survivors`
/// (the pre-filter may only reject, so every survivor is exhaustively
/// verified), `found ≤ verified`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepLedger {
    /// Candidates instantiated and offered to the pre-filter.
    pub screened: u64,
    /// Candidates the pre-filter rejected (a cheap attack breaks them).
    pub filtered: u64,
    /// Candidates that passed the pre-filter.
    pub survivors: u64,
    /// Survivors decided by the exhaustive verifier.
    pub verified: u64,
    /// Verified correct counters.
    pub found: u64,
}

/// A declared candidate family for exhaustive sweeps: **symmetric**
/// transition tables over `n` nodes. Rows are grouped into classes by the
/// multiset of received states; a candidate assigns one next-state per
/// class, shared by every node — so every candidate is exchangeable by
/// construction and the orbit-quotient engine (`crate::orbit`) applies.
/// Output tables are fixed to `h(v, s) = s mod c`, as in [`synthesize`].
///
/// The family size is `|X|^classes` with `classes = C(|X|+n−1, n)` — e.g.
/// `n = 5, |X| = 2` gives 6 classes and 64 candidates, an exhaustively
/// sweepable space that brute force over raw tables (`2^32` candidates)
/// could never cover.
#[derive(Clone, Debug)]
pub struct SymmetricFamily {
    n: usize,
    f: usize,
    c: u64,
    states: u8,
    /// Row index → class id.
    class_of: Vec<u32>,
    classes: usize,
}

impl SymmetricFamily {
    /// Declares the family for `n` nodes, resilience `f`, modulus `c` and
    /// `states` states, grouping the `|X|^n` rows into multiset classes.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when the parameters do not form a valid
    /// counter shape (`c < 2`, `states < c`, `3f ≥ n`, table too large).
    pub fn new(n: usize, f: usize, c: u64, states: u8) -> Result<SymmetricFamily, ParamError> {
        if u64::from(states) < c {
            return Err(ParamError::constraint(format!(
                "need at least c = {c} states to output all values, got {states}"
            )));
        }
        // Validate the shape once via the seed candidate's construction.
        let family = SymmetricFamily {
            n,
            f,
            c,
            states,
            class_of: Vec::new(),
            classes: 0,
        };
        let probe = family.seed()?;
        let rows = probe.spec().transition[0].len();
        let x = states as usize;
        let mut class_of = vec![0u32; rows];
        let mut classes: HashMap<Vec<u8>, u32> = HashMap::new();
        for (r, slot) in class_of.iter_mut().enumerate() {
            let mut digits = Vec::with_capacity(n);
            let mut rest = r;
            for _ in 0..n {
                digits.push((rest % x) as u8);
                rest /= x;
            }
            digits.sort_unstable();
            let next_id = classes.len() as u32;
            *slot = *classes.entry(digits).or_insert(next_id);
        }
        Ok(SymmetricFamily {
            n,
            f,
            c,
            states,
            classes: classes.len(),
            class_of,
        })
    }

    /// Number of row classes (multisets of `n` received states).
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Number of candidates (`|X|^classes`), when it fits in a `u64` —
    /// families past that size are for budgeted sampling, not sweeps.
    pub fn len(&self) -> Option<u64> {
        u64::from(self.states).checked_pow(self.classes as u32)
    }

    /// Whether the family is empty (it never is; for clippy's benefit).
    pub fn is_empty(&self) -> bool {
        self.len() == Some(0)
    }

    /// The candidate with index 0 (every class mapping to state 0) — the
    /// live table [`SymmetricFamily::instantiate`] patches in place.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when the shape is invalid (see
    /// [`LutCounter::new`]).
    pub fn seed(&self) -> Result<LutCounter, ParamError> {
        let rows = (self.states as usize)
            .checked_pow(self.n as u32)
            .ok_or_else(|| ParamError::overflow("|X|^n"))?;
        LutCounter::new(LutSpec {
            n: self.n,
            f: self.f,
            c: self.c,
            states: self.states,
            transition: vec![vec![0u8; rows]; self.n],
            output: vec![(0..self.states).map(|s| u64::from(s) % self.c).collect(); self.n],
            stabilization_bound: 0,
        })
    }

    /// Patches `lut` (a table of this family's shape) into candidate
    /// `index`: class `k` maps to the `k`-th base-`|X|` digit of `index`,
    /// identically for every node.
    ///
    /// # Panics
    ///
    /// Panics if `lut` has a different shape than [`SymmetricFamily::seed`]
    /// produces.
    pub fn instantiate(&self, index: u64, lut: &mut LutCounter) {
        let mut digits = vec![0u8; self.classes];
        let mut rest = index;
        let x = u64::from(self.states);
        for d in digits.iter_mut() {
            *d = (rest % x) as u8;
            rest /= x;
        }
        for r in 0..self.class_of.len() {
            let state = digits[self.class_of[r] as usize];
            for v in 0..self.n {
                lut.set_transition(v, r, state);
            }
        }
    }
}

/// Resumable sweep position: everything [`sweep_family`] needs to pick a
/// killed campaign back up mid-sweep — the next candidate index, the
/// ledger, the surviving candidate indices, and the verified finds
/// `(index, worst_case_time)`. Serialised with the repo codec
/// ([`SweepCheckpoint::encode`] / [`SweepCheckpoint::decode`]); resuming
/// from a decoded checkpoint is bitwise-equivalent to never having
/// stopped (`tests/quotient_cross.rs` asserts it).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SweepCheckpoint {
    /// Next candidate index to process.
    pub position: u64,
    /// Pipeline counts so far.
    pub ledger: SweepLedger,
    /// Indices that passed the pre-filter, in sweep order.
    pub survivors: Vec<u64>,
    /// Verified correct candidates: `(index, worst_case_time)`.
    pub found: Vec<(u64, u64)>,
}

/// Codec version tag of [`SweepCheckpoint::encode`]. Version 2 added the
/// corruption trailer: a declared body length after the version tag and
/// an FNV-1a checksum after the body.
const CHECKPOINT_VERSION: u64 = 2;

/// FNV-1a offset basis / prime (64-bit), the repo's checksum of choice.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl SweepCheckpoint {
    /// A fresh sweep, positioned at candidate 0.
    pub fn new() -> SweepCheckpoint {
        SweepCheckpoint::default()
    }

    /// Body length in bits for the given list sizes: position + five
    /// ledger counters (64 each), two 32-bit list lengths, the lists.
    fn body_bits(survivors: u64, found: u64) -> u64 {
        6 * 64 + 32 + survivors * 64 + 32 + found * 128
    }

    /// FNV-1a over every semantic field (word-at-a-time), the checksum
    /// stored in the encode trailer. List lengths are folded in too, so
    /// an element sliding between lists cannot collide.
    fn digest(&self) -> u64 {
        let mut hash = FNV_OFFSET;
        let mut fold = |word: u64| {
            hash ^= word;
            hash = hash.wrapping_mul(FNV_PRIME);
        };
        fold(self.position);
        fold(self.ledger.screened);
        fold(self.ledger.filtered);
        fold(self.ledger.survivors);
        fold(self.ledger.verified);
        fold(self.ledger.found);
        fold(self.survivors.len() as u64);
        for &index in &self.survivors {
            fold(index);
        }
        fold(self.found.len() as u64);
        for &(index, time) in &self.found {
            fold(index);
            fold(time);
        }
        hash
    }

    /// Appends the checkpoint to `out`: an 8-bit version, a 32-bit body
    /// length, the body (position and the five ledger counters at 64 bits
    /// each, then the survivor and find lists behind 32-bit lengths), and
    /// a 64-bit FNV-1a checksum over the semantic fields. Length and
    /// checksum let [`SweepCheckpoint::decode`] reject truncated or
    /// bit-flipped streams instead of resuming a sweep from garbage.
    pub fn encode(&self, out: &mut BitVec) {
        out.push_bits(CHECKPOINT_VERSION, 8);
        out.push_bits(
            Self::body_bits(self.survivors.len() as u64, self.found.len() as u64),
            32,
        );
        out.push_bits(self.position, 64);
        out.push_bits(self.ledger.screened, 64);
        out.push_bits(self.ledger.filtered, 64);
        out.push_bits(self.ledger.survivors, 64);
        out.push_bits(self.ledger.verified, 64);
        out.push_bits(self.ledger.found, 64);
        out.push_bits(self.survivors.len() as u64, 32);
        for &index in &self.survivors {
            out.push_bits(index, 64);
        }
        out.push_bits(self.found.len() as u64, 32);
        for &(index, time) in &self.found {
            out.push_bits(index, 64);
            out.push_bits(time, 64);
        }
        out.push_bits(self.digest(), 64);
    }

    /// Decodes a checkpoint written by [`SweepCheckpoint::encode`],
    /// verifying the declared body length and the checksum trailer.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] when the bit string is truncated, the
    /// version tag is unknown, the declared length disagrees with the
    /// decoded list sizes (`"sweep checkpoint length"`), or the checksum
    /// does not match the decoded fields (`"sweep checkpoint checksum"`).
    pub fn decode(input: &mut BitReader<'_>) -> Result<SweepCheckpoint, CodecError> {
        let version = input.read_bits(8)?;
        if version != CHECKPOINT_VERSION {
            return Err(CodecError::InvalidField {
                field: "sweep checkpoint version",
                value: version,
            });
        }
        let declared = input.read_bits(32)?;
        let position = input.read_bits(64)?;
        let ledger = SweepLedger {
            screened: input.read_bits(64)?,
            filtered: input.read_bits(64)?,
            survivors: input.read_bits(64)?,
            verified: input.read_bits(64)?,
            found: input.read_bits(64)?,
        };
        let survivor_count = input.read_bits(32)?;
        // Check the declared length *before* trusting a (possibly
        // corrupted) count to size an allocation or a read loop.
        if declared < Self::body_bits(survivor_count, 0) {
            return Err(CodecError::InvalidField {
                field: "sweep checkpoint length",
                value: declared,
            });
        }
        let mut survivors = Vec::with_capacity(survivor_count as usize);
        for _ in 0..survivor_count {
            survivors.push(input.read_bits(64)?);
        }
        let found_count = input.read_bits(32)?;
        if declared != Self::body_bits(survivor_count, found_count) {
            return Err(CodecError::InvalidField {
                field: "sweep checkpoint length",
                value: declared,
            });
        }
        let mut found = Vec::with_capacity(found_count as usize);
        for _ in 0..found_count {
            found.push((input.read_bits(64)?, input.read_bits(64)?));
        }
        let checksum = input.read_bits(64)?;
        let checkpoint = SweepCheckpoint {
            position,
            ledger,
            survivors,
            found,
        };
        if checksum != checkpoint.digest() {
            return Err(CodecError::InvalidField {
                field: "sweep checkpoint checksum",
                value: checksum,
            });
        }
        Ok(checkpoint)
    }
}

/// What one [`sweep_family`] call did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepOutcome {
    /// Whether the whole family has now been processed.
    pub complete: bool,
    /// Candidates processed by this call.
    pub processed: u64,
}

/// Sweeps (part of) a candidate family through the pre-filter + exhaustive
/// verification pipeline, advancing `checkpoint` in place: each candidate
/// is instantiated, offered to `filter`, and — unless rejected —
/// exhaustively decided by `analyzer` (survivors of a sound filter are
/// *never* trusted: correctness is only ever established by the verifier).
/// At most `budget` candidates are processed per call, so a campaign can
/// checkpoint between calls ([`SweepCheckpoint::encode`]) and a killed
/// sweep resumes exactly where it stopped.
///
/// With the `parallel` feature (default) and a filter that implements
/// [`CandidateFilter::fork`], candidate screening (pre-filter plus the
/// quotient solve for survivors) fans out on the persistent [`sc_exec`]
/// pool in bounded chunks; the ledger, survivor list and finds are folded
/// in candidate order, so the checkpoint — including mid-chunk resume
/// points — is bitwise identical to the serial sweep at every thread
/// count. Filters that return `None` from `fork` keep the serial path.
///
/// # Errors
///
/// Returns [`ParamError`] when the family cannot be enumerated in 64 bits
/// or the verifier rejects the instance shape; the checkpoint is left at
/// the failing candidate, so a retry resumes there.
#[cfg(feature = "parallel")]
pub fn sweep_family<F: CandidateFilter + Send + Sync>(
    family: &SymmetricFamily,
    filter: &mut F,
    analyzer: &mut Analyzer,
    checkpoint: &mut SweepCheckpoint,
    budget: u64,
) -> Result<SweepOutcome, ParamError> {
    sweep_family_on(
        sc_exec::pool(),
        sc_exec::threads(),
        family,
        filter,
        analyzer,
        checkpoint,
        budget,
    )
}

/// Serial [`sweep_family`] — the `parallel` feature is off, or see
/// [`sweep_family_on`] for the pool-backed variant.
#[cfg(not(feature = "parallel"))]
pub fn sweep_family<F: CandidateFilter>(
    family: &SymmetricFamily,
    filter: &mut F,
    analyzer: &mut Analyzer,
    checkpoint: &mut SweepCheckpoint,
    budget: u64,
) -> Result<SweepOutcome, ParamError> {
    let total = family
        .len()
        .ok_or_else(|| ParamError::overflow("|X|^classes candidates"))?;
    let end = checkpoint.position.saturating_add(budget).min(total);
    sweep_serial(family, filter, analyzer, checkpoint, end, total)
}

/// Candidates per pool submission: bounds the per-chunk result buffer (a
/// huge-budget call folds chunk by chunk) without affecting results — the
/// fold order is candidate order regardless of the chunk size.
#[cfg(feature = "parallel")]
const SWEEP_CHUNK: u64 = 1024;

/// What one worker decided about one candidate, before the in-order fold.
#[cfg(feature = "parallel")]
enum Screened {
    Rejected,
    Survived(Result<crate::checker::AnalysisSummary, ParamError>),
}

/// [`sweep_family`] against an explicit pool and thread cap — the seam the
/// thread-count-invariance tests drive with forced worker counts. The
/// public entry point passes the process-wide pool and [`sc_exec::threads`].
#[cfg(feature = "parallel")]
pub fn sweep_family_on<F: CandidateFilter + Send + Sync>(
    pool: &sc_exec::Pool,
    threads: usize,
    family: &SymmetricFamily,
    filter: &mut F,
    analyzer: &mut Analyzer,
    checkpoint: &mut SweepCheckpoint,
    budget: u64,
) -> Result<SweepOutcome, ParamError> {
    let total = family
        .len()
        .ok_or_else(|| ParamError::overflow("|X|^classes candidates"))?;
    let end = checkpoint.position.saturating_add(budget).min(total);
    if threads <= 1 || end.saturating_sub(checkpoint.position) <= 1 {
        return sweep_serial(family, filter, analyzer, checkpoint, end, total);
    }
    let Some(probe) = filter.fork() else {
        // The filter cannot screen concurrently — stay serial (sound and
        // identical by the fork contract).
        return sweep_serial(family, filter, analyzer, checkpoint, end, total);
    };
    drop(probe);
    family.seed()?; // Validate the shape once, so worker forks cannot fail.
    let mut processed = 0u64;
    while checkpoint.position < end {
        let base = checkpoint.position;
        let chunk = (end - base).min(SWEEP_CHUNK);
        // Each claiming thread checks out a (candidate table, filter fork,
        // analyzer fork) triple once and reuses it across its claims.
        let scratch: sc_exec::WorkerScratch<(LutCounter, F, Analyzer)> =
            sc_exec::WorkerScratch::new();
        let filter_ref: &F = filter;
        let analyzer_ref: &Analyzer = analyzer;
        let outcomes: Vec<Screened> = pool.map(chunk as usize, threads, |i| {
            scratch.with(
                || {
                    (
                        family.seed().expect("family shape validated above"),
                        filter_ref.fork().expect("fork is deterministic"),
                        analyzer_ref.fork(),
                    )
                },
                |(lut, fork, eng)| {
                    family.instantiate(base + i as u64, lut);
                    if fork.reject(lut) {
                        Screened::Rejected
                    } else {
                        Screened::Survived(eng.analyze(lut))
                    }
                },
            )
        });
        // Audit counters first (sums — claim-order independent), so they
        // survive even an error return below.
        for (_, fork, _) in scratch.take_all() {
            filter.absorb(fork);
        }
        // Fold in candidate order: bitwise the serial loop.
        for (i, outcome) in outcomes.into_iter().enumerate() {
            let index = base + i as u64;
            checkpoint.ledger.screened += 1;
            match outcome {
                Screened::Rejected => checkpoint.ledger.filtered += 1,
                Screened::Survived(summary) => {
                    checkpoint.ledger.survivors += 1;
                    checkpoint.survivors.push(index);
                    let summary = summary?;
                    checkpoint.ledger.verified += 1;
                    if summary.failure.is_none() {
                        checkpoint.ledger.found += 1;
                        checkpoint.found.push((index, summary.worst_time));
                    }
                }
            }
            checkpoint.position += 1;
            processed += 1;
        }
    }
    Ok(SweepOutcome {
        complete: checkpoint.position == total,
        processed,
    })
}

/// The serial sweep loop both entry points share: one live candidate table
/// patched in place, the caller's filter and analyzer reused throughout.
fn sweep_serial<F: CandidateFilter>(
    family: &SymmetricFamily,
    filter: &mut F,
    analyzer: &mut Analyzer,
    checkpoint: &mut SweepCheckpoint,
    end: u64,
    total: u64,
) -> Result<SweepOutcome, ParamError> {
    let mut lut = family.seed()?;
    let mut processed = 0u64;
    while checkpoint.position < end {
        let index = checkpoint.position;
        family.instantiate(index, &mut lut);
        checkpoint.ledger.screened += 1;
        if filter.reject(&lut) {
            checkpoint.ledger.filtered += 1;
        } else {
            checkpoint.ledger.survivors += 1;
            checkpoint.survivors.push(index);
            let summary = analyzer.analyze(&lut)?;
            checkpoint.ledger.verified += 1;
            if summary.failure.is_none() {
                checkpoint.ledger.found += 1;
                checkpoint.found.push((index, summary.worst_time));
            }
        }
        checkpoint.position += 1;
        processed += 1;
    }
    Ok(SweepOutcome {
        complete: checkpoint.position == total,
        processed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{verify, Verdict};

    #[test]
    fn synthesises_a_fault_free_two_node_counter() {
        let report = synthesize(2, 0, 2, 2, 7, 5000).unwrap();
        match report.outcome {
            SynthesisOutcome::Found {
                counter,
                worst_case_time,
            } => {
                assert_eq!(
                    verify(&counter).unwrap(),
                    Verdict::Stabilizes { worst_case_time }
                );
                assert_eq!(counter.spec().stabilization_bound, worst_case_time);
            }
            SynthesisOutcome::Exhausted { best_coverage } => {
                panic!("search failed on a trivial instance (coverage {best_coverage})");
            }
        }
    }

    #[test]
    fn synthesises_the_one_node_counter() {
        let report = synthesize(1, 0, 2, 2, 3, 500).unwrap();
        assert!(matches!(report.outcome, SynthesisOutcome::Found { .. }));
    }

    #[test]
    fn rejects_too_few_states() {
        assert!(synthesize(2, 0, 4, 2, 0, 10).is_err());
    }

    #[test]
    fn exhausted_budget_reports_coverage() {
        // One evaluation cannot solve 3 nodes; outcome must be graceful.
        let report = synthesize(4, 1, 2, 2, 1, 1).unwrap();
        assert_eq!(report.evaluations, 1);
        if let SynthesisOutcome::Exhausted { best_coverage } = report.outcome {
            assert!((0.0..=1.0).contains(&best_coverage));
        }
    }

    #[test]
    fn symmetric_family_counts_multiset_classes() {
        // n = 5, |X| = 2: multisets of size 5 over 2 values → 6 classes,
        // 2^6 = 64 candidates.
        let family = SymmetricFamily::new(5, 1, 2, 2).unwrap();
        assert_eq!(family.classes(), 6);
        assert_eq!(family.len(), Some(64));
        // n = 4, |X| = 3: C(3+4−1, 4) = 15 classes.
        let family = SymmetricFamily::new(4, 1, 2, 3).unwrap();
        assert_eq!(family.classes(), 15);
        assert_eq!(family.len(), Some(3u64.pow(15)));
    }

    #[test]
    fn instantiated_candidates_are_exchangeable_and_distinct() {
        let family = SymmetricFamily::new(3, 0, 2, 2).unwrap();
        let mut lut = family.seed().unwrap();
        let mut seen = std::collections::HashSet::new();
        for index in 0..family.len().unwrap() {
            family.instantiate(index, &mut lut);
            assert!(crate::orbit::exchangeable(&lut), "candidate {index}");
            assert!(seen.insert(lut.spec().transition[0].clone()));
        }
    }

    #[test]
    fn checkpoint_codec_round_trips() {
        let checkpoint = SweepCheckpoint {
            position: 37,
            ledger: SweepLedger {
                screened: 37,
                filtered: 30,
                survivors: 7,
                verified: 7,
                found: 2,
            },
            survivors: vec![3, 9, 11, 20, 21, 30, 36],
            found: vec![(9, 4), (21, 7)],
        };
        let mut bits = sc_protocol::BitVec::new();
        checkpoint.encode(&mut bits);
        let decoded = SweepCheckpoint::decode(&mut bits.reader()).unwrap();
        assert_eq!(decoded, checkpoint);
        // Unknown version tags are rejected, not misread.
        let mut bad = sc_protocol::BitVec::new();
        bad.push_bits(99, 8);
        assert!(SweepCheckpoint::decode(&mut bad.reader()).is_err());
    }

    /// The fixture shared by the corruption tests: non-trivial lists so
    /// every codec region (counters, lengths, elements, trailer) exists.
    fn corruption_fixture() -> SweepCheckpoint {
        SweepCheckpoint {
            position: 37,
            ledger: SweepLedger {
                screened: 37,
                filtered: 30,
                survivors: 7,
                verified: 7,
                found: 2,
            },
            survivors: vec![3, 9, 11, 20, 21, 30, 36],
            found: vec![(9, 4), (21, 7)],
        }
    }

    #[test]
    fn checkpoint_rejects_every_truncation() {
        let checkpoint = corruption_fixture();
        let mut bits = sc_protocol::BitVec::new();
        checkpoint.encode(&mut bits);
        // The checksum trailer is last, so no strict prefix can decode:
        // every one must fail with a typed error, never return Ok.
        for keep in 0..bits.len() {
            let mut truncated = sc_protocol::BitVec::new();
            for i in 0..keep {
                truncated.push_bit(bits.bit(i));
            }
            assert!(
                SweepCheckpoint::decode(&mut truncated.reader()).is_err(),
                "a {keep}-bit prefix of a {}-bit checkpoint must not decode",
                bits.len()
            );
        }
    }

    #[test]
    fn checkpoint_rejects_every_single_bit_flip() {
        let checkpoint = corruption_fixture();
        let mut bits = sc_protocol::BitVec::new();
        checkpoint.encode(&mut bits);
        for flip in 0..bits.len() {
            let mut mutated = sc_protocol::BitVec::new();
            for i in 0..bits.len() {
                mutated.push_bit(bits.bit(i) ^ (i == flip));
            }
            let result = SweepCheckpoint::decode(&mut mutated.reader());
            assert!(
                result.is_err(),
                "flipping bit {flip} must not decode to a valid checkpoint, got {result:?}"
            );
        }
    }

    #[test]
    fn checkpoint_flip_errors_are_typed_by_region() {
        use sc_protocol::CodecError;
        let checkpoint = corruption_fixture();
        let mut bits = sc_protocol::BitVec::new();
        checkpoint.encode(&mut bits);
        let flipped = |flip: usize| {
            let mut mutated = sc_protocol::BitVec::new();
            for i in 0..bits.len() {
                mutated.push_bit(bits.bit(i) ^ (i == flip));
            }
            SweepCheckpoint::decode(&mut mutated.reader()).unwrap_err()
        };
        // Bit 0 lives in the 8-bit version tag.
        assert!(matches!(
            flipped(0),
            CodecError::InvalidField {
                field: "sweep checkpoint version",
                ..
            }
        ));
        // Bit 8 is the top of the declared body length.
        assert!(matches!(
            flipped(8),
            CodecError::InvalidField {
                field: "sweep checkpoint length",
                ..
            }
        ));
        // Bit 50 sits inside the `position` body word: the stream stays
        // structurally parseable, so only the checksum catches it.
        assert!(matches!(
            flipped(50),
            CodecError::InvalidField {
                field: "sweep checkpoint checksum",
                ..
            }
        ));
        // The final bit is the checksum itself.
        assert!(matches!(
            flipped(bits.len() - 1),
            CodecError::InvalidField {
                field: "sweep checkpoint checksum",
                ..
            }
        ));
    }

    /// The pool-backed sweep must fold to the serial checkpoint bitwise at
    /// every thread count, driven against explicit pools so real
    /// cross-thread claiming runs regardless of host cores.
    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_sweep_matches_serial_checkpoint_at_forced_caps() {
        let family = SymmetricFamily::new(4, 1, 2, 2).unwrap();
        let total = family.len().unwrap();
        let run = |workers: usize, threads: usize, budget: u64| {
            let pool = sc_exec::Pool::new(workers);
            let mut analyzer = Analyzer::new();
            let mut checkpoint = SweepCheckpoint::new();
            loop {
                let outcome = sweep_family_on(
                    &pool,
                    threads,
                    &family,
                    &mut NoFilter,
                    &mut analyzer,
                    &mut checkpoint,
                    budget,
                )
                .unwrap();
                if outcome.complete {
                    return checkpoint;
                }
            }
        };
        let serial = run(0, 1, total);
        assert_eq!(serial.ledger.screened, total);
        for (workers, threads) in [(1, 2), (6, 7)] {
            assert_eq!(run(workers, threads, total), serial, "cap {threads}");
            // Budgeted into uneven chunks, resuming mid-sweep.
            assert_eq!(run(workers, threads, 7), serial, "cap {threads} budgeted");
        }
    }

    #[test]
    fn chunked_sweep_with_checkpoints_matches_one_shot() {
        let family = SymmetricFamily::new(4, 1, 2, 2).unwrap();
        let total = family.len().unwrap();
        let mut straight = SweepCheckpoint::new();
        let outcome = sweep_family(
            &family,
            &mut NoFilter,
            &mut Analyzer::new(),
            &mut straight,
            total,
        )
        .unwrap();
        assert!(outcome.complete);
        assert_eq!(straight.ledger.screened, total);
        assert_eq!(straight.ledger.verified, straight.ledger.survivors);
        // Resume through serialised checkpoints in uneven chunks.
        let mut resumed = SweepCheckpoint::new();
        let mut analyzer = Analyzer::new();
        loop {
            let outcome =
                sweep_family(&family, &mut NoFilter, &mut analyzer, &mut resumed, 7).unwrap();
            let mut bits = sc_protocol::BitVec::new();
            resumed.encode(&mut bits);
            resumed = SweepCheckpoint::decode(&mut bits.reader()).unwrap();
            if outcome.complete {
                break;
            }
        }
        assert_eq!(resumed, straight);
    }
}
