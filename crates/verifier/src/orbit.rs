//! The orbit-quotient safety-game solver: the bitset core of
//! [`crate::game`], re-indexed over *orbits* of honest configurations
//! under permutations of the correct nodes.
//!
//! # When the quotient is sound
//!
//! Quotienting by honest-node relabelings is **not** free with merely
//! identical per-node tables: the LUT row index weights received positions
//! by `|X|^u`, so two nodes swapping states generally lands in a different
//! row. The quotient is sound exactly for **exchangeable** tables
//! ([`exchangeable`]): every node runs the same transition/output tables
//! and the shared transition table is invariant under permuting the
//! received positions (`T[r ∘ τ] = T[r]` for adjacent transpositions `τ`,
//! which generate the full symmetric group). That is the natural class for
//! synthesis — an anonymous algorithm reads the *multiset* of received
//! states — and every candidate the symmetric synthesis families produce
//! is exchangeable by construction.
//!
//! For an exchangeable table the whole game factors through multisets:
//!
//! * the per-receiver successor mask is **receiver-independent** — node
//!   `i`'s possible next states from configuration `e` depend only on the
//!   multiset of honest states in `e` (one `u64` per orbit instead of `h`
//!   words per configuration);
//! * the safe-set seed ("every successor outputs `out(e)+1`") and the
//!   greatest-fixed-point / attractor dynamics are invariant under the
//!   node permutations, so the full solver's `time` function is constant
//!   on orbits and the quotient's layering *is* the full layering.
//!
//! # The orbit index
//!
//! An orbit of `h` honest states over `|X| = x` values is a multiset,
//! canonically represented by its non-decreasing digit vector
//! `d_0 ≤ d_1 ≤ … ≤ d_{h−1}`. Orbits are ranked by the **combinatorial
//! number system** (colex order): mapping `c_i = d_i + i` gives a strictly
//! increasing sequence, and
//!
//! ```text
//! rank(d) = Σ_i C(c_i, i + 1),     0 ≤ rank < C(x + h − 1, h)
//! ```
//!
//! is a bijection onto `0..C(x+h−1, h)`. The build loop never ranks from
//! scratch: a colex odometer advances the digit vector in rank order while
//! maintaining the LUT row index incrementally, exactly like the full
//! solver's mixed-radix configuration walk. Everything downstream reuses
//! the full solver's machinery one level up:
//!
//! * `cnt[O] = C(popcount(mask) + h − 1, h)` — the number of successor
//!   *orbits* (every multiset over the mask is realisable, because the
//!   per-receiver choices are independent);
//! * predecessor bitsets are per *state*: `P[σ] = { O : σ ∈ mask(O) }`,
//!   and the predecessors of a decided orbit `S` are
//!   `⋂_{σ ∈ distinct(S)} P[σ]`;
//! * aggregate statistics are exact for the **full** space: each orbit
//!   carries its cardinality (a multinomial coefficient), so `configs`,
//!   `covered`, `coverage` and `worst_time` are bitwise identical to the
//!   unquotiented solver's — the equivalence gate `tests/quotient_cross.rs`
//!   enforces it.
//!
//! Witness extraction maps back through the quotient: the lasso walk runs
//! in the *full* configuration space (start = the numerically lowest stuck
//! configuration, steps = the lowest stuck successor, Byzantine values =
//! the first realising combo), querying orbit ranks only for decidedness —
//! so the emitted [`Witness`] is byte-identical to the full solver's and
//! replays on `ScriptedAdversary` unchanged.

use std::collections::HashMap;

use sc_core::LutCounter;
use sc_protocol::{BitVec, ParamError};

use crate::checker::Witness;
use crate::game::{SetStats, MAX_BYZ_COMBOS, MAX_CONFIGS};

/// Sentinel for orbits the attractor never decides.
const UNDECIDED: u32 = u32::MAX;

/// Whether `lut` is exchangeable: every node shares the same transition
/// and output tables, and the shared transition table is invariant under
/// permutations of the received positions. This is the exact condition
/// under which the orbit quotient (and the fault-set dedup of
/// `Analyzer::dedup_fault_sets`) is sound. Cost `O(n · |X|^n)` with early
/// exit on the first asymmetry — random tables bail almost immediately.
pub(crate) fn exchangeable(lut: &LutCounter) -> bool {
    let spec = lut.spec();
    let n = spec.n;
    let x = spec.states as usize;
    let t0 = &spec.transition[0];
    if spec.transition[1..].iter().any(|t| t != t0) {
        return false;
    }
    let o0 = &spec.output[0];
    if spec.output[1..].iter().any(|o| o != o0) {
        return false;
    }
    // Invariance under the adjacent transpositions (u, u+1), which
    // generate S_n: swap the two digits of every row where they differ.
    let mut pow_u = 1usize;
    for _ in 0..n.saturating_sub(1) {
        let pow_v = pow_u * x;
        for (r, &t) in t0.iter().enumerate() {
            let du = r / pow_u % x;
            let dv = r / pow_v % x;
            if du < dv {
                let swapped = r - du * pow_u - dv * pow_v + dv * pow_u + du * pow_v;
                if t != t0[swapped] {
                    return false;
                }
            }
        }
        pow_u = pow_v;
    }
    true
}

/// Binomial coefficient with saturating arithmetic — callers only ever
/// *use* values that are bounded by an orbit count or a configuration
/// count (both capped), so saturated entries can only flow into limit
/// checks, where saturation rejects correctly.
pub(crate) fn binomial(a: usize, b: usize) -> u64 {
    if b > a {
        return 0;
    }
    let b = b.min(a - b);
    let mut acc = 1u64;
    for i in 0..b {
        // Multiply-then-divide keeps every intermediate an exact binomial.
        acc = acc
            .saturating_mul((a - i) as u64)
            .checked_div((i + 1) as u64)
            .unwrap_or(u64::MAX)
    }
    acc
}

/// The quotient game solver: per-fault-set state, owned once and rebuilt
/// in place by every [`OrbitSolver::run`] — the orbit-level mirror of
/// [`crate::game::Solver`], sharing its exploration-limit constants.
#[derive(Default)]
pub(crate) struct OrbitSolver {
    /// Correct nodes, ascending.
    pub honest: Vec<usize>,
    /// The fault set, in the order Byzantine combos are decoded.
    pub faulty: Vec<usize>,
    /// Number of states `|X|`.
    pub x: usize,
    /// Byzantine combinations per step (`|X|^|F|`).
    pub combos: usize,
    /// Full configuration count (`|X|^h`) — the statistics denominator.
    pub configs: usize,
    /// Number of orbits (`C(x + h − 1, h)`).
    pub orbits: usize,
    /// Full configurations with a decided stabilisation time.
    pub covered: usize,
    /// Exact worst-case stabilisation time over decided configurations.
    pub worst_time: u64,
    /// The greatest fixed point, over orbits.
    safe: BitVec,
    /// One receiver-independent successor mask per orbit.
    masks: Vec<u64>,
    /// Canonical representatives: `h` non-decreasing digits per orbit.
    reps: Vec<u8>,
    /// Orbit cardinalities (multinomial coefficients); sum = `configs`.
    sizes: Vec<u64>,
    /// Flat predecessor bitsets: `σ * words ..` is the bitset of orbits
    /// whose mask contains state `σ`.
    pred: Vec<u64>,
    /// 64-bit words per orbit bitset.
    words: usize,
    /// Attractor time per orbit ([`UNDECIDED`] = stuck).
    time: Vec<u32>,
    /// Attractor counters: undecided successor *orbits* per orbit.
    cnt: Vec<u32>,
    /// Pascal table `C(a, b)` for `a < x + h`, `b ≤ h` (saturating).
    binom: Vec<u64>,
    /// Column count of `binom` (`h + 1`).
    binom_cols: usize,
    /// `x^i` for honest positions `i` (full-configuration radix).
    xpow: Vec<usize>,
    /// `x^{honest[i]}` — LUT row weight of honest position `i`.
    pow_h: Vec<usize>,
    /// `x^{faulty[g]}` — LUT row weight of faulty position `g`.
    pow_f: Vec<usize>,
    /// `(output value, mask of states producing it)` pairs — one shared
    /// list (the tables are identical across nodes).
    out_ok: Vec<(u64, u64)>,
    /// Shared output table, indexed by state.
    out: Vec<u64>,
    // Worklist and odometer scratch.
    undecided: Vec<u64>,
    digits: Vec<u8>,
    byz: Vec<u8>,
    stack: Vec<u32>,
    preds: Vec<u32>,
    frontier: Vec<u32>,
    next: Vec<u32>,
    /// Attractor scratch: hoisted predecessor-row offsets of the current
    /// frontier (variable count per member — the distinct digits).
    rows: Vec<usize>,
    /// Attractor scratch: `rows` offsets, one slot per frontier member + 1.
    row_off: Vec<u32>,
    /// Attractor scratch: the shrinking window of orbit words that still
    /// hold undecided bits.
    live: Vec<u32>,
}

impl OrbitSolver {
    /// Builds the quotient game for `lut` under fault set `faulty` and
    /// solves it. **Precondition**: `lut` is [`exchangeable`] — the caller
    /// (the analyzer's mode dispatch) checks; the statistics are only
    /// meaningful under that symmetry.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when the instance exceeds the exploration
    /// limits (`C(x+h−1, h)` orbits or `|X|^|F|` combos too large, more
    /// than 64 states, or a fault set leaving no correct node).
    pub(crate) fn run(
        &mut self,
        lut: &LutCounter,
        faulty: &[usize],
    ) -> Result<SetStats, ParamError> {
        self.build(lut, faulty)?;
        self.refine_safe();
        self.attract();
        Ok(SetStats {
            configs: self.configs,
            covered: self.covered,
            worst_time: self.worst_time,
        })
    }

    fn build(&mut self, lut: &LutCounter, faulty: &[usize]) -> Result<(), ParamError> {
        let spec = lut.spec();
        let x = spec.states as usize;
        if x > 64 {
            return Err(ParamError::overflow(format!(
                "|X| = {x} states exceed the 64-bit successor masks"
            )));
        }
        self.honest.clear();
        self.honest
            .extend((0..spec.n).filter(|v| !faulty.contains(v)));
        self.faulty.clear();
        self.faulty.extend_from_slice(faulty);
        let h = self.honest.len();
        if h == 0 {
            return Err(ParamError::constraint(
                "fault set covers every node: nothing to verify",
            ));
        }
        let combos = x
            .checked_pow(faulty.len() as u32)
            .filter(|&c| c <= MAX_BYZ_COMBOS)
            .ok_or_else(|| ParamError::overflow(format!("|X|^|F| = {x}^{}", faulty.len())))?;
        let orbits = binomial(x + h - 1, h);
        if orbits > MAX_CONFIGS as u64 {
            return Err(ParamError::overflow(format!(
                "C(x+h−1, h) = C({}, {h}) orbits",
                x + h - 1
            )));
        }
        let orbits = orbits as usize;
        // `|X|^h ≤ |X|^n` = the validated LUT row count, so this cannot
        // overflow; the checked form guards against future relaxations.
        let configs = x
            .checked_pow(h as u32)
            .ok_or_else(|| ParamError::overflow(format!("|X|^h = {x}^{h}")))?;
        self.x = x;
        self.combos = combos;
        self.orbits = orbits;
        self.configs = configs;
        self.words = orbits.div_ceil(64);

        // Pascal table C(a, b), a < x + h, b ≤ h.
        self.binom_cols = h + 1;
        self.binom.clear();
        self.binom.resize((x + h) * self.binom_cols, 0);
        for a in 0..x + h {
            self.binom[a * self.binom_cols] = 1;
            for b in 1..=h.min(a) {
                let up = (a - 1) * self.binom_cols + b;
                self.binom[a * self.binom_cols + b] =
                    self.binom[up - 1].saturating_add(self.binom[up]);
            }
        }

        self.xpow.clear();
        self.pow_h.clear();
        self.pow_f.clear();
        let mut p = 1usize;
        for _ in 0..h {
            self.xpow.push(p);
            p = p.saturating_mul(x);
        }
        for &v in &self.honest {
            self.pow_h.push(x.pow(v as u32));
        }
        for &v in &self.faulty {
            self.pow_f.push(x.pow(v as u32));
        }

        // Shared output table and value → state-mask pairs (one list: the
        // tables are identical across nodes under exchangeability).
        let outputs = &spec.output[self.honest[0]];
        self.out.clear();
        self.out.extend_from_slice(outputs);
        self.out_ok.clear();
        for (state, &value) in outputs.iter().enumerate() {
            match self.out_ok.iter_mut().find(|(v, _)| *v == value) {
                Some((_, mask)) => *mask |= 1u64 << state,
                None => self.out_ok.push((value, 1u64 << state)),
            }
        }

        self.masks.clear();
        self.masks.resize(orbits, 0);
        self.reps.clear();
        self.reps.resize(orbits * h, 0);
        self.sizes.clear();
        self.sizes.resize(orbits, 0);
        self.pred.clear();
        self.pred.resize(x * self.words, 0);
        self.cnt.clear();
        self.cnt.resize(orbits, 0);
        self.time.clear();
        self.time.resize(orbits, UNDECIDED);
        self.safe.reset(orbits);
        self.digits.clear();
        self.digits.resize(h, 0);
        self.byz.clear();
        self.byz.resize(faulty.len(), 0);

        // --- masks, predecessor index, sizes, safe seed, in rank order. ---
        // The colex odometer walks the non-decreasing digit vectors in
        // rank order while the LUT row index of the honest part is
        // maintained incrementally (digit `i` is placed at position
        // `honest[i]` — any placement indexes the same row, the table
        // being exchangeable).
        let words = self.words;
        let row = &spec.transition[self.honest[0]];
        let c = spec.c;
        let mut base = 0usize; // LUT row index of the honest part
        for o in 0..orbits {
            // Receiver-independent successor mask under all Byzantine
            // combinations — the orbit-level copy of the full solver's
            // incremental combo loop, one accumulator instead of `h`.
            let mut m = 0u64;
            let mut idx = base;
            let mut remaining = combos;
            loop {
                m |= 1u64 << row[idx];
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
                let mut g = 0;
                loop {
                    if (self.byz[g] as usize) + 1 < x {
                        self.byz[g] += 1;
                        idx += self.pow_f[g];
                        break;
                    }
                    idx -= (x - 1) * self.pow_f[g];
                    self.byz[g] = 0;
                    g += 1;
                }
            }
            self.byz.iter_mut().for_each(|b| *b = 0);
            self.masks[o] = m;
            self.reps[o * h..(o + 1) * h].copy_from_slice(&self.digits);

            // Orbit cardinality: the multinomial h! / ∏ mult_k!, computed
            // as a product of exact binomials over the digit runs.
            let mut size = 1u64;
            let mut placed = 0usize;
            let mut r = 0;
            while r < h {
                let mut run = 1;
                while r + run < h && self.digits[r + run] == self.digits[r] {
                    run += 1;
                }
                placed += run;
                size *= self.binom(placed, run);
                r += run;
            }
            self.sizes[o] = size;

            // Predecessor index and undecided-successor-orbit counter.
            let p = m.count_ones() as usize;
            let mut mm = m;
            while mm != 0 {
                let state = mm.trailing_zeros() as usize;
                mm &= mm - 1;
                self.pred[state * words + o / 64] |= 1u64 << (63 - (o % 64));
            }
            self.cnt[o] = self.binom(p + h - 1, h) as u32;

            // Safe seed: the configuration agrees on its output and every
            // successor keeps outputting `out + 1 mod c` — per-orbit the
            // full solver's factored per-node check collapses to one mask
            // test (the mask is shared by every receiver).
            let first = self.out[self.digits[0] as usize];
            if self.digits.iter().all(|&d| self.out[d as usize] == first) {
                let expect = (first + 1) % c;
                let okm = self
                    .out_ok
                    .iter()
                    .find(|(v, _)| *v == expect)
                    .map_or(0, |(_, m)| *m);
                if m & !okm == 0 {
                    self.safe.set_bit(o, true);
                }
            }

            // Colex successor: bump the lowest digit that can grow while
            // staying non-decreasing, zero everything below it.
            if o + 1 < orbits {
                let mut i = 0;
                loop {
                    let cap = if i + 1 < h {
                        self.digits[i + 1]
                    } else {
                        (x - 1) as u8
                    };
                    if self.digits[i] < cap {
                        self.digits[i] += 1;
                        base += self.pow_h[i];
                        for j in 0..i {
                            base -= self.digits[j] as usize * self.pow_h[j];
                            self.digits[j] = 0;
                        }
                        break;
                    }
                    i += 1;
                }
            }
        }
        Ok(())
    }

    /// `C(a, b)` from the per-run Pascal table.
    #[inline]
    fn binom(&self, a: usize, b: usize) -> u64 {
        self.binom[a * self.binom_cols + b]
    }

    /// Rank of a non-decreasing digit vector in the combinatorial number
    /// system — the orbit index.
    #[inline]
    fn rank(&self, sorted: &[u8]) -> usize {
        let mut r = 0usize;
        for (i, &d) in sorted.iter().enumerate() {
            r += self.binom(d as usize + i, i + 1) as usize;
        }
        r
    }

    /// Greatest-fixed-point refinement over orbit representatives — the
    /// orbit-level mirror of the full solver's worklist: one lazy successor
    /// walk per seed member (early exit on the first escape), then removal
    /// propagation through the per-state predecessor bitsets.
    fn refine_safe(&mut self) {
        let mut removals = std::mem::take(&mut self.stack);
        removals.clear();
        for w in 0..self.words {
            let mut acc = self.safe.words()[w];
            while acc != 0 {
                let lead = acc.leading_zeros() as usize;
                acc &= !(1u64 << (63 - lead));
                let o = w * 64 + lead;
                let safe = &self.safe;
                if !self.for_each_successor_orbit(o, |s| safe.bit(s)) {
                    self.safe.set_bit(o, false);
                    removals.push(o as u32);
                }
            }
        }
        let mut preds = std::mem::take(&mut self.preds);
        while let Some(s) = removals.pop() {
            preds.clear();
            self.collect_preds(s as usize, self.safe.words(), &mut preds);
            for &o in &preds {
                self.safe.set_bit(o as usize, false);
                removals.push(o);
            }
        }
        self.stack = removals;
        self.preds = preds;
    }

    /// Walks the successor *orbits* of orbit `o` — every multiset of `h`
    /// states over the set bits of its mask, via a non-decreasing odometer
    /// over the sorted mask states — stopping when `visit` returns
    /// `false`. Returns whether the walk completed.
    fn for_each_successor_orbit(&self, o: usize, mut visit: impl FnMut(usize) -> bool) -> bool {
        let h = self.honest.len();
        let m = self.masks[o];
        let p = m.count_ones() as usize;
        let mut states = [0u8; 64];
        let mut mm = m;
        let mut k = 0;
        while mm != 0 {
            states[k] = mm.trailing_zeros() as u8;
            mm &= mm - 1;
            k += 1;
        }
        let mut j = [0u8; 64]; // non-decreasing indices into `states`
        loop {
            let mut r = 0usize;
            for i in 0..h {
                r += self.binom(states[j[i] as usize] as usize + i, i + 1) as usize;
            }
            if !visit(r) {
                return false;
            }
            let mut i = 0;
            loop {
                if i == h {
                    return true;
                }
                let cap = if i + 1 < h { j[i + 1] } else { (p - 1) as u8 };
                if j[i] < cap {
                    j[i] += 1;
                    j[..i].iter_mut().for_each(|q| *q = 0);
                    break;
                }
                i += 1;
            }
        }
    }

    /// Appends to `out` every orbit whose successor set contains orbit `s`,
    /// restricted to the set bits of `filter`: the word-wise intersection
    /// `filter ∩ ⋂_{σ ∈ distinct(rep(s))} P[σ]`.
    fn collect_preds(&self, s: usize, filter: &[u64], out: &mut Vec<u32>) {
        let h = self.honest.len();
        let words = self.words;
        let rep = &self.reps[s * h..(s + 1) * h];
        let mut rows = [0usize; 64];
        let mut nrows = 0usize;
        let mut prev = usize::MAX;
        for &d in rep {
            let d = d as usize;
            if d != prev {
                rows[nrows] = d * words;
                nrows += 1;
                prev = d;
            }
        }
        for w in 0..words {
            let mut acc = filter[w];
            for &row in rows.iter().take(nrows) {
                if acc == 0 {
                    break;
                }
                acc &= self.pred[row + w];
            }
            while acc != 0 {
                let lead = acc.leading_zeros() as usize;
                acc &= !(1u64 << (63 - lead));
                out.push((w * 64 + lead) as u32);
            }
        }
    }

    /// Counter-based attractor layering over orbits — structurally the full
    /// solver's batched bitset pass (hoisted predecessor rows per layer, a
    /// shrinking live window of undecided words), with two quotient
    /// adaptations: frontier members hoist a *variable* number of rows
    /// (their distinct digits) and coverage accumulates orbit
    /// *cardinalities*, keeping the statistics exact for the full space.
    fn attract(&mut self) {
        self.undecided.clear();
        self.undecided.resize(self.words, u64::MAX);
        let tail = self.orbits - (self.words - 1) * 64;
        if tail < 64 {
            self.undecided[self.words - 1] = !0u64 << (64 - tail);
        }
        let mut frontier = std::mem::take(&mut self.frontier);
        frontier.clear();
        frontier.extend(self.safe.iter_ones().map(|o| o as u32));
        let mut covered = 0u64;
        for &o in &frontier {
            self.time[o as usize] = 0;
            self.undecided[o as usize / 64] &= !(1u64 << (63 - (o as usize % 64)));
            covered += self.sizes[o as usize];
        }
        self.worst_time = 0;
        let mut next = std::mem::take(&mut self.next);
        let mut rows = std::mem::take(&mut self.rows);
        let mut row_off = std::mem::take(&mut self.row_off);
        let mut live = std::mem::take(&mut self.live);
        next.clear();
        live.clear();
        live.extend(0..self.words as u32);
        let h = self.honest.len();
        let words = self.words;
        let mut t = 0u32;
        while !frontier.is_empty() {
            live.retain(|&w| self.undecided[w as usize] != 0);
            if live.is_empty() {
                break;
            }
            // Hoist each frontier member's predecessor rows — its distinct
            // digits — once per layer.
            rows.clear();
            row_off.clear();
            row_off.push(0);
            for &s in &frontier {
                let rep = &self.reps[s as usize * h..(s as usize + 1) * h];
                let mut prev = usize::MAX;
                for &d in rep {
                    let d = d as usize;
                    if d != prev {
                        rows.push(d * words);
                        prev = d;
                    }
                }
                row_off.push(rows.len() as u32);
            }
            for &w in &live {
                let w = w as usize;
                for k in 0..frontier.len() {
                    let mut acc = self.undecided[w];
                    if acc == 0 {
                        break;
                    }
                    for &row in &rows[row_off[k] as usize..row_off[k + 1] as usize] {
                        acc &= self.pred[row + w];
                        if acc == 0 {
                            break;
                        }
                    }
                    while acc != 0 {
                        let lead = acc.leading_zeros() as usize;
                        let bit = 1u64 << (63 - lead);
                        acc &= !bit;
                        let o = w * 64 + lead;
                        self.cnt[o] -= 1;
                        if self.cnt[o] == 0 {
                            self.time[o] = t + 1;
                            self.undecided[w] &= !bit;
                            covered += self.sizes[o];
                            next.push(o as u32);
                        }
                    }
                }
            }
            if !next.is_empty() {
                self.worst_time = u64::from(t + 1);
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
            t += 1;
        }
        self.covered = covered as usize;
        self.frontier = frontier;
        self.next = next;
        self.rows = rows;
        self.row_off = row_off;
        self.live = live;
    }

    /// Decodes full configuration `e` into per-honest-position states.
    fn config_digits(&self, e: usize) -> Vec<u8> {
        let mut digits = vec![0u8; self.honest.len()];
        let mut rest = e;
        for d in digits.iter_mut() {
            *d = (rest % self.x) as u8;
            rest /= self.x;
        }
        digits
    }

    /// Whether the attractor decided the *orbit* of the given full-space
    /// digit vector (`scratch` receives the sorted copy).
    fn decided_config(&self, digits: &[u8], scratch: &mut [u8]) -> bool {
        scratch.copy_from_slice(digits);
        scratch.sort_unstable();
        self.time[self.rank(scratch)] != UNDECIDED
    }

    /// Extracts a lasso-shaped non-stabilising execution, mapped back from
    /// the quotient to the **full** configuration space so the emitted
    /// witness is byte-identical to [`crate::game::Solver::extract_witness`]'s
    /// (and the reference checker's): the walk starts at the numerically
    /// lowest stuck configuration, always follows the lowest stuck
    /// successor, and realises each honest transition with the first
    /// Byzantine combo in mixed-radix order. Decidedness is orbit-invariant
    /// (the full solver's `time` is constant on orbits), so querying the
    /// quotient's `time` through the orbit rank reproduces the full walk
    /// exactly.
    pub(crate) fn extract_witness(&self, lut: &LutCounter) -> Option<Witness> {
        let spec = lut.spec();
        let h = self.honest.len();
        let x = self.x;
        // Lowest stuck configuration = min over stuck orbits of the
        // orbit's lowest member, which places its largest digits at the
        // lowest (least-weighted… highest-radix) positions: Horner over
        // the ascending representative puts digit 0 at weight x^{h−1}.
        let mut start: Option<usize> = None;
        for o in 0..self.orbits {
            if self.time[o] != UNDECIDED {
                continue;
            }
            let rep = &self.reps[o * h..(o + 1) * h];
            let e = rep.iter().fold(0usize, |acc, &d| acc * x + d as usize);
            if start.is_none_or(|s| e < s) {
                start = Some(e);
            }
        }
        let start = start?;
        let mut sorted = vec![0u8; h];
        let mut configs: Vec<usize> = vec![start];
        let mut byz: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut visited: HashMap<usize, usize> = HashMap::new();
        visited.insert(start, 0);
        let mut current = start;
        let cycle_start;
        loop {
            let next = self
                .first_stuck_successor(current, &mut sorted)
                .expect("stuck configuration without stuck successor");
            let digits = self.config_digits(current);
            let target = self.config_digits(next);
            let base: usize = digits
                .iter()
                .zip(&self.pow_h)
                .map(|(&d, &p)| d as usize * p)
                .sum();
            let mut step: Vec<Vec<u8>> = Vec::with_capacity(h);
            for (hi, &node) in self.honest.iter().enumerate() {
                let row = &spec.transition[node];
                let combo = (0..self.combos)
                    .find(|&combo| {
                        let mut idx = base;
                        let mut rest = combo;
                        for &p in &self.pow_f {
                            idx += (rest % self.x) * p;
                            rest /= self.x;
                        }
                        row[idx] == target[hi]
                    })
                    .expect("successor state must be realisable");
                let mut values = Vec::with_capacity(self.faulty.len());
                let mut rest = combo;
                for _ in &self.faulty {
                    values.push((rest % self.x) as u8);
                    rest /= self.x;
                }
                step.push(values);
            }
            byz.push(step);
            configs.push(next);
            if let Some(&at) = visited.get(&next) {
                cycle_start = at;
                break;
            }
            visited.insert(next, configs.len() - 1);
            current = next;
        }
        Some(Witness {
            honest: self.honest.clone(),
            fault_set: self.faulty.clone(),
            configs: configs.into_iter().map(|e| self.config_digits(e)).collect(),
            byz,
            cycle_start,
        })
    }

    /// First full-space successor of `e` (ascending) whose orbit is stuck —
    /// the quotient's replacement for the full solver's escape search: the
    /// successor mask is shared by every position, so the product odometer
    /// runs over `h` copies of one mask.
    fn first_stuck_successor(&self, e: usize, sorted: &mut [u8]) -> Option<usize> {
        let h = self.honest.len();
        sorted.copy_from_slice(&self.config_digits(e));
        sorted.sort_unstable();
        let m = self.masks[self.rank(sorted)];
        let low = m.trailing_zeros() as usize;
        let mut current = [0u8; 64];
        let mut succ = 0usize;
        for i in 0..h {
            current[i] = low as u8;
            succ += low * self.xpow[i];
        }
        loop {
            if !self.decided_config(&current[..h], sorted) {
                return Some(succ);
            }
            let mut i = 0;
            loop {
                if i == h {
                    return None;
                }
                let cur = current[i] as usize;
                let rest = if cur + 1 < 64 { m >> (cur + 1) } else { 0 };
                if rest != 0 {
                    let nxt = cur + 1 + rest.trailing_zeros() as usize;
                    current[i] = nxt as u8;
                    succ += (nxt - cur) * self.xpow[i];
                    break;
                }
                current[i] = low as u8;
                succ -= (cur - low) * self.xpow[i];
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::LutSpec;

    /// A symmetric (exchangeable) table: next state = f(multiset of
    /// received states), here the sum of received states mod x.
    fn symmetric_lut(n: usize, f: usize, x: u8) -> LutCounter {
        let rows = (x as usize).pow(n as u32);
        let table: Vec<u8> = (0..rows)
            .map(|r| {
                let mut rest = r;
                let mut sum = 0usize;
                for _ in 0..n {
                    sum += rest % x as usize;
                    rest /= x as usize;
                }
                (sum % x as usize) as u8
            })
            .collect();
        LutCounter::new(LutSpec {
            n,
            f,
            c: 2,
            states: x,
            transition: vec![table; n],
            output: vec![(0..x).map(|s| u64::from(s) % 2).collect(); n],
            stabilization_bound: 0,
        })
        .unwrap()
    }

    #[test]
    fn exchangeability_detects_symmetric_and_rejects_positional_tables() {
        assert!(exchangeable(&symmetric_lut(3, 0, 3)));
        // Follow node 0: identical tables, but positional.
        let row: Vec<u8> = (0..8).map(|r| (r % 2) as u8).collect();
        let follow = LutCounter::new(LutSpec {
            n: 3,
            f: 0,
            c: 2,
            states: 2,
            transition: vec![row.clone(), row.clone(), row],
            output: vec![vec![0, 1]; 3],
            stabilization_bound: 0,
        })
        .unwrap();
        assert!(!exchangeable(&follow));
        // Distinct tables are never exchangeable.
        let mut spec = symmetric_lut(3, 0, 2).spec().clone();
        spec.transition[2][0] ^= 1;
        assert!(!exchangeable(&LutCounter::new(spec).unwrap()));
    }

    #[test]
    fn colex_odometer_enumerates_ranks_in_order() {
        // Build a tiny instance and confirm rank(rep(o)) == o for all o.
        let lut = symmetric_lut(4, 1, 3);
        let mut solver = OrbitSolver::default();
        solver.run(&lut, &[1]).unwrap();
        let h = solver.honest.len();
        assert_eq!(solver.orbits, binomial(3 + h - 1, h) as usize);
        for o in 0..solver.orbits {
            let rep = &solver.reps[o * h..(o + 1) * h];
            assert!(rep.windows(2).all(|w| w[0] <= w[1]), "rep not sorted");
            assert_eq!(solver.rank(rep), o, "rank disagrees with build order");
        }
        // Cardinalities partition the full space.
        assert_eq!(solver.sizes.iter().sum::<u64>(), solver.configs as u64);
    }

    #[test]
    fn binomial_matches_pascal() {
        assert_eq!(binomial(0, 0), 1);
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(20, 5), 15504);
        assert_eq!(binomial(3, 7), 0);
    }
}
