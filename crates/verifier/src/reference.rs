//! The retained first-generation checker: enumerate-everything, with the
//! seed exploration limits.
//!
//! This is the pre-bitset implementation kept verbatim as the equivalence
//! oracle: it materialises per-configuration successor lists (`Vec<u32>`
//! per configuration), runs the greatest fixed point and the attractor as
//! repeated full sweeps, and rebuilds the full received vector once per
//! (node, Byzantine combo). The cross-check proptest in
//! `tests/verifier_cross.rs` asserts that [`crate::verify`] returns
//! bitwise-identical [`Verdict`]s — times, fault sets, and witnesses — on
//! random small instances, and the `throughput` bench's verifier table
//! measures the bitset core's speedup against this path.
//!
//! Do not optimise this module; its value is being the old semantics.

use std::collections::HashMap;

use sc_core::LutCounter;
use sc_protocol::ParamError;
use sc_sim::RoundWorkspace;

use crate::checker::{AnalysisSummary, FaultSets, Verdict, Witness};

/// The seed exploration limits (the bitset core raises both).
const MAX_CONFIGS: usize = 1 << 14;
const MAX_BYZ_COMBOS: usize = 1 << 10;

/// [`crate::verify`], as the first-generation checker computed it.
///
/// # Errors
///
/// Returns [`ParamError`] when the instance exceeds the *seed* exploration
/// limits (`|X|^{n−|F|} > 2^14` configurations or `|X|^{|F|} > 2^10`
/// Byzantine combinations).
pub fn verify(lut: &LutCounter) -> Result<Verdict, ParamError> {
    let summary = analyze(lut)?;
    match summary.failure {
        None => Ok(Verdict::Stabilizes {
            worst_case_time: summary.worst_time,
        }),
        Some((fault_set, stuck_configs)) => {
            let analysis = FaultSetAnalysis::run(lut, &fault_set)?;
            let witness = analysis
                .extract_witness(lut, &fault_set)
                .expect("a failing fault set yields a witness");
            Ok(Verdict::Fails {
                fault_set,
                stuck_configs,
                witness,
            })
        }
    }
}

/// [`crate::analyze`], as the first-generation checker computed it.
///
/// # Errors
///
/// Returns [`ParamError`] when the instance exceeds the seed exploration
/// limits.
pub fn analyze(lut: &LutCounter) -> Result<AnalysisSummary, ParamError> {
    let spec = lut.spec();
    let mut worst = 0u64;
    let mut covered = 0usize;
    let mut total = 0usize;
    let mut failure: Option<(Vec<usize>, usize)> = None;
    for fault_set in FaultSets::new(spec.n, spec.f) {
        let analysis = FaultSetAnalysis::run(lut, &fault_set)?;
        total += analysis.configs;
        covered += analysis.covered;
        if analysis.covered == analysis.configs {
            worst = worst.max(analysis.worst_time);
        } else if failure.is_none() {
            failure = Some((fault_set, analysis.configs - analysis.covered));
        }
    }
    Ok(AnalysisSummary {
        worst_time: worst,
        coverage: covered as f64 / total as f64,
        failure,
    })
}

/// Verification of one fault set, keeping the exploration data for witness
/// extraction.
struct FaultSetAnalysis {
    honest: Vec<usize>,
    x: usize,
    combos: usize,
    configs: usize,
    covered: usize,
    worst_time: u64,
    successors: Vec<Vec<u32>>,
    time: Vec<Option<u64>>,
}

impl FaultSetAnalysis {
    /// Decodes configuration index `e` into per-honest-node states.
    fn digits(&self, e: usize) -> Vec<u8> {
        let mut digits = vec![0u8; self.honest.len()];
        let mut rest = e;
        for d in digits.iter_mut() {
            *d = (rest % self.x) as u8;
            rest /= self.x;
        }
        digits
    }

    fn run(lut: &LutCounter, faulty: &[usize]) -> Result<Self, ParamError> {
        let spec = lut.spec();
        let x = spec.states as usize;
        let honest: Vec<usize> = (0..spec.n).filter(|v| !faulty.contains(v)).collect();
        let h = honest.len();
        let configs = x
            .checked_pow(h as u32)
            .filter(|&c| c <= MAX_CONFIGS)
            .ok_or_else(|| ParamError::overflow(format!("|X|^h = {x}^{h}")))?;
        let combos = x
            .checked_pow(faulty.len() as u32)
            .filter(|&c| c <= MAX_BYZ_COMBOS)
            .ok_or_else(|| ParamError::overflow(format!("|X|^|F| = {x}^{}", faulty.len())))?;

        let mut analysis = FaultSetAnalysis {
            honest,
            x,
            combos,
            configs,
            covered: 0,
            worst_time: 0,
            successors: Vec::with_capacity(configs),
            time: Vec::new(),
        };

        // Per configuration: the next-state set of every honest node, then
        // the deduplicated successor-configuration list.
        let mut workspace: RoundWorkspace<u8> = RoundWorkspace::with_capacity(0, spec.n);
        let mut agreed: Vec<Option<u64>> = Vec::with_capacity(configs);
        for e in 0..configs {
            let digits = analysis.digits(e);

            // Output agreement at e.
            let first_out = lut.output(analysis.honest[0], digits[0]);
            let agree = analysis
                .honest
                .iter()
                .zip(&digits)
                .all(|(&v, &s)| lut.output(v, s) == first_out);
            agreed.push(agree.then_some(first_out));

            // Next-state sets under all Byzantine combinations.
            let h = analysis.honest.len();
            let mut next_sets: Vec<Vec<u8>> = Vec::with_capacity(h);
            for &i in &analysis.honest {
                let mut mask = 0u64;
                for combo in 0..combos {
                    analysis.fill_received(lut, faulty, &digits, combo, &mut workspace);
                    mask |= 1u64 << lut.next(i, &workspace.scratch);
                }
                next_sets.push((0..x as u8).filter(|&s| mask >> s & 1 == 1).collect());
            }

            // Product of the next-state sets, as configuration indices.
            let mut succ = Vec::new();
            let mut choice = vec![0usize; h];
            loop {
                let mut index = 0usize;
                for d in (0..h).rev() {
                    index = index * x + next_sets[d][choice[d]] as usize;
                }
                succ.push(index as u32);
                let mut d = 0;
                loop {
                    if d == h {
                        break;
                    }
                    choice[d] += 1;
                    if choice[d] < next_sets[d].len() {
                        break;
                    }
                    choice[d] = 0;
                    d += 1;
                }
                if d == h {
                    break;
                }
            }
            succ.sort_unstable();
            succ.dedup();
            analysis.successors.push(succ);
        }

        // Greatest fixed point: the safe set of configurations from which
        // counting is guaranteed forever.
        let c = spec.c;
        let mut safe: Vec<bool> = agreed.iter().map(Option::is_some).collect();
        loop {
            let mut changed = false;
            for e in 0..configs {
                if !safe[e] {
                    continue;
                }
                let out = agreed[e].expect("safe ⊆ agreed");
                let expect = (out + 1) % c;
                let ok = analysis.successors[e]
                    .iter()
                    .all(|&s| safe[s as usize] && agreed[s as usize] == Some(expect));
                if !ok {
                    safe[e] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Attractor layering: t(e) = 0 on the safe set, otherwise
        // 1 + max over successors (the adversary maximises).
        let mut time: Vec<Option<u64>> = safe
            .iter()
            .map(|&s| if s { Some(0) } else { None })
            .collect();
        loop {
            let mut changed = false;
            for e in 0..configs {
                if time[e].is_some() {
                    continue;
                }
                let mut worst_succ = 0u64;
                let mut all_known = true;
                for &s in &analysis.successors[e] {
                    match time[s as usize] {
                        Some(t) => worst_succ = worst_succ.max(t),
                        None => {
                            all_known = false;
                            break;
                        }
                    }
                }
                if all_known {
                    time[e] = Some(worst_succ + 1);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        analysis.covered = time.iter().filter(|t| t.is_some()).count();
        analysis.worst_time = time.iter().flatten().copied().max().unwrap_or(0);
        analysis.time = time;
        Ok(analysis)
    }

    /// Builds the full received vector for honest digits + Byzantine combo
    /// in the workspace's scratch buffer (no allocation after first use).
    fn fill_received(
        &self,
        lut: &LutCounter,
        faulty: &[usize],
        digits: &[u8],
        combo: usize,
        workspace: &mut RoundWorkspace<u8>,
    ) {
        let received = &mut workspace.scratch;
        received.clear();
        received.resize(lut.spec().n, 0);
        for (hi, &hv) in self.honest.iter().enumerate() {
            received[hv] = digits[hi];
        }
        let mut c = combo;
        for &fv in faulty {
            received[fv] = (c % self.x) as u8;
            c /= self.x;
        }
    }

    /// Extracts a lasso-shaped non-stabilising execution from the stuck
    /// region, including the Byzantine values realising every transition.
    fn extract_witness(&self, lut: &LutCounter, faulty: &[usize]) -> Option<Witness> {
        let mut workspace: RoundWorkspace<u8> = RoundWorkspace::with_capacity(0, lut.spec().n);
        let start = (0..self.configs).find(|&e| self.time[e].is_none())?;
        let mut configs: Vec<usize> = vec![start];
        let mut byz: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut visited: HashMap<usize, usize> = HashMap::new();
        visited.insert(start, 0);
        let mut current = start;
        let cycle_start;
        loop {
            // A stuck configuration always has a stuck successor (otherwise
            // the attractor pass would have assigned it a time).
            let next = *self.successors[current]
                .iter()
                .find(|&&s| self.time[s as usize].is_none())
                .expect("stuck configuration without stuck successor")
                as usize;
            // For every honest node find a Byzantine combo realising its
            // next state, and record the per-faulty-node values.
            let digits = self.digits(current);
            let target = self.digits(next);
            let mut step: Vec<Vec<u8>> = Vec::with_capacity(self.honest.len());
            for (hi, &i) in self.honest.iter().enumerate() {
                let combo = (0..self.combos)
                    .find(|&combo| {
                        self.fill_received(lut, faulty, &digits, combo, &mut workspace);
                        lut.next(i, &workspace.scratch) == target[hi]
                    })
                    .expect("successor state must be realisable");
                let mut values = Vec::with_capacity(faulty.len());
                let mut c = combo;
                for _ in faulty {
                    values.push((c % self.x) as u8);
                    c /= self.x;
                }
                step.push(values);
            }
            byz.push(step);
            configs.push(next);
            if let Some(&at) = visited.get(&next) {
                cycle_start = at;
                break;
            }
            visited.insert(next, configs.len() - 1);
            current = next;
        }
        Some(Witness {
            honest: self.honest.clone(),
            fault_set: faulty.to_vec(),
            configs: configs.into_iter().map(|e| self.digits(e)).collect(),
            byz,
            cycle_start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::LutSpec;

    /// The seed limits still apply to this path: 16 states on 4 nodes is
    /// rejected here (and decided by the bitset core — see the checker
    /// tests).
    #[test]
    fn seed_limits_still_enforced_on_reference_path() {
        let rows = vec![0u8; 65536];
        let output: Vec<u64> = (0..16).map(|i| i % 2).collect();
        let spec = LutSpec {
            n: 4,
            f: 0,
            c: 2,
            states: 16,
            transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
            output: vec![output; 4],
            stabilization_bound: 0,
        };
        let big = LutCounter::new(spec).unwrap();
        assert!(verify(&big).is_err());
    }
}
