//! Sweep progress metering: position/total gauges, ledger mirrors and an
//! ETA for long [`sweep_family`](crate::sweep_family) campaigns, wired
//! through `sc-obs` when the `trace` cargo feature is on and compiled to
//! inlined no-ops when off.
//!
//! [`sweep_family_observed`] is the metered entry point: it slices a
//! budget into chunks and publishes the checkpoint's ledger into a
//! [`SweepObs`] after every chunk, so a campaign's progress and ETA read
//! live from another thread while the sweep runs. The checkpoint it
//! advances is bitwise identical to one plain `sweep_family` call with
//! the same budget (pinned by `tests/sweep_progress.rs`).

use crate::checker::Analyzer;
use crate::synthesis::{CandidateFilter, SweepCheckpoint, SweepOutcome, SymmetricFamily};
use sc_protocol::ParamError;

#[cfg(feature = "trace")]
pub use real::SweepObs;

#[cfg(not(feature = "trace"))]
pub use noop::SweepObs;

#[cfg(feature = "trace")]
mod real {
    use std::fmt;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    use sc_obs::{GaugeCell, MetricsSnapshot, Registry};

    use crate::synthesis::SweepCheckpoint;

    struct Inner {
        registry: Registry,
        position: Arc<GaugeCell>,
        total: Arc<GaugeCell>,
        eta_ms: Arc<GaugeCell>,
        started: Instant,
        /// Position at the first update, so the rate measures *this*
        /// session's work, not rounds resumed from a checkpoint.
        start_position: AtomicU64,
    }

    const START_UNSET: u64 = u64::MAX;

    /// Sweep progress bundle (`trace` feature on). Default instances are
    /// *detached* — every call is a `None` check — and
    /// [`SweepObs::recording`] attaches live gauges.
    #[derive(Clone, Default)]
    pub struct SweepObs {
        inner: Option<Arc<Inner>>,
    }

    impl SweepObs {
        /// An attached bundle with live gauges.
        pub fn recording() -> SweepObs {
            let registry = Registry::new();
            SweepObs {
                inner: Some(Arc::new(Inner {
                    position: registry.gauge("sweep.position"),
                    total: registry.gauge("sweep.total"),
                    eta_ms: registry.gauge("sweep.eta_ms"),
                    registry,
                    started: Instant::now(),
                    start_position: AtomicU64::new(START_UNSET),
                })),
            }
        }

        /// Whether this bundle records anything.
        pub fn is_recording(&self) -> bool {
            self.inner.is_some()
        }

        /// Publishes the checkpoint's position and ledger, and derives
        /// the ETA from this session's processing rate.
        pub fn update(&self, checkpoint: &SweepCheckpoint, total: u64) {
            let Some(inner) = &self.inner else {
                return;
            };
            let position = checkpoint.position;
            // First update pins the session baseline (racing recorders
            // agree on "earliest wins" via compare_exchange).
            let _ = inner.start_position.compare_exchange(
                START_UNSET,
                position,
                Ordering::AcqRel,
                Ordering::Acquire,
            );
            inner.position.set(position as i64);
            inner.total.set(total as i64);
            let ledger = &checkpoint.ledger;
            inner
                .registry
                .gauge("sweep.screened")
                .set(ledger.screened as i64);
            inner
                .registry
                .gauge("sweep.filtered")
                .set(ledger.filtered as i64);
            inner
                .registry
                .gauge("sweep.survivors")
                .set(ledger.survivors as i64);
            inner
                .registry
                .gauge("sweep.verified")
                .set(ledger.verified as i64);
            inner.registry.gauge("sweep.found").set(ledger.found as i64);
            inner.eta_ms.set(match self.eta_ms_at(position, total) {
                Some(ms) => ms as i64,
                None => -1,
            });
        }

        fn eta_ms_at(&self, position: u64, total: u64) -> Option<u64> {
            let inner = self.inner.as_ref()?;
            let baseline = inner.start_position.load(Ordering::Acquire);
            if baseline == START_UNSET || position <= baseline {
                return None;
            }
            let done = position - baseline;
            let elapsed_ms = inner.started.elapsed().as_millis() as u64;
            let remaining = total.saturating_sub(position);
            // remaining / (done / elapsed) without intermediate floats.
            Some(remaining.saturating_mul(elapsed_ms) / done)
        }

        /// Estimated milliseconds to finish, from this session's rate.
        /// `None` before the first processed candidate.
        pub fn eta_ms(&self) -> Option<u64> {
            let inner = self.inner.as_ref()?;
            let position = inner.position.get().max(0) as u64;
            let total = inner.total.get().max(0) as u64;
            self.eta_ms_at(position, total)
        }

        /// `(position, total)` as last published.
        pub fn progress(&self) -> (u64, u64) {
            self.inner.as_ref().map_or((0, 0), |i| {
                (i.position.get().max(0) as u64, i.total.get().max(0) as u64)
            })
        }

        /// Snapshot of the gauges.
        pub fn metrics(&self) -> Option<MetricsSnapshot> {
            self.inner.as_ref().map(|i| i.registry.snapshot())
        }
    }

    impl fmt::Debug for SweepObs {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match &self.inner {
                Some(_) => {
                    let (position, total) = self.progress();
                    write!(f, "SweepObs(recording, {position}/{total})")
                }
                None => write!(f, "SweepObs(detached)"),
            }
        }
    }
}

#[cfg(not(feature = "trace"))]
mod noop {
    use crate::synthesis::SweepCheckpoint;

    /// Sweep progress bundle (`trace` feature off): a ZST whose every
    /// method is an inlined empty body.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct SweepObs;

    impl SweepObs {
        /// A no-op bundle (the `trace` feature is off).
        pub fn recording() -> SweepObs {
            SweepObs
        }

        /// Always `false` without the `trace` feature.
        #[inline(always)]
        pub fn is_recording(&self) -> bool {
            false
        }

        /// No-op.
        #[inline(always)]
        pub fn update(&self, _checkpoint: &SweepCheckpoint, _total: u64) {}

        /// Always `None` without the `trace` feature.
        #[inline(always)]
        pub fn eta_ms(&self) -> Option<u64> {
            None
        }

        /// Always `(0, 0)` without the `trace` feature.
        #[inline(always)]
        pub fn progress(&self) -> (u64, u64) {
            (0, 0)
        }
    }
}

/// Candidates per metered chunk: frequent enough for a live progress
/// read, coarse enough that gauge updates are noise next to screening.
const OBSERVED_CHUNK: u64 = 256;

/// [`sweep_family`](crate::sweep_family) with live progress: the budget
/// is processed in 256-candidate chunks (`OBSERVED_CHUNK`) and `obs` is
/// updated after each, so position, ledger mirrors and ETA read live
/// while the sweep runs. The checkpoint advance is bitwise identical to
/// one un-metered call with the same budget.
///
/// # Errors
///
/// Exactly [`sweep_family`](crate::sweep_family)'s: enumeration overflow
/// or an instance-shape rejection, with the checkpoint left at the
/// failing candidate (the gauges reflect the last completed chunk).
#[cfg(feature = "parallel")]
pub fn sweep_family_observed<F: CandidateFilter + Send + Sync>(
    family: &SymmetricFamily,
    filter: &mut F,
    analyzer: &mut Analyzer,
    checkpoint: &mut SweepCheckpoint,
    budget: u64,
    obs: &SweepObs,
) -> Result<SweepOutcome, ParamError> {
    let total = family
        .len()
        .ok_or_else(|| ParamError::overflow("|X|^classes candidates"))?;
    let end = checkpoint.position.saturating_add(budget).min(total);
    obs.update(checkpoint, total);
    let mut processed = 0u64;
    while checkpoint.position < end {
        let slice = (end - checkpoint.position).min(OBSERVED_CHUNK);
        let outcome = crate::sweep_family(family, filter, analyzer, checkpoint, slice)?;
        processed += outcome.processed;
        obs.update(checkpoint, total);
        if outcome.processed == 0 {
            break;
        }
    }
    Ok(SweepOutcome {
        complete: checkpoint.position == total,
        processed,
    })
}

/// [`sweep_family_observed`], single-threaded build (the `parallel`
/// feature is off).
#[cfg(not(feature = "parallel"))]
pub fn sweep_family_observed<F: CandidateFilter>(
    family: &SymmetricFamily,
    filter: &mut F,
    analyzer: &mut Analyzer,
    checkpoint: &mut SweepCheckpoint,
    budget: u64,
    obs: &SweepObs,
) -> Result<SweepOutcome, ParamError> {
    let total = family
        .len()
        .ok_or_else(|| ParamError::overflow("|X|^classes candidates"))?;
    let end = checkpoint.position.saturating_add(budget).min(total);
    obs.update(checkpoint, total);
    let mut processed = 0u64;
    while checkpoint.position < end {
        let slice = (end - checkpoint.position).min(OBSERVED_CHUNK);
        let outcome = crate::sweep_family(family, filter, analyzer, checkpoint, slice)?;
        processed += outcome.processed;
        obs.update(checkpoint, total);
        if outcome.processed == 0 {
            break;
        }
    }
    Ok(SweepOutcome {
        complete: checkpoint.position == total,
        processed,
    })
}
