//! Exhaustive verification and synthesis of small synchronous counters.
//!
//! §1 of *Towards Optimal Synchronous Counting* observes that for small
//! parameters "the synchronous counting problem is amenable to algorithm
//! synthesis": the companion works [4, 5] used computers to design
//! space-optimal algorithms such as a 3-state counter for `n ≥ 4, f = 1`.
//! This crate rebuilds that pipeline:
//!
//! * [`verify`] — an exact model checker for [`LutCounter`](sc_core::LutCounter)s: for **every**
//!   fault set `F` (`|F| ≤ f`) it explores the full configuration space
//!   under **all** Byzantine behaviours (per-receiver equivocation included)
//!   and decides whether every execution stabilises, returning the exact
//!   worst-case stabilisation time. The published tables of [4, 5] are not
//!   reproduced in the paper, so exact re-verification of *their*
//!   algorithms is out of scope — but any candidate table can be checked
//!   here.
//! * [`analyze`] — the same exploration without witness extraction,
//!   aggregated into an [`AnalysisSummary`]; this is the scoring function
//!   of the synthesiser and the workload of the `throughput` bench's
//!   verifier table.
//! * [`synthesize`] — a budgeted stochastic local search over transition
//!   tables, scored by the verifier's attractor coverage. It easily finds
//!   correct fault-free counters and serves as the experiment harness for
//!   E7; SAT-grade synthesis for `n = 4, f = 1` (which took considerable
//!   computation in \[5\]) is outside a unit-test budget.
//! * [`mod@reference`] — the retained first-generation checker (successor
//!   lists, full sweeps, seed limits), kept as the bitwise-equivalence
//!   oracle for the cross-check tests and the bench baseline.
//!
//! # How verification works
//!
//! Fix a fault set `F`. A *configuration* assigns a state to every correct
//! node (the paper's `π_F` projection). The checker solves a safety game on
//! a compact bitset representation:
//!
//! * **Successor masks.** For each correct node `i` the set of possible
//!   next states `S_i(e)` is one 64-bit mask (bit `σ` ⇔ some Byzantine
//!   assignment to the `F`-coordinates drives `i` to `σ`); the successors
//!   of `e` are the product `∏ S_i(e)` (per-receiver independence —
//!   Byzantine nodes may send different states to different receivers).
//!   The product is **never materialised**: where a successor walk is
//!   needed at all, a mixed-radix odometer over set bits enumerates it
//!   lazily, in ascending order, with early exit. The masks are filled by
//!   an **incremental** Byzantine loop: the LUT row index is shared by all
//!   receivers and maintained under a mixed-radix combo increment —
//!   amortised O(1) faulty positions touched per combination, no received
//!   vector ever built.
//! * **Safe set** (greatest fixed point): the largest set of
//!   configurations from which counting is guaranteed forever. Seeded by
//!   the factored per-node check "every successor outputs
//!   `out(e) + 1 mod c`" (`S_i(e) ⊆ h_i⁻¹(expect)`, a two-word mask test),
//!   then refined by a **worklist**: a removal scans the removed
//!   configuration's predecessors — the word-wise intersection of
//!   per-`(node, state)` predecessor bitsets — and each escaping
//!   predecessor is removed exactly once. No full sweeps.
//! * **Attractor layering**: `A_0` = safe set; a configuration is decided
//!   at time `t + 1` the moment its **counter** of undecided successors
//!   (`∏ |S_i(e)|`) drops to zero, its last successor having been decided
//!   at `t`. Each configuration is re-examined only when one of its
//!   successors changes. If the layers cover the whole space, the
//!   algorithm is a self-stabilising counter with worst-case stabilisation
//!   time = the deepest layer; otherwise the uncovered configurations
//!   witness an adversary strategy that prevents stabilisation forever,
//!   and a lasso-shaped [`Witness`] execution is extracted from the masks.
//!
//! The representation decides `2^20` configurations × `2^14` Byzantine
//! combinations per fault set (the first-generation checker stopped at
//! `2^14` / `2^10`), and independent fault sets fan out across threads
//! behind the `parallel` feature (on by default).
//!
//! # The orbit quotient and the synthesis campaign
//!
//! For **exchangeable** tables — identical per-node tables, invariant
//! under permuting received positions — the whole game factors through
//! multisets of honest states, and [`Analyzer`] (in the default
//! [`SolverMode::Auto`]) solves it over `C(|X|+h−1, h)` *orbits* instead
//! of `|X|^h` configurations, with bitwise-identical summaries, verdicts
//! and witnesses (see [`mod@reference`]'s successor, the retained full
//! solver, and the `tests/quotient_cross.rs` equivalence gate). Fault
//! sets of equal size play isomorphic games on such tables, so
//! [`Analyzer::dedup_fault_sets`] solves one representative per size with
//! multiplicity `C(n, k)`. On top, [`sweep_family`] drives a declared
//! [`SymmetricFamily`] of exchangeable candidates through a reject-only
//! [`CandidateFilter`] (the library implementation is `sc_attack`'s
//! budgeted scripted-attack search) before the exhaustive pass, with an
//! auditable [`SweepLedger`] and a codec-serialised [`SweepCheckpoint`]
//! for mid-sweep resume. Together these push exhaustive synthesis sweeps
//! to `n = 5`.
//!
//! # Example
//!
//! ```
//! use sc_core::{LutCounter, LutSpec};
//! use sc_verifier::{verify, Verdict};
//!
//! // The trivial 2-counter as a table: one node, two states.
//! let lut = LutCounter::new(LutSpec {
//!     n: 1,
//!     f: 0,
//!     c: 2,
//!     states: 2,
//!     transition: vec![vec![1, 0]],
//!     output: vec![vec![0, 1]],
//!     stabilization_bound: 0,
//! })?;
//! assert_eq!(verify(&lut)?, Verdict::Stabilizes { worst_case_time: 0 });
//! # Ok::<(), sc_protocol::ParamError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod game;
mod orbit;
mod progress;
pub mod reference;
mod synthesis;

pub use checker::{analyze, verify, AnalysisSummary, Analyzer, SolverMode, Verdict, Witness};
pub use progress::{sweep_family_observed, SweepObs};
#[cfg(feature = "parallel")]
pub use synthesis::sweep_family_on;
pub use synthesis::{
    sweep_family, synthesize, CandidateFilter, NoFilter, SweepCheckpoint, SweepLedger,
    SweepOutcome, SymmetricFamily, SynthesisOutcome, SynthesisReport,
};
