//! Exhaustive verification and synthesis of small synchronous counters.
//!
//! §1 of *Towards Optimal Synchronous Counting* observes that for small
//! parameters "the synchronous counting problem is amenable to algorithm
//! synthesis": the companion works [4, 5] used computers to design
//! space-optimal algorithms such as a 3-state counter for `n ≥ 4, f = 1`.
//! This crate rebuilds that pipeline:
//!
//! * [`verify`] — an exact model checker for [`LutCounter`](sc_core::LutCounter)s: for **every**
//!   fault set `F` (`|F| ≤ f`) it explores the full configuration space
//!   under **all** Byzantine behaviours (per-receiver equivocation included)
//!   and decides whether every execution stabilises, returning the exact
//!   worst-case stabilisation time. The published tables of [4, 5] are not
//!   reproduced in the paper, so exact re-verification of *their*
//!   algorithms is out of scope — but any candidate table can be checked
//!   here.
//! * [`synthesize`] — a budgeted stochastic local search over transition
//!   tables, scored by the verifier's attractor coverage. It easily finds
//!   correct fault-free counters and serves as the experiment harness for
//!   E7; SAT-grade synthesis for `n = 4, f = 1` (which took considerable
//!   computation in \[5\]) is outside a unit-test budget.
//!
//! # How verification works
//!
//! Fix a fault set `F`. A *configuration* assigns a state to every correct
//! node (the paper's `π_F` projection). For each correct node `i` the set of
//! possible next states `S_i(e)` is computed by enumerating every Byzantine
//! assignment to the `F`-coordinates of the received vector; the successors
//! of `e` are the product `∏ S_i(e)` (per-receiver independence — Byzantine
//! nodes may send different states to different receivers).
//!
//! * **Safe set** (greatest fixed point): start from all configurations
//!   whose outputs agree and repeatedly remove any configuration with a
//!   successor outside the set or whose successors fail to increment the
//!   common output modulo `c`. The result is the largest set from which
//!   counting is guaranteed forever.
//! * **Attractor layering**: `A_0` = safe set; `A_{j+1}` adds every
//!   configuration **all** of whose successors lie in `A_j`. If the layers
//!   cover the whole space, the algorithm is a self-stabilising counter with
//!   worst-case stabilisation time = the deepest layer; otherwise the
//!   uncovered configurations witness an adversary strategy that prevents
//!   stabilisation forever.
//!
//! # Example
//!
//! ```
//! use sc_core::{LutCounter, LutSpec};
//! use sc_verifier::{verify, Verdict};
//!
//! // The trivial 2-counter as a table: one node, two states.
//! let lut = LutCounter::new(LutSpec {
//!     n: 1,
//!     f: 0,
//!     c: 2,
//!     states: 2,
//!     transition: vec![vec![1, 0]],
//!     output: vec![vec![0, 1]],
//!     stabilization_bound: 0,
//! })?;
//! assert_eq!(verify(&lut)?, Verdict::Stabilizes { worst_case_time: 0 });
//! # Ok::<(), sc_protocol::ParamError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod synthesis;

pub use checker::{verify, Verdict, Witness};
pub use synthesis::{synthesize, SynthesisOutcome, SynthesisReport};
