//! The exact configuration-space model checker.

use std::collections::HashMap;

use sc_core::LutCounter;
use sc_protocol::ParamError;
use sc_sim::RoundWorkspace;

/// Outcome of exhaustively verifying a candidate counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every execution, for every fault set and every Byzantine behaviour,
    /// stabilises within `worst_case_time` rounds.
    Stabilizes {
        /// The exact worst-case stabilisation time.
        worst_case_time: u64,
    },
    /// Some adversary prevents stabilisation forever.
    Fails {
        /// A fault set witnessing the failure.
        fault_set: Vec<usize>,
        /// Number of configurations from which the adversary can avoid
        /// stabilisation indefinitely.
        stuck_configs: usize,
        /// A concrete non-stabilising execution, replayable on the
        /// simulator.
        witness: Witness,
    },
}

/// A concrete infinite non-stabilising execution in lasso form: a prefix of
/// configurations followed by a cycle, together with the exact Byzantine
/// values each correct node received at each step.
///
/// `configs[t+1]` is reached from `configs[t]` when faulty node
/// `fault_set[g]` sends state `byz[t][h][g]` to the `h`-th correct node;
/// the last configuration equals `configs[cycle_start]`, closing the loop.
/// The `replayable` test in `tests/witness_replay.rs` drives the simulator
/// with exactly this script and watches the algorithm fail forever.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// Correct nodes, in the order configurations are listed.
    pub honest: Vec<usize>,
    /// Faulty nodes, in the order Byzantine values are listed.
    pub fault_set: Vec<usize>,
    /// The configurations visited; the last equals `configs[cycle_start]`.
    pub configs: Vec<Vec<u8>>,
    /// `byz[t][h][g]`: value faulty node `g` sends to correct node `h` in
    /// step `t` (one entry per transition, `configs.len() − 1` in total).
    pub byz: Vec<Vec<Vec<u8>>>,
    /// Index at which the execution starts repeating.
    pub cycle_start: usize,
}

impl Witness {
    /// The Byzantine values to use at any round `t ≥ 0`, following the
    /// lasso: the prefix once, then the cycle forever.
    pub fn script_at(&self, t: u64) -> &Vec<Vec<u8>> {
        let steps = self.byz.len();
        let cycle = steps - self.cycle_start;
        let idx = if (t as usize) < steps {
            t as usize
        } else {
            self.cycle_start + ((t as usize - self.cycle_start) % cycle)
        };
        &self.byz[idx]
    }
}

/// Hard limits keeping exhaustive exploration tractable.
const MAX_CONFIGS: usize = 1 << 14;
const MAX_BYZ_COMBOS: usize = 1 << 10;

/// Exhaustively decides whether `lut` is a self-stabilising synchronous
/// `c`-counter with the resilience its spec claims, and computes the exact
/// worst-case stabilisation time (see the crate-level documentation for the
/// method). On failure, a replayable [`Witness`] execution is extracted.
///
/// # Errors
///
/// Returns [`ParamError`] when the instance exceeds the exploration limits
/// (`|X|^{n−|F|}` configurations or `|X|^{|F|}` Byzantine combinations per
/// node too large).
pub fn verify(lut: &LutCounter) -> Result<Verdict, ParamError> {
    let summary = analyze(lut)?;
    match summary.failure {
        None => Ok(Verdict::Stabilizes {
            worst_case_time: summary.worst_time,
        }),
        Some((fault_set, stuck_configs)) => {
            let analysis = FaultSetAnalysis::run(lut, &fault_set)?;
            let witness = analysis
                .extract_witness(lut, &fault_set)
                .expect("a failing fault set yields a witness");
            Ok(Verdict::Fails {
                fault_set,
                stuck_configs,
                witness,
            })
        }
    }
}

/// Aggregate result of checking every fault set, without the (expensive)
/// witness extraction — this is the synthesiser's scoring function.
#[derive(Clone, Debug)]
pub(crate) struct AnalysisSummary {
    /// Exact worst-case stabilisation time over fully-covered fault sets.
    pub worst_time: u64,
    /// Fraction of (fault set, configuration) pairs that stabilise.
    pub coverage: f64,
    /// First failing fault set, with its number of stuck configurations.
    pub failure: Option<(Vec<usize>, usize)>,
}

pub(crate) fn analyze(lut: &LutCounter) -> Result<AnalysisSummary, ParamError> {
    let spec = lut.spec();
    let mut worst = 0u64;
    let mut covered = 0usize;
    let mut total = 0usize;
    let mut failure: Option<(Vec<usize>, usize)> = None;
    for fault_set in fault_sets(spec.n, spec.f) {
        let analysis = FaultSetAnalysis::run(lut, &fault_set)?;
        total += analysis.configs;
        covered += analysis.covered;
        if analysis.covered == analysis.configs {
            worst = worst.max(analysis.worst_time);
        } else if failure.is_none() {
            failure = Some((fault_set.clone(), analysis.configs - analysis.covered));
        }
    }
    Ok(AnalysisSummary {
        worst_time: worst,
        coverage: covered as f64 / total as f64,
        failure,
    })
}

/// All subsets of `[n]` with at most `f` elements.
fn fault_sets(n: usize, f: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    fn recurse(
        n: usize,
        f: usize,
        start: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        out.push(current.clone());
        if current.len() == f {
            return;
        }
        for v in start..n {
            current.push(v);
            recurse(n, f, v + 1, current, out);
            current.pop();
        }
    }
    recurse(n, f, 0, &mut current, &mut out);
    out
}

/// Verification of one fault set, keeping the exploration data for witness
/// extraction.
struct FaultSetAnalysis {
    honest: Vec<usize>,
    x: usize,
    combos: usize,
    configs: usize,
    covered: usize,
    worst_time: u64,
    successors: Vec<Vec<u32>>,
    time: Vec<Option<u64>>,
}

impl FaultSetAnalysis {
    /// Decodes configuration index `e` into per-honest-node states.
    fn digits(&self, e: usize) -> Vec<u8> {
        let mut digits = vec![0u8; self.honest.len()];
        let mut rest = e;
        for d in digits.iter_mut() {
            *d = (rest % self.x) as u8;
            rest /= self.x;
        }
        digits
    }

    fn run(lut: &LutCounter, faulty: &[usize]) -> Result<Self, ParamError> {
        let spec = lut.spec();
        let x = spec.states as usize;
        let honest: Vec<usize> = (0..spec.n).filter(|v| !faulty.contains(v)).collect();
        let h = honest.len();
        let configs = x
            .checked_pow(h as u32)
            .filter(|&c| c <= MAX_CONFIGS)
            .ok_or_else(|| ParamError::overflow(format!("|X|^h = {x}^{h}")))?;
        let combos = x
            .checked_pow(faulty.len() as u32)
            .filter(|&c| c <= MAX_BYZ_COMBOS)
            .ok_or_else(|| ParamError::overflow(format!("|X|^|F| = {x}^{}", faulty.len())))?;

        let mut analysis = FaultSetAnalysis {
            honest,
            x,
            combos,
            configs,
            covered: 0,
            worst_time: 0,
            successors: Vec::with_capacity(configs),
            time: Vec::new(),
        };

        // Per configuration: the next-state set of every honest node, then
        // the deduplicated successor-configuration list.
        let mut workspace: RoundWorkspace<u8> = RoundWorkspace::with_capacity(0, spec.n);
        let mut agreed: Vec<Option<u64>> = Vec::with_capacity(configs);
        for e in 0..configs {
            let digits = analysis.digits(e);

            // Output agreement at e.
            let first_out = lut.output(analysis.honest[0], digits[0]);
            let agree = analysis
                .honest
                .iter()
                .zip(&digits)
                .all(|(&v, &s)| lut.output(v, s) == first_out);
            agreed.push(agree.then_some(first_out));

            // Next-state sets under all Byzantine combinations. The
            // received vector is materialised in the shared round
            // workspace's scratch buffer — one allocation for the whole
            // exploration instead of one per (node, combination).
            let h = analysis.honest.len();
            let mut next_sets: Vec<Vec<u8>> = Vec::with_capacity(h);
            for &i in &analysis.honest {
                let mut mask = 0u64;
                for combo in 0..combos {
                    analysis.fill_received(lut, faulty, &digits, combo, &mut workspace);
                    mask |= 1u64 << lut.next(i, &workspace.scratch);
                }
                next_sets.push((0..x as u8).filter(|&s| mask >> s & 1 == 1).collect());
            }

            // Product of the next-state sets, as configuration indices.
            let mut succ = Vec::new();
            let mut choice = vec![0usize; h];
            loop {
                let mut index = 0usize;
                for d in (0..h).rev() {
                    index = index * x + next_sets[d][choice[d]] as usize;
                }
                succ.push(index as u32);
                let mut d = 0;
                loop {
                    if d == h {
                        break;
                    }
                    choice[d] += 1;
                    if choice[d] < next_sets[d].len() {
                        break;
                    }
                    choice[d] = 0;
                    d += 1;
                }
                if d == h {
                    break;
                }
            }
            succ.sort_unstable();
            succ.dedup();
            analysis.successors.push(succ);
        }

        // Greatest fixed point: the safe set of configurations from which
        // counting is guaranteed forever.
        let c = spec.c;
        let mut safe: Vec<bool> = agreed.iter().map(Option::is_some).collect();
        loop {
            let mut changed = false;
            for e in 0..configs {
                if !safe[e] {
                    continue;
                }
                let out = agreed[e].expect("safe ⊆ agreed");
                let expect = (out + 1) % c;
                let ok = analysis.successors[e]
                    .iter()
                    .all(|&s| safe[s as usize] && agreed[s as usize] == Some(expect));
                if !ok {
                    safe[e] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Attractor layering: t(e) = 0 on the safe set, otherwise
        // 1 + max over successors (the adversary maximises).
        let mut time: Vec<Option<u64>> = safe
            .iter()
            .map(|&s| if s { Some(0) } else { None })
            .collect();
        loop {
            let mut changed = false;
            for e in 0..configs {
                if time[e].is_some() {
                    continue;
                }
                let mut worst_succ = 0u64;
                let mut all_known = true;
                for &s in &analysis.successors[e] {
                    match time[s as usize] {
                        Some(t) => worst_succ = worst_succ.max(t),
                        None => {
                            all_known = false;
                            break;
                        }
                    }
                }
                if all_known {
                    time[e] = Some(worst_succ + 1);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        analysis.covered = time.iter().filter(|t| t.is_some()).count();
        analysis.worst_time = time.iter().flatten().copied().max().unwrap_or(0);
        analysis.time = time;
        Ok(analysis)
    }

    /// Builds the full received vector for honest digits + Byzantine combo
    /// in the workspace's scratch buffer (no allocation after first use).
    fn fill_received(
        &self,
        lut: &LutCounter,
        faulty: &[usize],
        digits: &[u8],
        combo: usize,
        workspace: &mut RoundWorkspace<u8>,
    ) {
        let received = &mut workspace.scratch;
        received.clear();
        received.resize(lut.spec().n, 0);
        for (hi, &hv) in self.honest.iter().enumerate() {
            received[hv] = digits[hi];
        }
        let mut c = combo;
        for &fv in faulty {
            received[fv] = (c % self.x) as u8;
            c /= self.x;
        }
    }

    /// Extracts a lasso-shaped non-stabilising execution from the stuck
    /// region, including the Byzantine values realising every transition.
    fn extract_witness(&self, lut: &LutCounter, faulty: &[usize]) -> Option<Witness> {
        let mut workspace: RoundWorkspace<u8> = RoundWorkspace::with_capacity(0, lut.spec().n);
        let start = (0..self.configs).find(|&e| self.time[e].is_none())?;
        let mut configs: Vec<usize> = vec![start];
        let mut byz: Vec<Vec<Vec<u8>>> = Vec::new();
        let mut visited: HashMap<usize, usize> = HashMap::new();
        visited.insert(start, 0);
        let mut current = start;
        let cycle_start;
        loop {
            // A stuck configuration always has a stuck successor (otherwise
            // the attractor pass would have assigned it a time).
            let next = *self.successors[current]
                .iter()
                .find(|&&s| self.time[s as usize].is_none())
                .expect("stuck configuration without stuck successor")
                as usize;
            // For every honest node find a Byzantine combo realising its
            // next state, and record the per-faulty-node values.
            let digits = self.digits(current);
            let target = self.digits(next);
            let mut step: Vec<Vec<u8>> = Vec::with_capacity(self.honest.len());
            for (hi, &i) in self.honest.iter().enumerate() {
                let combo = (0..self.combos)
                    .find(|&combo| {
                        self.fill_received(lut, faulty, &digits, combo, &mut workspace);
                        lut.next(i, &workspace.scratch) == target[hi]
                    })
                    .expect("successor state must be realisable");
                let mut values = Vec::with_capacity(faulty.len());
                let mut c = combo;
                for _ in faulty {
                    values.push((c % self.x) as u8);
                    c /= self.x;
                }
                step.push(values);
            }
            byz.push(step);
            configs.push(next);
            if let Some(&at) = visited.get(&next) {
                cycle_start = at;
                break;
            }
            visited.insert(next, configs.len() - 1);
            current = next;
        }
        Some(Witness {
            honest: self.honest.clone(),
            fault_set: faulty.to_vec(),
            configs: configs.into_iter().map(|e| self.digits(e)).collect(),
            byz,
            cycle_start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::LutSpec;

    fn lut(spec: LutSpec) -> LutCounter {
        LutCounter::new(spec).unwrap()
    }

    /// Two fault-free nodes both following node 0's value + 1: a correct
    /// 2-counter stabilising in exactly one round.
    fn follow_leader() -> LutCounter {
        // index = x0 + 2·x1; next = (x0 + 1) mod 2.
        let row = vec![1, 0, 1, 0];
        lut(LutSpec {
            n: 2,
            f: 0,
            c: 2,
            states: 2,
            transition: vec![row.clone(), row],
            output: vec![vec![0, 1], vec![0, 1]],
            stabilization_bound: 1,
        })
    }

    fn frozen() -> LutCounter {
        lut(LutSpec {
            n: 2,
            f: 0,
            c: 2,
            states: 2,
            transition: vec![vec![0, 1, 0, 1], vec![0, 0, 1, 1]],
            output: vec![vec![0, 1], vec![0, 1]],
            stabilization_bound: 0,
        })
    }

    #[test]
    fn fault_sets_enumerates_subsets() {
        let sets = fault_sets(4, 1);
        assert_eq!(sets.len(), 5); // ∅ + 4 singletons
        let sets = fault_sets(4, 2);
        assert_eq!(sets.len(), 1 + 4 + 6);
    }

    #[test]
    fn follow_leader_verifies_with_time_one() {
        assert_eq!(
            verify(&follow_leader()).unwrap(),
            Verdict::Stabilizes { worst_case_time: 1 }
        );
    }

    #[test]
    fn frozen_algorithm_fails_with_witness() {
        let Verdict::Fails { witness, .. } = verify(&frozen()).unwrap() else {
            panic!("frozen algorithm must fail");
        };
        // The witness is a lasso: last config closes the cycle.
        assert!(witness.configs.len() >= 2);
        assert_eq!(
            witness.configs.last(),
            witness.configs.get(witness.cycle_start),
        );
        assert_eq!(witness.byz.len(), witness.configs.len() - 1);
        // Fault-free failure: no Byzantine values needed.
        assert!(witness
            .byz
            .iter()
            .all(|step| step.iter().all(Vec::is_empty)));
    }

    #[test]
    fn witness_transitions_are_locally_consistent() {
        // Every recorded transition must satisfy the transition function
        // when the recorded Byzantine values are substituted.
        let counter = frozen();
        let Verdict::Fails { witness, .. } = verify(&counter).unwrap() else {
            panic!();
        };
        for t in 0..witness.byz.len() {
            for (hi, &node) in witness.honest.iter().enumerate() {
                let mut received = vec![0u8; counter.spec().n];
                for (hj, &hv) in witness.honest.iter().enumerate() {
                    received[hv] = witness.configs[t][hj];
                }
                for (g, &fv) in witness.fault_set.iter().enumerate() {
                    received[fv] = witness.byz[t][hi][g];
                }
                assert_eq!(
                    counter.next(node, &received),
                    witness.configs[t + 1][hi],
                    "transition {t} node {node} inconsistent"
                );
            }
        }
    }

    #[test]
    fn coverage_is_one_exactly_for_correct_algorithms() {
        let summary = analyze(&follow_leader()).unwrap();
        assert_eq!(summary.coverage, 1.0);
        assert!(summary.failure.is_none());
    }

    #[test]
    fn equivocation_breaks_quorumless_following_with_4_nodes() {
        // 4 nodes, f = 1: follow max+1. Equivocation splits the honest
        // nodes, so verification must fail.
        let x = 2u8;
        let rows: Vec<u8> = (0..16u32)
            .map(|index| {
                let max = (0..4).map(|u| (index >> u & 1) as u8).max().unwrap();
                (max + 1) % 2
            })
            .collect();
        let follow_max = lut(LutSpec {
            n: 4,
            f: 1,
            c: 2,
            states: x,
            transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
            output: vec![vec![0, 1]; 4],
            stabilization_bound: 0,
        });
        let Verdict::Fails {
            fault_set, witness, ..
        } = verify(&follow_max).unwrap()
        else {
            panic!("quorumless following must fail with f = 1");
        };
        assert_eq!(witness.fault_set, fault_set);
        // The extracted attack needs no equivocation here: sending 1 to
        // everyone freezes all max-followers at 0 — agreement without
        // counting. Check the witness transitions are all realisable.
        for t in 0..witness.byz.len() {
            for (hi, &node) in witness.honest.iter().enumerate() {
                let mut received = vec![0u8; 4];
                for (hj, &hv) in witness.honest.iter().enumerate() {
                    received[hv] = witness.configs[t][hj];
                }
                for (g, &fv) in witness.fault_set.iter().enumerate() {
                    received[fv] = witness.byz[t][hi][g];
                }
                assert_eq!(follow_max.next(node, &received), witness.configs[t + 1][hi]);
            }
        }
        // And the lasso closes.
        assert_eq!(
            witness.configs.last(),
            witness.configs.get(witness.cycle_start)
        );
    }

    #[test]
    fn size_limits_are_enforced() {
        // 16 states on 4 nodes: 16^4 = 65536 > MAX_CONFIGS → typed error.
        let states = 16u8;
        let rows = vec![0u8; 65536];
        let spec = LutSpec {
            n: 4,
            f: 0,
            c: 2,
            states,
            transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
            output: vec![vec![0; 16], vec![0; 16], vec![0; 16], vec![0; 16]]
                .into_iter()
                .map(|mut v: Vec<u64>| {
                    for (i, o) in v.iter_mut().enumerate() {
                        *o = (i % 2) as u64;
                    }
                    v
                })
                .collect(),
            stabilization_bound: 0,
        };
        let big = lut(spec);
        assert!(verify(&big).is_err());
    }
}
