//! The exact configuration-space model checker, driving the bitset
//! safety-game core in [`crate::game`].

use sc_core::LutCounter;
use sc_protocol::ParamError;

use crate::game::{SetStats, Solver};
use crate::orbit::{binomial, exchangeable, OrbitSolver};

/// Which game engine an [`Analyzer`] drives.
///
/// The quotiented solver is only sound for *exchangeable* LUTs (identical
/// per-node tables, invariant under permuting received positions — see
/// `crate::orbit`); [`SolverMode::Auto`] detects the symmetry per
/// candidate and quotients exactly when it may.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SolverMode {
    /// Detect exchangeability and pick the quotient when sound (default).
    #[default]
    Auto,
    /// Always the unquotiented PR 4 bitset solver — the retained baseline
    /// and bitwise-equivalence oracle.
    Full,
    /// Force the orbit quotient; [`Analyzer::analyze`] errors on a
    /// non-exchangeable LUT instead of silently falling back.
    Quotient,
}

/// Outcome of exhaustively verifying a candidate counter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Every execution, for every fault set and every Byzantine behaviour,
    /// stabilises within `worst_case_time` rounds.
    Stabilizes {
        /// The exact worst-case stabilisation time.
        worst_case_time: u64,
    },
    /// Some adversary prevents stabilisation forever.
    Fails {
        /// A fault set witnessing the failure.
        fault_set: Vec<usize>,
        /// Number of configurations from which the adversary can avoid
        /// stabilisation indefinitely.
        stuck_configs: usize,
        /// A concrete non-stabilising execution, replayable on the
        /// simulator.
        witness: Witness,
    },
}

/// A concrete infinite non-stabilising execution in lasso form: a prefix of
/// configurations followed by a cycle, together with the exact Byzantine
/// values each correct node received at each step.
///
/// `configs[t+1]` is reached from `configs[t]` when faulty node
/// `fault_set[g]` sends state `byz[t][h][g]` to the `h`-th correct node;
/// the last configuration equals `configs[cycle_start]`, closing the loop.
/// The `replayable` test in `tests/witness_replay.rs` drives the simulator
/// with exactly this script and watches the algorithm fail forever.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// Correct nodes, in the order configurations are listed.
    pub honest: Vec<usize>,
    /// Faulty nodes, in the order Byzantine values are listed.
    pub fault_set: Vec<usize>,
    /// The configurations visited; the last equals `configs[cycle_start]`.
    pub configs: Vec<Vec<u8>>,
    /// `byz[t][h][g]`: value faulty node `g` sends to correct node `h` in
    /// step `t` (one entry per transition, `configs.len() − 1` in total).
    pub byz: Vec<Vec<Vec<u8>>>,
    /// Index at which the execution starts repeating.
    pub cycle_start: usize,
}

impl Witness {
    /// The Byzantine values to use at any round `t ≥ 0`, following the
    /// lasso: the prefix once, then the cycle forever.
    pub fn script_at(&self, t: u64) -> &Vec<Vec<u8>> {
        let steps = self.byz.len();
        let cycle = steps - self.cycle_start;
        let idx = if (t as usize) < steps {
            t as usize
        } else {
            self.cycle_start + ((t as usize - self.cycle_start) % cycle)
        };
        &self.byz[idx]
    }
}

/// Exhaustively decides whether `lut` is a self-stabilising synchronous
/// `c`-counter with the resilience its spec claims, and computes the exact
/// worst-case stabilisation time (see the crate-level documentation for the
/// method). On failure, a replayable [`Witness`] execution is extracted.
///
/// # Errors
///
/// Returns [`ParamError`] when the instance exceeds the exploration limits
/// (`|X|^{n−|F|}` configurations or `|X|^{|F|}` Byzantine combinations per
/// node too large, or more than 64 states).
pub fn verify(lut: &LutCounter) -> Result<Verdict, ParamError> {
    Analyzer::new().verify(lut)
}

/// Aggregate result of checking every fault set, without the (expensive)
/// witness extraction — this is the synthesiser's scoring function.
#[derive(Clone, Debug, PartialEq)]
pub struct AnalysisSummary {
    /// Exact worst-case stabilisation time over fully-covered fault sets.
    pub worst_time: u64,
    /// Fraction of (fault set, configuration) pairs that stabilise.
    pub coverage: f64,
    /// First failing fault set, with its number of stuck configurations.
    pub failure: Option<(Vec<usize>, usize)>,
}

/// Per-fault-set ingredients of an [`AnalysisSummary`].
#[cfg(feature = "parallel")]
type SetOutcome = (Vec<usize>, SetStats);

/// Folds per-fault-set outcomes (streamed, in enumeration order) into a
/// summary; the first error wins.
#[cfg(feature = "parallel")]
fn fold_outcomes(
    outcomes: impl IntoIterator<Item = Result<SetOutcome, ParamError>>,
) -> Result<AnalysisSummary, ParamError> {
    let mut worst = 0u64;
    let mut covered = 0usize;
    let mut total = 0usize;
    let mut failure: Option<(Vec<usize>, usize)> = None;
    for outcome in outcomes {
        let (fault_set, stats) = outcome?;
        total += stats.configs;
        covered += stats.covered;
        if stats.covered == stats.configs {
            worst = worst.max(stats.worst_time);
        } else if failure.is_none() {
            failure = Some((fault_set, stats.configs - stats.covered));
        }
    }
    Ok(AnalysisSummary {
        worst_time: worst,
        coverage: covered as f64 / total as f64,
        failure,
    })
}

/// Checks every fault set of `lut` and aggregates exact worst-case time,
/// attractor coverage, and the first failure — without extracting a
/// witness. This is the scoring function of the synthesiser and the
/// workload of the `throughput` bench's verifier table. Equivalent to
/// `Analyzer::new().analyze(lut)`; callers scoring many candidates should
/// hold an [`Analyzer`] instead, so the game buffers are reused.
///
/// With the `parallel` feature (default), instances large enough to
/// amortise hand-off overhead fan the independent fault-set games out on
/// the persistent [`sc_exec`] pool; results are folded in enumeration
/// order, so the summary (including which failing fault set is reported)
/// is identical to the serial path.
///
/// # Errors
///
/// Returns [`ParamError`] when the instance exceeds the exploration limits.
pub fn analyze(lut: &LutCounter) -> Result<AnalysisSummary, ParamError> {
    Analyzer::new().analyze(lut)
}

/// A reusable [`analyze`] engine: owns the game solver's buffers, so
/// scoring many candidates (the synthesis hill-climb, a bench loop)
/// allocates nothing per evaluation once the buffers have grown to the
/// instance size. (Instances large enough for the pool fan-out seed one
/// participating thread with these warm buffers and get a warm engine
/// back; the other threads allocate their own per call.)
///
/// # Example
///
/// ```
/// use sc_core::{LutCounter, LutSpec};
/// use sc_verifier::Analyzer;
///
/// let lut = LutCounter::new(LutSpec {
///     n: 1,
///     f: 0,
///     c: 2,
///     states: 2,
///     transition: vec![vec![1, 0]],
///     output: vec![vec![0, 1]],
///     stabilization_bound: 0,
/// })?;
/// let mut analyzer = Analyzer::new();
/// assert_eq!(analyzer.analyze(&lut)?.coverage, 1.0);
/// # Ok::<(), sc_protocol::ParamError>(())
/// ```
#[derive(Default)]
pub struct Analyzer {
    solver: Solver,
    orbit: OrbitSolver,
    mode: SolverMode,
    dedup_faults: bool,
}

/// One game per fault set, dispatched to either engine — the seam the
/// serial fold, the parallel fan-out and the dedup loop all share.
trait SetEngine: Default + Send {
    fn run_set(&mut self, lut: &LutCounter, faulty: &[usize]) -> Result<SetStats, ParamError>;
}

impl SetEngine for Solver {
    fn run_set(&mut self, lut: &LutCounter, faulty: &[usize]) -> Result<SetStats, ParamError> {
        self.run(lut, faulty)
    }
}

impl SetEngine for OrbitSolver {
    fn run_set(&mut self, lut: &LutCounter, faulty: &[usize]) -> Result<SetStats, ParamError> {
        self.run(lut, faulty)
    }
}

/// Serial enumeration, fold inlined over the lending walk: no fault set
/// is ever cloned except the first failing one.
fn analyze_serial<E: SetEngine>(
    engine: &mut E,
    lut: &LutCounter,
) -> Result<AnalysisSummary, ParamError> {
    let spec = lut.spec();
    let mut worst = 0u64;
    let mut covered = 0usize;
    let mut total = 0usize;
    let mut failure: Option<(Vec<usize>, usize)> = None;
    let mut sets = FaultSets::new(spec.n, spec.f);
    while let Some(fault_set) = sets.advance() {
        let stats = engine.run_set(lut, fault_set)?;
        total += stats.configs;
        covered += stats.covered;
        if stats.covered == stats.configs {
            worst = worst.max(stats.worst_time);
        } else if failure.is_none() {
            failure = Some((fault_set.to_vec(), stats.configs - stats.covered));
        }
    }
    Ok(AnalysisSummary {
        worst_time: worst,
        coverage: covered as f64 / total as f64,
        failure,
    })
}

/// Fans the fault-set games out on the process-wide [`sc_exec`] pool.
/// Fault sets are enumerated preorder with the heaviest games (the
/// size-ascending prefix chain `[]`, `[0]`, `[0,1]`, …) first, so static
/// contiguous chunks would hand one worker nearly all the work — the
/// pool's dynamic index claiming interleaves heavy and light games across
/// whoever is free instead. Each claiming thread checks out a private
/// engine for the whole call: the first to ask is seeded with the
/// analyzer's warm engine (the rest bring their own), and one warm engine
/// is handed back to the analyzer afterwards, so repeated `analyze` calls
/// keep their allocation-free steady state. Results come back in
/// enumeration order regardless of which thread ran which game, so the
/// summary — including which failing fault set is reported and which
/// error wins — is bitwise identical to the serial path at every thread
/// count.
#[cfg(feature = "parallel")]
fn analyze_parallel<E: SetEngine>(
    engine: &mut E,
    lut: &LutCounter,
    sets: &[Vec<usize>],
    threads: usize,
) -> Result<AnalysisSummary, ParamError> {
    analyze_on_pool(sc_exec::pool(), engine, lut, sets, threads)
}

/// [`analyze_parallel`] against an explicit pool — the seam the forced
/// fan-out test drives with its own worker counts.
#[cfg(feature = "parallel")]
fn analyze_on_pool<E: SetEngine>(
    pool: &sc_exec::Pool,
    engine: &mut E,
    lut: &LutCounter,
    sets: &[Vec<usize>],
    threads: usize,
) -> Result<AnalysisSummary, ParamError> {
    let cap = threads.min(sets.len()).max(1);
    let warm = std::sync::Mutex::new(Some(std::mem::take(engine)));
    let engines: sc_exec::WorkerScratch<E> = sc_exec::WorkerScratch::new();
    let outcomes: Vec<Result<SetOutcome, ParamError>> = pool.map(sets.len(), cap, |index| {
        engines.with(
            || warm.lock().unwrap().take().unwrap_or_default(),
            |e| {
                e.run_set(lut, &sets[index])
                    .map(|stats| (sets[index].clone(), stats))
            },
        )
    });
    if let Some(e) = engines.take_all().into_iter().next() {
        *engine = e;
    }
    fold_outcomes(outcomes)
}

impl Analyzer {
    /// An analyzer with empty buffers; the first evaluation sizes them.
    pub fn new() -> Analyzer {
        Analyzer::default()
    }

    /// An analyzer pinned to `mode` (the default is [`SolverMode::Auto`]).
    pub fn with_mode(mode: SolverMode) -> Analyzer {
        Analyzer {
            mode,
            ..Analyzer::default()
        }
    }

    /// Switches the engine selection policy.
    pub fn set_mode(&mut self, mode: SolverMode) {
        self.mode = mode;
    }

    /// A fresh-buffered analyzer with this one's policy (engine mode and
    /// fault-set dedup) — the per-worker engine a parallel sweep hands each
    /// thread. Forks produce bitwise-identical summaries to the parent;
    /// only the warm buffers are not shared.
    pub fn fork(&self) -> Analyzer {
        Analyzer {
            solver: Solver::default(),
            orbit: OrbitSolver::default(),
            mode: self.mode,
            dedup_faults: self.dedup_faults,
        }
    }

    /// Enables (or disables) symmetry-aware fault-set enumeration: for an
    /// exchangeable LUT, every fault set of one size plays an isomorphic
    /// game under honest relabeling, so [`Analyzer::analyze`] solves one
    /// representative per size `k ≤ f` (the prefix `{0, …, k−1}`) and
    /// scales its statistics by the multiplicity `C(n, k)`. The preorder
    /// enumeration visits the prefix chain first, so the reported first
    /// failure is bitwise identical to full enumeration's. The flag is a
    /// sound no-op on non-exchangeable LUTs (full enumeration runs).
    pub fn dedup_fault_sets(&mut self, dedup: bool) {
        self.dedup_faults = dedup;
    }

    /// See [`analyze`].
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when the instance exceeds the exploration
    /// limits, or when [`SolverMode::Quotient`] is forced on a
    /// non-exchangeable LUT.
    pub fn analyze(&mut self, lut: &LutCounter) -> Result<AnalysisSummary, ParamError> {
        let spec = lut.spec();
        let symmetric = match self.mode {
            SolverMode::Full => false,
            SolverMode::Auto => exchangeable(lut),
            SolverMode::Quotient => {
                if !exchangeable(lut) {
                    return Err(ParamError::constraint(
                        "quotient mode needs an exchangeable LUT: identical per-node \
                         tables, symmetric in the received positions",
                    ));
                }
                true
            }
        };
        if symmetric && self.dedup_faults {
            return self.analyze_dedup(lut);
        }
        let quotient = symmetric && self.mode != SolverMode::Full;
        #[cfg(feature = "parallel")]
        {
            // Gate on the largest game in the loop — the fault-free
            // configuration (or orbit) count; tiny instances (the
            // synthesis hill-climb) stay on this thread.
            let threads = sc_exec::threads();
            let weight = if quotient {
                binomial(spec.states as usize + spec.n - 1, spec.n)
                    .try_into()
                    .unwrap_or(usize::MAX)
            } else {
                (spec.states as usize)
                    .checked_pow(spec.n as u32)
                    .unwrap_or(usize::MAX)
            };
            if weight >= 1 << 12 && threads > 1 {
                let sets: Vec<Vec<usize>> = FaultSets::new(spec.n, spec.f).collect();
                if sets.len() > 1 {
                    return if quotient {
                        analyze_parallel(&mut self.orbit, lut, &sets, threads)
                    } else {
                        analyze_parallel(&mut self.solver, lut, &sets, threads)
                    };
                }
            }
        }
        if quotient {
            analyze_serial(&mut self.orbit, lut)
        } else {
            analyze_serial(&mut self.solver, lut)
        }
    }

    /// Symmetry-aware fault-set enumeration (see
    /// [`Analyzer::dedup_fault_sets`]): one game per fault-set *size*,
    /// statistics scaled by the orbit multiplicity `C(n, k)`. Runs on the
    /// engine the mode selects; the `f + 1` games are small enough that
    /// the fan-out would cost more than it saves.
    fn analyze_dedup(&mut self, lut: &LutCounter) -> Result<AnalysisSummary, ParamError> {
        let spec = lut.spec();
        let quotient = self.mode != SolverMode::Full;
        let mut worst = 0u64;
        let mut covered = 0u128;
        let mut total = 0u128;
        let mut failure: Option<(Vec<usize>, usize)> = None;
        let mut rep: Vec<usize> = Vec::with_capacity(spec.f);
        for k in 0..=spec.f.min(spec.n) {
            let stats = if quotient {
                self.orbit.run(lut, &rep)?
            } else {
                self.solver.run(lut, &rep)?
            };
            let mult = u128::from(binomial(spec.n, k));
            total += mult * stats.configs as u128;
            covered += mult * stats.covered as u128;
            if stats.covered == stats.configs {
                worst = worst.max(stats.worst_time);
            } else if failure.is_none() {
                failure = Some((rep.clone(), stats.configs - stats.covered));
            }
            rep.push(k);
        }
        Ok(AnalysisSummary {
            worst_time: worst,
            coverage: covered as f64 / total as f64,
            failure,
        })
    }

    /// [`verify`] on this analyzer's engines and mode: analyzes, and on
    /// failure re-solves the failing fault set to extract the replayable
    /// [`Witness`]. Both engines extract byte-identical witnesses (the
    /// quotient walks the full space, querying orbits only for
    /// decidedness), so the verdict does not depend on the mode — the
    /// `quotient_cross` suite enforces it.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when the instance exceeds the exploration
    /// limits of the selected engine.
    pub fn verify(&mut self, lut: &LutCounter) -> Result<Verdict, ParamError> {
        let summary = self.analyze(lut)?;
        match summary.failure {
            None => Ok(Verdict::Stabilizes {
                worst_case_time: summary.worst_time,
            }),
            Some((fault_set, stuck_configs)) => {
                let quotient = self.mode != SolverMode::Full && exchangeable(lut);
                let witness = if quotient {
                    self.orbit.run(lut, &fault_set)?;
                    self.orbit.extract_witness(lut)
                } else {
                    self.solver.run(lut, &fault_set)?;
                    self.solver.extract_witness(lut)
                }
                .expect("a failing fault set yields a witness");
                Ok(Verdict::Fails {
                    fault_set,
                    stuck_configs,
                    witness,
                })
            }
        }
    }
}

/// Lazy enumeration of all subsets of `[n]` with at most `f` elements, in
/// the preorder the recursive enumeration used: `[]`, `[0]`, `[0,1]`, …
/// Each subset is yielded exactly when requested — callers iterate the
/// sequence once, so nothing is materialised up front.
pub(crate) struct FaultSets {
    n: usize,
    f: usize,
    current: Vec<usize>,
    started: bool,
    done: bool,
}

impl FaultSets {
    pub(crate) fn new(n: usize, f: usize) -> Self {
        FaultSets {
            n,
            f,
            current: Vec::with_capacity(f),
            started: false,
            done: false,
        }
    }
}

impl FaultSets {
    /// Advances to the next subset and lends it — the non-allocating walk
    /// the analyzer drives in its per-candidate hot loop.
    /// [`Iterator::next`] clones the lent slice.
    pub(crate) fn advance(&mut self) -> Option<&[usize]> {
        if self.done {
            return None;
        }
        if !self.started {
            self.started = true;
            return Some(&self.current); // the empty set
        }
        // Preorder successor: descend to the first child if allowed…
        let child = self.current.last().map_or(0, |&v| v + 1);
        if self.current.len() < self.f && child < self.n {
            self.current.push(child);
            return Some(&self.current);
        }
        // …otherwise backtrack to the next sibling.
        while let Some(v) = self.current.pop() {
            if v + 1 < self.n {
                self.current.push(v + 1);
                return Some(&self.current);
            }
        }
        self.done = true;
        None
    }
}

impl Iterator for FaultSets {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        self.advance().map(<[usize]>::to_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::LutSpec;

    fn lut(spec: LutSpec) -> LutCounter {
        LutCounter::new(spec).unwrap()
    }

    /// Two fault-free nodes both following node 0's value + 1: a correct
    /// 2-counter stabilising in exactly one round.
    fn follow_leader() -> LutCounter {
        // index = x0 + 2·x1; next = (x0 + 1) mod 2.
        let row = vec![1, 0, 1, 0];
        lut(LutSpec {
            n: 2,
            f: 0,
            c: 2,
            states: 2,
            transition: vec![row.clone(), row],
            output: vec![vec![0, 1], vec![0, 1]],
            stabilization_bound: 1,
        })
    }

    fn frozen() -> LutCounter {
        lut(LutSpec {
            n: 2,
            f: 0,
            c: 2,
            states: 2,
            transition: vec![vec![0, 1, 0, 1], vec![0, 0, 1, 1]],
            output: vec![vec![0, 1], vec![0, 1]],
            stabilization_bound: 0,
        })
    }

    /// 16 states on 4 fault-free nodes (`16^4 = 65536` configurations):
    /// everyone follows node 0's value + 1 mod 16.
    fn follow_leader_16() -> LutCounter {
        let rows: Vec<u8> = (0..65536u32)
            .map(|index| ((index % 16) + 1) as u8 % 16)
            .collect();
        lut(LutSpec {
            n: 4,
            f: 0,
            c: 16,
            states: 16,
            transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
            output: vec![(0..16u64).collect(); 4],
            stabilization_bound: 1,
        })
    }

    #[test]
    fn fault_sets_enumerates_subsets_in_preorder() {
        let sets: Vec<_> = FaultSets::new(4, 1).collect();
        assert_eq!(sets.len(), 5); // ∅ + 4 singletons
        assert_eq!(sets[0], Vec::<usize>::new());
        assert_eq!(sets[1..], [vec![0], vec![1], vec![2], vec![3]]);
        let sets: Vec<_> = FaultSets::new(4, 2).collect();
        assert_eq!(sets.len(), 1 + 4 + 6);
        assert_eq!(
            sets,
            vec![
                vec![],
                vec![0],
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1],
                vec![1, 2],
                vec![1, 3],
                vec![2],
                vec![2, 3],
                vec![3],
            ]
        );
        // f = 0: only the empty set; f ≥ n: all 2^n subsets.
        assert_eq!(FaultSets::new(3, 0).count(), 1);
        assert_eq!(FaultSets::new(3, 3).count(), 8);
    }

    #[test]
    fn follow_leader_verifies_with_time_one() {
        assert_eq!(
            verify(&follow_leader()).unwrap(),
            Verdict::Stabilizes { worst_case_time: 1 }
        );
    }

    #[test]
    fn frozen_algorithm_fails_with_witness() {
        let Verdict::Fails { witness, .. } = verify(&frozen()).unwrap() else {
            panic!("frozen algorithm must fail");
        };
        // The witness is a lasso: last config closes the cycle.
        assert!(witness.configs.len() >= 2);
        assert_eq!(
            witness.configs.last(),
            witness.configs.get(witness.cycle_start),
        );
        assert_eq!(witness.byz.len(), witness.configs.len() - 1);
        // Fault-free failure: no Byzantine values needed.
        assert!(witness
            .byz
            .iter()
            .all(|step| step.iter().all(Vec::is_empty)));
    }

    #[test]
    fn witness_transitions_are_locally_consistent() {
        // Every recorded transition must satisfy the transition function
        // when the recorded Byzantine values are substituted.
        let counter = frozen();
        let Verdict::Fails { witness, .. } = verify(&counter).unwrap() else {
            panic!();
        };
        for t in 0..witness.byz.len() {
            for (hi, &node) in witness.honest.iter().enumerate() {
                let mut received = vec![0u8; counter.spec().n];
                for (hj, &hv) in witness.honest.iter().enumerate() {
                    received[hv] = witness.configs[t][hj];
                }
                for (g, &fv) in witness.fault_set.iter().enumerate() {
                    received[fv] = witness.byz[t][hi][g];
                }
                assert_eq!(
                    counter.next(node, &received),
                    witness.configs[t + 1][hi],
                    "transition {t} node {node} inconsistent"
                );
            }
        }
    }

    #[test]
    fn coverage_is_one_exactly_for_correct_algorithms() {
        let summary = analyze(&follow_leader()).unwrap();
        assert_eq!(summary.coverage, 1.0);
        assert!(summary.failure.is_none());
    }

    #[test]
    fn equivocation_breaks_quorumless_following_with_4_nodes() {
        // 4 nodes, f = 1: follow max+1. Equivocation splits the honest
        // nodes, so verification must fail.
        let x = 2u8;
        let rows: Vec<u8> = (0..16u32)
            .map(|index| {
                let max = (0..4).map(|u| (index >> u & 1) as u8).max().unwrap();
                (max + 1) % 2
            })
            .collect();
        let follow_max = lut(LutSpec {
            n: 4,
            f: 1,
            c: 2,
            states: x,
            transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
            output: vec![vec![0, 1]; 4],
            stabilization_bound: 0,
        });
        let Verdict::Fails {
            fault_set, witness, ..
        } = verify(&follow_max).unwrap()
        else {
            panic!("quorumless following must fail with f = 1");
        };
        assert_eq!(witness.fault_set, fault_set);
        // The extracted attack needs no equivocation here: sending 1 to
        // everyone freezes all max-followers at 0 — agreement without
        // counting. Check the witness transitions are all realisable.
        for t in 0..witness.byz.len() {
            for (hi, &node) in witness.honest.iter().enumerate() {
                let mut received = vec![0u8; 4];
                for (hj, &hv) in witness.honest.iter().enumerate() {
                    received[hv] = witness.configs[t][hj];
                }
                for (g, &fv) in witness.fault_set.iter().enumerate() {
                    received[fv] = witness.byz[t][hi][g];
                }
                assert_eq!(follow_max.next(node, &received), witness.configs[t + 1][hi]);
            }
        }
        // And the lasso closes.
        assert_eq!(
            witness.configs.last(),
            witness.configs.get(witness.cycle_start)
        );
    }

    /// The pool fan-out must reproduce the serial summary bitwise — same
    /// coverage, worst time, and *first* failing fault set. Driven against
    /// explicit [`sc_exec::Pool`]s with forced worker counts so real
    /// cross-thread claiming is exercised regardless of how many cores the
    /// host has (the public gate only fans out on multi-core machines).
    #[cfg(feature = "parallel")]
    #[test]
    fn forced_parallel_fan_out_matches_serial_summary() {
        let x = 8u8;
        let rows = 8usize.pow(4);
        // A deterministic pseudo-random 8-state table: plenty of failing
        // fault sets, so the first-failure tie-break is exercised too.
        let transition: Vec<Vec<u8>> = (0..4)
            .map(|v| {
                (0..rows)
                    .map(|r| ((r * 2654435761 + v * 97) >> 7) as u8 % x)
                    .collect()
            })
            .collect();
        let lut = lut(LutSpec {
            n: 4,
            f: 1,
            c: 2,
            states: x,
            transition,
            output: vec![(0..8).map(|s| s % 2).collect(); 4],
            stabilization_bound: 0,
        });
        let serial = {
            let mut analyzer = Analyzer::new();
            let spec = lut.spec();
            let mut worst = 0u64;
            let mut covered = 0usize;
            let mut total = 0usize;
            let mut failure = None;
            let mut sets = FaultSets::new(spec.n, spec.f);
            while let Some(fault_set) = sets.advance() {
                let stats = analyzer.solver.run(&lut, fault_set).unwrap();
                total += stats.configs;
                covered += stats.covered;
                if stats.covered == stats.configs {
                    worst = worst.max(stats.worst_time);
                } else if failure.is_none() {
                    failure = Some((fault_set.to_vec(), stats.configs - stats.covered));
                }
            }
            AnalysisSummary {
                worst_time: worst,
                coverage: covered as f64 / total as f64,
                failure,
            }
        };
        let sets: Vec<Vec<usize>> = FaultSets::new(4, 1).collect();
        for workers in [2, 3, 5, 8] {
            let pool = sc_exec::Pool::new(workers - 1);
            let mut solver = Solver::default();
            let parallel = analyze_on_pool(&pool, &mut solver, &lut, &sets, workers).unwrap();
            assert_eq!(parallel, serial, "fan-out with {workers} workers diverges");
        }
    }

    #[test]
    fn sixteen_state_instance_verifies_beyond_seed_limits() {
        // 16^4 = 65536 configurations: rejected by the retained reference
        // checker (seed limit 1 << 14), decided exactly by the bitset core.
        let big = follow_leader_16();
        assert!(crate::reference::verify(&big).is_err());
        assert_eq!(
            verify(&big).unwrap(),
            Verdict::Stabilizes { worst_case_time: 1 }
        );
    }

    #[test]
    fn size_limits_are_enforced() {
        // 6 states on 8 nodes: 6^8 ≈ 1.7M > MAX_CONFIGS (1 << 20) → typed
        // error from the full solver's raised limits too. The table is
        // exchangeable (all-zero transitions), so the default Auto mode now
        // quotients it down to C(13, 8) = 1287 orbits and decides it.
        let states = 6u8;
        let rows = vec![0u8; 6usize.pow(8)];
        let output: Vec<u64> = (0..6).map(|i| i % 2).collect();
        let spec = LutSpec {
            n: 8,
            f: 0,
            c: 2,
            states,
            transition: vec![rows; 8],
            output: vec![output; 8],
            stabilization_bound: 0,
        };
        let big = lut(spec);
        assert!(Analyzer::with_mode(SolverMode::Full).analyze(&big).is_err());
        assert!(verify(&big).is_ok());
    }
}
