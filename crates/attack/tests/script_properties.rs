//! Property coverage for script round-tripping:
//!
//! * the `Script` codec is lossless on arbitrary scripts,
//! * witness-imported scripts replay to the witness's configurations on the
//!   live engine,
//! * a mutated script's early-decision objective equals a from-scratch
//!   full-horizon evaluation (`early ≡ full` on scripted runs).

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_attack::{MoveSpace, Objective, SampledRaw, Script};
use sc_core::{Algorithm, CounterState, LutCounter, LutSpec};
use sc_protocol::BitVec;
use sc_sim::testing::FollowMax;
use sc_sim::Simulation;
use sc_verifier::{verify, Verdict};

/// A random well-formed script: n in 2..=5, one or two faults, 1..=6
/// rounds, any cycle start, full move vocabulary.
fn random_script(seed: u64) -> Script {
    let mut rng = SmallRng::seed_from_u64(seed);
    use rand::Rng;
    let n: usize = rng.random_range(2..=5);
    let f: usize = rng.random_range(1..=2.min(n - 1));
    let mut fault_set: Vec<usize> = (0..n).collect();
    // Deterministic subset: rotate by seed and take f, then sort.
    fault_set.rotate_left(rng.random_range(0..n));
    fault_set.truncate(f);
    fault_set.sort_unstable();
    let rounds: usize = rng.random_range(1..=6);
    let cycle_start: usize = rng.random_range(0..rounds);
    let space = MoveSpace {
        raw_values: rng.random_range(0..=4),
        salts: rng.random_range(1..=4),
        max_lag: rng.random_range(0..=3),
    };
    Script::random(n, fault_set, rounds, cycle_start, &space, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Encode → decode is the identity on arbitrary scripts.
    #[test]
    fn script_codec_is_lossless(seed in proptest::any::<u64>()) {
        let script = random_script(seed);
        let mut bits = BitVec::new();
        script.encode(&mut bits);
        let back = Script::decode(&mut bits.reader()).unwrap();
        prop_assert_eq!(&back, &script);
        // And re-encoding the decoded script is bit-identical.
        let mut bits2 = BitVec::new();
        back.encode(&mut bits2);
        prop_assert_eq!(bits.len(), bits2.len());
        prop_assert_eq!(bits.words(), bits2.words());
    }
}

/// Random `n = 4, f = 1` two-state LUT, exactly like the verifier cross
/// tests build them.
fn random_lut(seed: u64) -> LutCounter {
    let mut rng = SmallRng::seed_from_u64(seed);
    use rand::Rng;
    let rows = 16usize;
    let transition: Vec<Vec<u8>> = (0..4)
        .map(|_| (0..rows).map(|_| rng.random_range(0..2u8)).collect())
        .collect();
    LutCounter::new(LutSpec {
        n: 4,
        f: 1,
        c: 2,
        states: 2,
        transition,
        output: vec![vec![0, 1]; 4],
        stabilization_bound: 0,
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Whenever the exhaustive checker refutes a random LUT, the imported
    /// witness script drives the live simulator through the witness's
    /// configurations, value for value, beyond the lasso length.
    #[test]
    fn witness_imported_scripts_replay_to_the_witness_configs(seed in proptest::any::<u64>()) {
        let lut = random_lut(seed);
        let Ok(Verdict::Fails { witness, .. }) = verify(&lut) else {
            // Stabilising tables have no witness to import; next case.
            continue;
        };
        let algo = Algorithm::Lut(lut);
        let script = Script::from_witness(&witness);
        let mut states = vec![CounterState::Lut(0); 4];
        for (hi, &node) in witness.honest.iter().enumerate() {
            states[node] = CounterState::Lut(witness.configs[0][hi]);
        }
        let adversary = sc_attack::ScriptedAdversary::new(&script, &algo);
        let mut sim = Simulation::with_states(&algo, adversary, states, 0);
        let steps = witness.byz.len();
        let cycle = steps - witness.cycle_start;
        for t in 0..(steps + 2 * cycle) as u64 {
            let idx = if (t as usize) < steps {
                t as usize
            } else {
                witness.cycle_start + ((t as usize - witness.cycle_start) % cycle)
            };
            for (hi, &node) in witness.honest.iter().enumerate() {
                prop_assert_eq!(
                    &sim.states()[node],
                    &CounterState::Lut(witness.configs[idx][hi]),
                    "round {} diverged at node {}", t, node
                );
            }
            sim.step();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Mutating a script in place and evaluating with the early-decision
    /// inner loop gives exactly the full-horizon objective — the soundness
    /// contract the search relies on (`early ≡ full` on scripted runs).
    #[test]
    fn mutated_script_objective_equals_full_horizon(seed in proptest::any::<u64>()) {
        let p = FollowMax { n: 4, c: 8 };
        let space = MoveSpace { raw_values: 4, salts: 3, max_lag: 2 };
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut script = Script::random(4, vec![1], 3, 1, &space, &mut rng);
        let mut obj = Objective::new(&p, SampledRaw(&p), vec![1], 0..4, 96).unwrap();

        // A chain of in-place mutations; after each, early must equal full.
        for step in 0..4u64 {
            let to = [0usize, 2, 3][step as usize % 3];
            let round = step as usize % 3;
            let prev = script.set_move(round, 0, to, space.sample(&mut rng));
            let early = obj.evaluate(&script);
            let full = obj.evaluate_full(&script);
            prop_assert_eq!(early, full, "mutation {} diverged", step);
            if step % 2 == 1 {
                // Undo half the time so both directions are exercised.
                script.set_move(round, 0, to, prev);
            }
        }
        prop_assert!(obj.evaluations() == 8);
    }
}
