//! Sliced-vs-scalar equivalence for scripted attacks:
//!
//! * an [`Objective`] with the bit-sliced path attached scores arbitrary
//!   scripts **exactly** like the scalar full-horizon oracle
//!   ([`Objective::evaluate_full`]), under in-place mutation chains;
//! * ragged sweeps (scenario counts straddling the 64-lane word boundary)
//!   keep the equality;
//! * the plane transpose (`pack_lane` / `unpack_lane`) round-trips
//!   arbitrary bundles at arbitrary lane positions.

use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_attack::{MoveSpace, Objective, Script};
use sc_core::{Algorithm, CounterBuilder};
use sc_protocol::{BitVec, PlaneBuf};

fn a4() -> Algorithm {
    CounterBuilder::corollary1(1, 8).unwrap().build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// On A(4,1), a sliced-attached objective scores random scripts — and
    /// every in-place mutation of them — identically to the scalar
    /// full-horizon oracle, across all three move kinds.
    #[test]
    fn sliced_scripted_objective_equals_scalar_oracle(seed in proptest::any::<u64>()) {
        let algo = a4();
        let mut rng = SmallRng::seed_from_u64(seed);
        let fault = rng.random_range(0..4usize);
        let space = MoveSpace { raw_values: 5, salts: 3, max_lag: 3 };
        let rounds = rng.random_range(1..=4usize);
        let cycle_start = rng.random_range(0..rounds);
        let mut script =
            Script::random(4, vec![fault], rounds, cycle_start, &space, &mut rng);

        let mut obj = Objective::new(&algo, &algo, vec![fault], 0..5, 64).unwrap();
        prop_assert!(obj.attach_sliced(), "A(4,1) must lower");
        for step in 0..3 {
            let sliced = obj.evaluate(&script);
            let scalar = obj.evaluate_full(&script);
            prop_assert_eq!(sliced, scalar, "mutation step {} diverged", step);
            let to = (fault + 1 + step) % 4;
            script.set_move(step % rounds, 0, to, space.sample(&mut rng));
        }
    }

    /// The bundle transpose round-trips arbitrary widths at arbitrary lanes,
    /// including lanes beyond the first word and partial trailing planes.
    #[test]
    fn plane_transpose_round_trips(seed in proptest::any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let width = rng.random_range(1..=70usize);
        let lane_words = rng.random_range(1..=3usize);
        let mut buf = PlaneBuf::new(width, lane_words);
        let lanes: Vec<usize> =
            (0..4).map(|_| rng.random_range(0..lane_words * 64)).collect();
        let payloads: Vec<BitVec> = lanes
            .iter()
            .map(|_| {
                let mut bits = BitVec::new();
                for _ in 0..width {
                    bits.push_bit(rng.random_range(0..2u32) == 1);
                }
                bits
            })
            .collect();
        // Later packs may overwrite earlier lanes; verify against the last
        // write per lane.
        for (lane, bits) in lanes.iter().zip(&payloads) {
            buf.pack_lane(*lane, 0, bits);
        }
        for (i, (lane, bits)) in lanes.iter().zip(&payloads).enumerate() {
            if lanes[i + 1..].contains(lane) {
                continue;
            }
            let mut out = BitVec::new();
            buf.unpack_lane(*lane, 0, width, &mut out);
            prop_assert_eq!(&out, bits, "lane {} width {}", lane, width);
        }
    }
}

/// Ragged multi-word sweeps: 70 scenarios span two lane words with a ragged
/// tail, and a script mixing every move kind still scores exactly like the
/// scalar oracle — on a horizon long enough for many lanes to stabilise, so
/// the equality covers real stabilisation rounds, not just timeouts.
#[test]
fn ragged_multiword_sweep_matches_scalar_oracle() {
    use sc_attack::Move;
    let algo = a4();
    let rounds = vec![
        vec![
            Move::Echo(0),
            Move::Raw(3),
            Move::Stale { lag: 2, salt: 1 },
            Move::Raw(200),
        ],
        vec![
            Move::Stale { lag: 1, salt: 0 },
            Move::Echo(2),
            Move::Raw(0),
            Move::Echo(1),
        ],
    ];
    let script = Script::new(4, vec![2], rounds, 1).unwrap();
    let mut obj = Objective::new(&algo, &algo, vec![2], 0..70, 600).unwrap();
    assert!(obj.attach_sliced());
    let sliced = obj.evaluate(&script);
    let scalar = obj.evaluate_full(&script);
    assert_eq!(sliced, scalar);
    assert!(
        sliced.worst > 0,
        "a live attack sweep should register delay: {sliced:?}"
    );
    assert_eq!(obj.evaluations(), 2);
}

/// Stacks outside the lowering's gate (a boosting layer with `m = 3`) leave
/// the objective on the scalar path instead of attaching.
#[test]
fn unsupported_stacks_stay_scalar() {
    let inner = Algorithm::trivial(9 * 6u64.pow(5) * 4).unwrap();
    let wide = Algorithm::boosted(inner, 5, 1, 8, 0).unwrap();
    let mut obj = Objective::new(&wide, &wide, vec![1], 0..2, 64).unwrap();
    assert!(!obj.attach_sliced());
    assert!(!obj.is_sliced());
}
