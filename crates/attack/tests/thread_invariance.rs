//! Thread-count invariance of the pool-backed fan-outs this crate touches:
//!
//! * `SlicedBatch` verdicts on a real lowered protocol (A(4,1)) are
//!   bitwise identical at thread caps 1, 2 and 7;
//! * `search` (random + hill-climb) returns the same best script, delay
//!   and evaluation count at those caps;
//! * a `sweep_family` campaign with the attack pre-filter produces an
//!   identical checkpoint — ledger, survivors, finds — and identical
//!   filter audit counters on explicit 1-, 2- and 7-thread pools,
//!   including when the 7-thread sweep is budgeted into uneven chunks and
//!   resumed through the checkpoint codec mid-campaign.

use proptest::{prop_assert_eq, proptest, ProptestConfig};
use sc_attack::search::random_search;
use sc_attack::{AttackPreFilter, MoveSpace, SearchConfig};
use sc_core::{Algorithm, CounterBuilder};
use sc_sim::{sliced_crash, Scenario, SlicedBatch};
use sc_verifier::{sweep_family_on, Analyzer, SweepCheckpoint, SymmetricFamily};

fn a4() -> Algorithm {
    CounterBuilder::corollary1(1, 8).unwrap().build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn sliced_batch_verdicts_are_identical_at_caps_1_2_and_7(
        base_seed in proptest::any::<u32>(),
        scenarios in 1usize..130,
    ) {
        let algo = a4();
        let list =
            Scenario::seeds((base_seed as u64)..(base_seed as u64 + scenarios as u64));
        let seeds: Vec<u64> = list.iter().map(|s| s.seed).collect();
        let strategy = sliced_crash(&algo, [1], &seeds);
        let one = SlicedBatch::new(&algo, 64)
            .threads(1)
            .run(&list, &strategy)
            .unwrap();
        for threads in [2, 7] {
            let many = SlicedBatch::new(&algo, 64)
                .threads(threads)
                .run(&list, &strategy)
                .unwrap();
            prop_assert_eq!(&one.outcomes, &many.outcomes, "cap {}", threads);
        }
    }

    #[test]
    fn search_results_are_identical_at_caps_1_2_and_7(seed in proptest::any::<u64>()) {
        let algo = a4();
        let mut obj =
            sc_attack::Objective::new(&algo, &algo, vec![1], 0..4, 64).unwrap();
        obj.attach_sliced();
        let space = MoveSpace { raw_values: 5, salts: 2, max_lag: 2 };
        let mut cfg = SearchConfig::new(3, space, seed);
        cfg.budget = 24;
        cfg.threads = 1;
        let one = random_search(&obj, &cfg);
        for threads in [2, 7] {
            cfg.threads = threads;
            let many = random_search(&obj, &cfg);
            prop_assert_eq!(&one.best, &many.best, "cap {}", threads);
            prop_assert_eq!(one.delay, many.delay, "cap {}", threads);
            prop_assert_eq!(one.evaluations, many.evaluations, "cap {}", threads);
        }
    }
}

/// One full pre-filtered sweep of the n = 4 symmetric family per thread
/// cap, all folded to the same checkpoint and the same audit counters.
#[test]
fn prefiltered_sweep_checkpoints_are_identical_at_caps_1_2_and_7() {
    let family = SymmetricFamily::new(4, 1, 2, 2).unwrap();
    let total = family.len().unwrap();
    let sweep = |pool_workers: usize, threads: usize| {
        let pool = sc_exec::Pool::new(pool_workers);
        let mut filter = AttackPreFilter::new(4, 3, 24, 7);
        let mut analyzer = Analyzer::new();
        analyzer.dedup_fault_sets(true);
        let mut checkpoint = SweepCheckpoint::new();
        let outcome = sweep_family_on(
            &pool,
            threads,
            &family,
            &mut filter,
            &mut analyzer,
            &mut checkpoint,
            u64::MAX,
        )
        .unwrap();
        assert!(outcome.complete);
        (
            checkpoint,
            (filter.screened(), filter.rejected(), filter.evaluations()),
        )
    };
    let (serial, serial_audit) = sweep(0, 1);
    assert_eq!(serial.ledger.screened, total);
    assert_eq!(
        serial.ledger.screened,
        serial.ledger.filtered + serial.ledger.survivors
    );
    assert_eq!(serial.ledger.verified, serial.ledger.survivors);
    for (workers, threads) in [(1, 2), (6, 7)] {
        let (parallel, audit) = sweep(workers, threads);
        assert_eq!(parallel, serial, "sweep at cap {threads} diverges");
        assert_eq!(audit, serial_audit, "audit counters at cap {threads}");
    }
}

/// A budgeted 7-thread sweep resumed through the checkpoint codec in
/// uneven chunks must land on the serial one-shot checkpoint exactly —
/// mid-chunk resume points are part of the determinism contract.
#[test]
fn budgeted_parallel_sweep_resumes_mid_chunk_to_the_serial_checkpoint() {
    let family = SymmetricFamily::new(4, 1, 2, 2).unwrap();
    let one_shot = {
        let pool = sc_exec::Pool::new(0);
        let mut filter = AttackPreFilter::new(4, 3, 24, 7);
        let mut analyzer = Analyzer::new();
        let mut checkpoint = SweepCheckpoint::new();
        sweep_family_on(
            &pool,
            1,
            &family,
            &mut filter,
            &mut analyzer,
            &mut checkpoint,
            u64::MAX,
        )
        .unwrap();
        checkpoint
    };
    let pool = sc_exec::Pool::new(6);
    let mut filter = AttackPreFilter::new(4, 3, 24, 7);
    let mut analyzer = Analyzer::new();
    let mut resumed = SweepCheckpoint::new();
    loop {
        let outcome = sweep_family_on(
            &pool,
            7,
            &family,
            &mut filter,
            &mut analyzer,
            &mut resumed,
            7,
        )
        .unwrap();
        // Round-trip the checkpoint, as a killed campaign would.
        let mut bits = sc_protocol::BitVec::new();
        resumed.encode(&mut bits);
        resumed = SweepCheckpoint::decode(&mut bits.reader()).unwrap();
        if outcome.complete {
            break;
        }
    }
    assert_eq!(resumed, one_shot);
    // The forked filters screened every candidate exactly once.
    assert_eq!(filter.screened(), family.len().unwrap());
}
