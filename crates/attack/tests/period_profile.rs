//! Bound-tightness sweep on A(4,1) near the proven bound T(A) = 2304:
//! [`sc_attack::search::period_profile`] hunts with lasso periods dividing
//! the counter period (8), riding the bit-sliced engine — the scalar
//! engine stays the oracle for the strongest script found.

use sc_attack::search::{period_profile, SearchConfig};
use sc_attack::{MoveSpace, Objective};
use sc_core::CounterBuilder;

#[test]
fn a4_profile_sweeps_divisor_periods_near_the_bound() {
    let algo = CounterBuilder::corollary1(1, 8).unwrap().build().unwrap();
    // Horizon near T(A(4,1)) = 2304 — affordable only because every
    // evaluation is one bit-sliced pass.
    let mut obj = Objective::new(&algo, &algo, vec![3], 0..5, 2320).unwrap();
    assert!(obj.attach_sliced(), "A(4,1) must lower");

    let mut cfg = SearchConfig::new(
        8,
        MoveSpace {
            raw_values: 4,
            salts: 2,
            max_lag: 2,
        },
        7,
    );
    cfg.budget = 24;
    cfg.restarts = 1;
    cfg.threads = 1;

    let profile = period_profile(&obj, &cfg).expect("sliced objective unlocks the sweep");
    let periods: Vec<usize> = profile.iter().map(|p| p.period).collect();
    assert_eq!(periods, vec![1, 2, 4, 8], "divisors of the counter period");

    for point in &profile {
        assert!(point.report.evaluations > 0, "period {} ran", point.period);
        assert_eq!(
            point.report.best.cycle_len(),
            point.period,
            "scripts cycle with exactly the requested period"
        );
        assert_eq!(point.report.best.cycle_start(), 0);
        // Counting mod 8 with one Byzantine node stabilises well under the
        // proven bound on this sweep; the profile must stay sound (no
        // delay can exceed the horizon's non-stabilisation ceiling).
        assert!(point.report.delay.worst <= 2320);
    }

    // The strongest script of the whole profile re-scores identically on
    // the scalar full-horizon oracle: the near-bound sweep inherits the
    // sliced ≡ scalar contract.
    let best = profile
        .iter()
        .max_by_key(|p| p.report.delay)
        .expect("profile is non-empty");
    assert_eq!(obj.evaluate_full(&best.report.best), best.report.delay);
}
