//! Scripted attacks on the bit-sliced plane: [`SlicedScript`] translates a
//! [`Script`] into the face tables of [`sc_sim::SlicedStrategy`], so one
//! objective sweep advances 64 scenarios per word instead of one.
//!
//! The translation is semantics-preserving move by move:
//!
//! * [`Move::Echo`]`(salt)` → [`FaceRef::Honest`] of the `salt`-th correct
//!   node — the donor rule of [`sc_sim::adversaries::donor_id`], which the
//!   scalar [`crate::ScriptedAdversary`] uses;
//! * [`Move::Raw`]`(v)` → [`FaceRef::Packed`] naming a lane-uniform bundle
//!   holding the vocabulary state `raw_state(sender, v)`. The packed id is
//!   `g · 256 + v` — a *fixed* map over the full `u8` vocabulary, so every
//!   script evaluated against one compiled model agrees on what each id
//!   holds (the model asserts re-registrations are consistent);
//! * [`Move::Stale`]`{lag, salt}` → [`FaceRef::Ring`] of the same donor;
//!   the engine clamps the lag to the observed history and rewrites lag 0
//!   to an echo, exactly the scalar warm-up rule.
//!
//! Scripts cannot express per-lane variation, so the whole table is
//! lane-uniform — the cheapest kind of sliced strategy: no gather tables,
//! and every raw bundle folds into compile-time constants.

use sc_protocol::{FaceRef, NodeId, RoundFaces};
use sc_sim::adversaries::normalize_faults;
use sc_sim::{PackedInit, SlicedStrategy};

use crate::script::{Move, Script};

/// Dense raw-vocabulary stride of the packed-id map: faulty sender `g`'s
/// value `v` lives at packed id `g * RAW_STRIDE + v`.
const RAW_STRIDE: usize = 256;

/// A [`Script`] as a lane-uniform [`SlicedStrategy`]: the sliced twin of
/// [`crate::ScriptedAdversary`], with verdict-identical executions
/// (property-tested through [`crate::Objective`]'s two evaluation paths).
pub struct SlicedScript<'s, S> {
    script: &'s Script,
    faulty: Vec<NodeId>,
    honest: Vec<u32>,
    /// `raw_states[g][v]`: the vocabulary state faulty sender `g` fabricates
    /// for [`Move::Raw`]`(v)`, pre-resolved over the full `u8` range.
    raw_states: &'s [Vec<S>],
}

impl<'s, S> SlicedScript<'s, S> {
    /// Wraps `script` over a pre-resolved raw vocabulary (one dense
    /// 256-entry row per faulty sender, in fault-set order).
    ///
    /// # Panics
    ///
    /// Panics when `raw_states` does not hold exactly one full row per
    /// faulty sender.
    pub fn new(script: &'s Script, raw_states: &'s [Vec<S>]) -> Self {
        let faulty = normalize_faults(script.fault_set().iter().copied());
        assert_eq!(
            raw_states.len(),
            faulty.len(),
            "one raw vocabulary row per faulty sender"
        );
        assert!(
            raw_states.iter().all(|row| row.len() == RAW_STRIDE),
            "raw vocabulary rows must cover the full u8 range"
        );
        let honest = (0..script.n() as u32)
            .filter(|&v| faulty.binary_search(&NodeId::new(v as usize)).is_err())
            .collect();
        SlicedScript {
            script,
            faulty,
            honest,
            raw_states,
        }
    }

    /// The `salt`-th correct node — [`sc_sim::adversaries::donor_id`] on the
    /// sliced plane.
    fn donor(&self, salt: u8) -> u32 {
        self.honest[salt as usize % self.honest.len()]
    }
}

impl<'s, S: Clone> SlicedStrategy<S> for SlicedScript<'s, S> {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn max_lag(&self) -> usize {
        self.script.max_lag()
    }

    fn packed_bundles(&self) -> Vec<PackedInit<S>> {
        self.faulty
            .iter()
            .zip(self.raw_states)
            .flat_map(|(&node, row)| {
                row.iter().map(move |state| PackedInit::Uniform {
                    node,
                    state: state.clone(),
                })
            })
            .collect()
    }

    fn faces(&self, round: u64, n: usize, faces: &mut RoundFaces) {
        for g in 0..self.faulty.len() {
            for to in 0..n {
                faces.rows[g * n + to] = match self.script.move_at(round, g, to) {
                    Move::Echo(salt) => FaceRef::Honest(self.donor(salt)),
                    Move::Raw(value) => FaceRef::Packed((g * RAW_STRIDE + value as usize) as u16),
                    Move::Stale { lag, salt } => FaceRef::Ring {
                        lag,
                        donor: self.donor(salt),
                    },
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_rows(f: usize) -> Vec<Vec<u64>> {
        (0..f)
            .map(|g| {
                (0..RAW_STRIDE as u64)
                    .map(|v| g as u64 * 1000 + v)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn faces_translate_every_move_kind() {
        let script = Script::new(
            4,
            vec![1],
            vec![vec![
                Move::Echo(0),
                Move::Raw(7),
                Move::Stale { lag: 2, salt: 1 },
                Move::Echo(5),
            ]],
            0,
        )
        .unwrap();
        let rows = raw_rows(1);
        let strategy = SlicedScript::new(&script, &rows);
        assert_eq!(strategy.max_lag(), 2);
        let mut faces = RoundFaces::new(1, 4);
        strategy.faces(0, 4, &mut faces);
        // Honest nodes are {0, 2, 3}: salt 0 → 0, salt 1 → 2, salt 5 → 3.
        assert_eq!(faces.rows[0], FaceRef::Honest(0));
        assert_eq!(faces.rows[1], FaceRef::Packed(7));
        assert_eq!(faces.rows[2], FaceRef::Ring { lag: 2, donor: 2 });
        assert_eq!(faces.rows[3], FaceRef::Honest(3));
        // Lasso wrap: round 9 plays the same (single) scripted round.
        let mut later = RoundFaces::new(1, 4);
        strategy.faces(9, 4, &mut later);
        assert_eq!(later, faces);
    }

    #[test]
    fn packed_ids_use_the_dense_per_sender_stride() {
        let script = Script::new(4, vec![0, 2], vec![vec![Move::Raw(3); 8]], 0).unwrap();
        let rows = raw_rows(2);
        let strategy = SlicedScript::new(&script, &rows);
        let bundles = strategy.packed_bundles();
        assert_eq!(bundles.len(), 2 * RAW_STRIDE);
        let PackedInit::Uniform { node, state } = &bundles[RAW_STRIDE + 3] else {
            panic!("raw bundles are uniform");
        };
        assert_eq!(node.index(), 2);
        assert_eq!(*state, 1003);
        let mut faces = RoundFaces::new(2, 4);
        strategy.faces(0, 4, &mut faces);
        assert_eq!(faces.rows[1], FaceRef::Packed(3)); // sender group 0
        assert_eq!(faces.rows[4 + 1], FaceRef::Packed(RAW_STRIDE as u16 + 3));
    }
}
