//! The library-grade scripted adversary: executes any [`Script`] on the
//! live engine, with full snapshot support so scripted runs ride the
//! early-decision exit.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_core::{Algorithm, CounterState};
use sc_protocol::{MessageSource, NodeId, SyncProtocol};
use sc_sim::adversaries::{donor_id, normalize_faults};
use sc_sim::{Adversary, AdversarySnapshot, RoundContext, SnapshotSupport, StatePool};

use crate::script::{Move, Script};

/// The raw state vocabulary [`Move::Raw`] indexes into: a deterministic
/// map from a byte to a protocol state.
///
/// Two grades of vocabulary exist:
///
/// * **exact** — for protocols whose per-node state space is (a subset of)
///   small integers, `raw_state` is the identity embedding; this is what
///   makes witness replays bit-exact ([`Algorithm`]'s implementation is
///   exact for LUT and trivial counters);
/// * **sampled** — [`SampledRaw`] wraps any protocol and derives a
///   256-entry palette from the protocol's own state sampler, seeded per
///   index; still fully deterministic, so scripted runs stay
///   snapshot-capable.
pub trait RawState<S> {
    /// The state with vocabulary index `value`, as broadcast by `node`
    /// (state representations may be node-dependent).
    fn raw_state(&self, node: NodeId, value: u8) -> S;
}

impl<S, T: RawState<S> + ?Sized> RawState<S> for &T {
    fn raw_state(&self, node: NodeId, value: u8) -> S {
        (**self).raw_state(node, value)
    }
}

impl RawState<CounterState> for Algorithm {
    /// Exact for the enumerable state spaces (trivial values, LUT state
    /// indices — witness imports replay bit-for-bit); boosted stacks fall
    /// back to a deterministic per-index palette drawn from the counter's
    /// own state sampler.
    fn raw_state(&self, node: NodeId, value: u8) -> CounterState {
        match self {
            Algorithm::Trivial(t) => CounterState::Trivial(u64::from(value) % t.modulus()),
            Algorithm::Lut(l) => CounterState::Lut(l.clamp(value)),
            Algorithm::Boosted(_) => self.random_state(node, &mut palette_rng(value)),
        }
    }
}

/// A sampled [`RawState`] vocabulary over any protocol: index `v` maps to
/// the state the protocol samples under a seed derived from `v` — a
/// deterministic 256-state palette.
#[derive(Debug)]
pub struct SampledRaw<'a, P>(pub &'a P);

// Manual impls: a `SampledRaw` is a shared reference, copyable regardless
// of whether `P` itself is.
impl<'a, P> Clone for SampledRaw<'a, P> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<'a, P> Copy for SampledRaw<'a, P> {}

impl<'a, P: SyncProtocol> RawState<P::State> for SampledRaw<'a, P> {
    fn raw_state(&self, node: NodeId, value: u8) -> P::State {
        self.0.random_state(node, &mut palette_rng(value))
    }
}

/// The per-index palette generator shared by every sampled vocabulary.
fn palette_rng(value: u8) -> SmallRng {
    SmallRng::seed_from_u64(0x5c41_7ac4 ^ u64::from(value).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// An adversary that plays a [`Script`] verbatim on the borrow-based
/// message plane.
///
/// * [`Move::Echo`] moves are delivered as zero-copy
///   [`MessageSource::Broadcast`] leases of the chosen donor;
/// * [`Move::Raw`] moves fabricate the vocabulary state **once per (sender,
///   value) per round**, shared by every receiver scripted to see it;
/// * [`Move::Stale`] moves replay a donor ring of past honest broadcasts
///   (retained only as deep as the script's [`Script::max_lag`]), cloned at
///   most once per (lag, donor) per round.
///
/// The adversary borrows its script, so a search loop can edit one script
/// in place between evaluations without cloning move tables.
///
/// Scripted strategies are **deterministic**: [`Adversary::snapshot`]
/// writes the effective lasso position and the replay ring, so
/// `run_until_stable_early` takes cycle-based exits under scripted attacks
/// exactly as it does under the library's deterministic strategies.
pub struct ScriptedAdversary<'s, S, R> {
    script: &'s Script,
    raw: R,
    faulty: Vec<NodeId>,
    /// Past rounds' broadcast states (full `n`-vectors, faulty entries are
    /// meaningless placeholders), oldest first; the back entry is the
    /// current round. Empty when the script never replays.
    ring: VecDeque<Vec<S>>,
    /// Ring depth to retain: `max_lag + 1` (0 = no ring at all).
    retain: usize,
    /// Per-round fabrication cache: `(key, lease)` pairs, linear-scanned
    /// (scripts fabricate a handful of distinct states per round).
    cache: Vec<(u32, MessageSource)>,
}

impl<'s, S, R> ScriptedAdversary<'s, S, R> {
    /// An adversary playing `script`, resolving raw moves through the
    /// vocabulary `raw`.
    pub fn new(script: &'s Script, raw: R) -> Self {
        let max_lag = script.max_lag();
        ScriptedAdversary {
            faulty: normalize_faults(script.fault_set().iter().copied()),
            script,
            raw,
            ring: VecDeque::new(),
            retain: if max_lag == 0 { 0 } else { max_lag + 1 },
            cache: Vec::new(),
        }
    }

    /// The script being played.
    pub fn script(&self) -> &'s Script {
        self.script
    }
}

impl<'s, S, R> std::fmt::Debug for ScriptedAdversary<'s, S, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedAdversary")
            .field("faulty", &self.faulty)
            .field("rounds", &self.script.len())
            .finish_non_exhaustive()
    }
}

/// Cache keys for the per-round fabrication cache.
fn raw_key(g: usize, value: u8) -> u32 {
    (1 << 24) | ((g as u32) << 8) | u32::from(value)
}

fn stale_key(lag: usize, salt: u8) -> u32 {
    (2 << 24) | ((lag as u32) << 8) | u32::from(salt)
}

impl<'s, S, R> Adversary<S> for ScriptedAdversary<'s, S, R>
where
    S: Clone + std::fmt::Debug,
    R: RawState<S>,
{
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn begin_round(&mut self, ctx: &RoundContext<'_, S>, _pool: &mut StatePool<S>) {
        self.cache.clear();
        if self.retain == 0 {
            return;
        }
        // Record this round's broadcast for future stale moves, recycling
        // the buffer of the entry that falls out of the window (steady
        // state allocates nothing; warm-up allocates once per ring slot).
        let mut snapshot = if self.ring.len() >= self.retain {
            self.ring.pop_front().expect("ring is non-empty")
        } else {
            Vec::new()
        };
        snapshot.clear();
        snapshot.extend(ctx.honest.iter().cloned());
        self.ring.push_back(snapshot);
    }

    fn message(
        &mut self,
        from: NodeId,
        to: NodeId,
        ctx: &RoundContext<'_, S>,
        pool: &mut StatePool<S>,
    ) -> MessageSource {
        let g = self
            .faulty
            .binary_search(&from)
            .expect("message requested from a non-scripted node");
        match self.script.move_at(ctx.round, g, to.index()) {
            Move::Echo(salt) => MessageSource::Broadcast(donor_id(ctx, salt as usize)),
            Move::Raw(value) => {
                let key = raw_key(g, value);
                if let Some(&(_, lease)) = self.cache.iter().find(|(k, _)| *k == key) {
                    return lease;
                }
                let lease = pool.fabricate(self.raw.raw_state(from, value));
                self.cache.push((key, lease));
                lease
            }
            Move::Stale { lag, salt } => {
                let donor = donor_id(ctx, salt as usize);
                // The ring's back entry is the current round; clamp the lag
                // to the observed history (warm-up).
                let depth = (lag as usize).min(self.ring.len().saturating_sub(1));
                if depth == 0 {
                    return MessageSource::Broadcast(donor);
                }
                let key = stale_key(depth, salt);
                if let Some(&(_, lease)) = self.cache.iter().find(|(k, _)| *k == key) {
                    return lease;
                }
                let state = self.ring[self.ring.len() - 1 - depth][donor.index()].clone();
                let lease = pool.fabricate(state);
                self.cache.push((key, lease));
                lease
            }
        }
    }

    fn snapshot(&self, round: u64, out: &mut AdversarySnapshot<'_, S>) -> SnapshotSupport {
        // The script is playback data, constant for the execution; the
        // evolving state is the lasso position (which determines every
        // future position) and the replay ring. The per-round cache is
        // recomputed from both every round.
        if self.script.is_empty() {
            out.word(0);
        } else {
            out.word(self.script.index_at(round) as u64 + 1);
        }
        out.word(self.ring.len() as u64);
        for snapshot in &self.ring {
            for node in 0..self.script.n() {
                let id = NodeId::new(node);
                if self.faulty.binary_search(&id).is_err() {
                    out.state(id, &snapshot[node]);
                }
            }
        }
        SnapshotSupport::Deterministic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_sim::testing::TestRound;

    /// A raw vocabulary over plain `u64` states: identity embedding.
    #[derive(Clone, Copy)]
    struct Ident;
    impl RawState<u64> for Ident {
        fn raw_state(&self, _node: NodeId, value: u8) -> u64 {
            u64::from(value)
        }
    }

    fn script(rounds: Vec<Vec<Move>>, cycle_start: usize) -> Script {
        Script::new(4, vec![1], rounds, cycle_start).unwrap()
    }

    #[test]
    fn echo_moves_lease_broadcasts_without_fabricating() {
        let s = script(vec![vec![Move::Echo(0); 4]], 0);
        let mut adv = ScriptedAdversary::new(&s, Ident);
        let round = TestRound::new(vec![10u64, 20, 30, 40], [1]);
        let mut pool = StatePool::new();
        let ctx = round.ctx(0);
        adv.begin_round(&ctx, &mut pool);
        let src = adv.message(NodeId::new(1), NodeId::new(0), &ctx, &mut pool);
        assert_eq!(src, MessageSource::Broadcast(NodeId::new(0)));
        assert_eq!(pool.fabricated_total(), 0);
    }

    #[test]
    fn raw_moves_fabricate_once_per_value_per_round() {
        let s = script(vec![vec![Move::Raw(9); 4]], 0);
        let mut adv = ScriptedAdversary::new(&s, Ident);
        let round = TestRound::new(vec![0u64; 4], [1]);
        let mut pool = StatePool::new();
        let ctx = round.ctx(0);
        adv.begin_round(&ctx, &mut pool);
        let a = adv.message(NodeId::new(1), NodeId::new(0), &ctx, &mut pool);
        let b = adv.message(NodeId::new(1), NodeId::new(2), &ctx, &mut pool);
        let c = adv.message(NodeId::new(1), NodeId::new(3), &ctx, &mut pool);
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(pool.fabricated_total(), 1, "one fabrication, three leases");
        assert_eq!(*pool.resolve(round.honest(), a), 9);
    }

    #[test]
    fn stale_moves_replay_the_ring_and_clamp_warmup() {
        let s = script(vec![vec![Move::Stale { lag: 2, salt: 0 }; 4]], 0);
        let mut adv = ScriptedAdversary::new(&s, Ident);
        let mut pool = StatePool::new();

        // Round 0: no history yet — degrades to an echo of the donor.
        let r0 = TestRound::new(vec![1u64, 2, 3, 4], [1]);
        adv.begin_round(&r0.ctx(0), &mut pool);
        let src = adv.message(NodeId::new(1), NodeId::new(0), &r0.ctx(0), &mut pool);
        assert!(matches!(src, MessageSource::Broadcast(_)));

        // Round 1: only one round of history — lag clamps to 1.
        let r1 = TestRound::new(vec![5u64, 6, 7, 8], [1]);
        pool.begin_round();
        adv.begin_round(&r1.ctx(1), &mut pool);
        let src = adv.message(NodeId::new(1), NodeId::new(0), &r1.ctx(1), &mut pool);
        assert_eq!(*pool.resolve(r1.honest(), src), 1, "round 0's donor state");

        // Round 2: full lag available.
        let r2 = TestRound::new(vec![9u64, 10, 11, 12], [1]);
        pool.begin_round();
        adv.begin_round(&r2.ctx(2), &mut pool);
        let src = adv.message(NodeId::new(1), NodeId::new(0), &r2.ctx(2), &mut pool);
        assert_eq!(*pool.resolve(r2.honest(), src), 1, "still round 0 (lag 2)");
        let again = adv.message(NodeId::new(1), NodeId::new(2), &r2.ctx(2), &mut pool);
        assert_eq!(src, again, "cached per (lag, donor) within the round");
    }

    #[test]
    fn snapshot_folds_lasso_position_and_ring() {
        let s = script(
            vec![
                vec![Move::Stale { lag: 1, salt: 0 }; 4],
                vec![Move::Echo(0); 4],
            ],
            0,
        );
        let mut adv = ScriptedAdversary::new(&s, Ident);
        let mut pool = StatePool::new();
        let r0 = TestRound::new(vec![1u64, 2, 3, 4], [1]);
        adv.begin_round(&r0.ctx(0), &mut pool);

        let capture = |adv: &ScriptedAdversary<'_, u64, Ident>, round: u64| {
            let mut bits = sc_protocol::BitVec::new();
            let mut encode =
                |_: NodeId, s: &u64, out: &mut sc_protocol::BitVec| out.push_bits(*s, 64);
            let mut writer = AdversarySnapshot::new(&mut bits, &mut encode);
            assert_eq!(
                adv.snapshot(round, &mut writer),
                SnapshotSupport::Deterministic
            );
            bits
        };
        // Rounds 2 and 4 share the lasso position (cycle of length 2), so
        // with identical rings the snapshots agree; rounds 2 and 3 differ.
        let a = capture(&adv, 2);
        let b = capture(&adv, 4);
        let c = capture(&adv, 3);
        assert_eq!(a.words(), b.words());
        assert_eq!(a.len(), b.len());
        assert_ne!((a.len(), a.words().to_vec()), (c.len(), c.words().to_vec()));
    }

    #[test]
    fn algorithm_vocabulary_is_exact_for_luts() {
        use sc_core::LutSpec;
        let rows: Vec<u8> = vec![0; 16];
        let algo = Algorithm::lut(LutSpec {
            n: 4,
            f: 1,
            c: 2,
            states: 2,
            transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
            output: vec![vec![0, 1]; 4],
            stabilization_bound: 0,
        })
        .unwrap();
        assert_eq!(algo.raw_state(NodeId::new(0), 1), CounterState::Lut(1));
        assert_eq!(algo.raw_state(NodeId::new(2), 0), CounterState::Lut(0));
        // Out-of-range vocabulary indices clamp into the state space.
        assert_eq!(algo.raw_state(NodeId::new(0), 7), CounterState::Lut(1));
    }
}
