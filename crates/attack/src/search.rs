//! Guided search over the scripted equivocation space: random restarts,
//! greedy per-move hill-climbing, and beam search over round prefixes.
//!
//! Every strategy is **deterministic from [`SearchConfig::seed`]** — each
//! restart/worker derives its generator from `(seed, task index)`, so
//! results are bitwise independent of the thread count — and fans restarts
//! out with [`std::thread::scope`] behind the `parallel` feature.
//!
//! Budgets are counted in sweep evaluations ([`Objective::evaluate`]
//! calls); a strategy stops mid-pass when its slice is spent, so a
//! [`SearchConfig::budget`] bounds the work (budgets smaller than the
//! restart count shrink the restart pool instead of overrunning; every
//! strategy performs at least one evaluation, so a zero budget still
//! costs one sweep per strategy invoked).

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_protocol::Fingerprint;

use crate::adversary::RawState;
use crate::objective::{Delay, Objective};
use crate::script::{MoveSpace, Script};

/// Tuning knobs of one search run.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Explicitly scripted rounds per candidate.
    pub rounds: usize,
    /// Lasso wrap point of sampled candidates (beam candidates always wrap
    /// their whole prefix, i.e. use 0).
    pub cycle_start: usize,
    /// The move vocabulary candidates draw from.
    pub space: MoveSpace,
    /// Master seed; every sampled script and mutation derives from it.
    pub seed: u64,
    /// Total sweep-evaluation budget of the run.
    pub budget: u64,
    /// Independent restarts (hill-climb) / workers (random search).
    pub restarts: usize,
    /// Beam width of [`beam_search`].
    pub beam_width: usize,
    /// Sampled extensions per beam member per round.
    pub expansions: usize,
    /// Worker-thread cap for the `parallel` fan-out.
    pub threads: usize,
}

impl SearchConfig {
    /// A sensible default configuration for `rounds`-round scripts over
    /// `space`, seeded by `seed`.
    pub fn new(rounds: usize, space: MoveSpace, seed: u64) -> SearchConfig {
        SearchConfig {
            rounds: rounds.max(1),
            cycle_start: 0,
            space,
            seed,
            budget: 256,
            restarts: 4,
            beam_width: 4,
            expansions: 4,
            threads: std::thread::available_parallelism().map_or(1, |t| t.get()),
        }
    }
}

/// Outcome of one search run.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// The strongest script found.
    pub best: Script,
    /// Its sweep delay.
    pub delay: Delay,
    /// Sweep evaluations spent.
    pub evaluations: u64,
}

/// Derives a task-local generator: restarts are independent of scheduling.
fn task_rng(seed: u64, task: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ task.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Splits the evaluation budget over restart tasks. Budgets smaller than
/// the restart count run fewer restarts instead of overrunning: the total
/// stays ≤ [`SearchConfig::budget`] (except for the guaranteed single
/// evaluation of a zero budget).
fn split_budget(cfg: &SearchConfig) -> (u64, u64) {
    let tasks = (cfg.restarts as u64).clamp(1, cfg.budget.max(1));
    let slice = (cfg.budget / tasks).max(1);
    (tasks, slice)
}

/// Correct receivers of the objective's network, in ascending order.
fn receivers<P: sc_protocol::Counter, R>(obj: &Objective<'_, P, R>) -> Vec<usize> {
    (0..obj.protocol().n())
        .filter(|v| !obj.fault_set().contains(v))
        .collect()
}

/// One random-search worker: samples `slice` fresh scripts, keeps the best.
fn random_slice<P, R>(
    obj: &mut Objective<'_, P, R>,
    cfg: &SearchConfig,
    task: u64,
    slice: u64,
) -> (Script, Delay, u64)
where
    P: Fingerprint,
    R: RawState<P::State>,
{
    let mut rng = task_rng(cfg.seed, task);
    let n = obj.protocol().n();
    let fault_set = obj.fault_set().to_vec();
    let mut best_script = Script::random(
        n,
        fault_set.clone(),
        cfg.rounds,
        cfg.cycle_start,
        &cfg.space,
        &mut rng,
    );
    let mut best = obj.evaluate(&best_script);
    let mut used = 1u64;
    while used < slice {
        let candidate = Script::random(
            n,
            fault_set.clone(),
            cfg.rounds,
            cfg.cycle_start,
            &cfg.space,
            &mut rng,
        );
        let delay = obj.evaluate(&candidate);
        used += 1;
        if delay > best {
            best = delay;
            best_script = candidate;
        }
    }
    (best_script, best, used)
}

/// One hill-climb restart: start from a random script and greedily mutate
/// one (round, sender, receiver) move at a time, keeping strict
/// improvements — edits are applied **in place** and undone on rejection
/// ([`Script::set_move`]), so no script is cloned per candidate.
fn climb_restart<P, R>(
    obj: &mut Objective<'_, P, R>,
    cfg: &SearchConfig,
    task: u64,
    slice: u64,
) -> (Script, Delay, u64)
where
    P: Fingerprint,
    R: RawState<P::State>,
{
    let mut rng = task_rng(cfg.seed, task.wrapping_add(0x5eed));
    let n = obj.protocol().n();
    let fault_set = obj.fault_set().to_vec();
    let receivers = receivers(obj);
    let mut script = Script::random(
        n,
        fault_set.clone(),
        cfg.rounds,
        cfg.cycle_start,
        &cfg.space,
        &mut rng,
    );
    let mut best = obj.evaluate(&script);
    let mut used = 1u64;
    'passes: loop {
        let mut improved = false;
        for round in 0..cfg.rounds {
            for g in 0..fault_set.len() {
                for &to in &receivers {
                    if used >= slice {
                        break 'passes;
                    }
                    let candidate = cfg.space.sample(&mut rng);
                    let previous = script.set_move(round, g, to, candidate);
                    if previous == candidate {
                        continue;
                    }
                    let delay = obj.evaluate(&script);
                    used += 1;
                    if delay > best {
                        best = delay;
                        improved = true;
                    } else {
                        script.set_move(round, g, to, previous);
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    (script, best, used)
}

/// Folds per-task outcomes (in task order) into a report; ties keep the
/// earliest task, so the result is scheduling-independent.
fn fold(outcomes: Vec<(Script, Delay, u64)>) -> SearchReport {
    let mut outcomes = outcomes.into_iter();
    let (best, delay, mut evaluations) = outcomes.next().expect("at least one search task");
    let (mut best, mut delay) = (best, delay);
    for (script, d, used) in outcomes {
        evaluations += used;
        if d > delay {
            delay = d;
            best = script;
        }
    }
    SearchReport {
        best,
        delay,
        evaluations,
    }
}

/// Runs `tasks` independent workers, each on its own clone of the
/// objective, fanning out across up to [`SearchConfig::threads`] OS
/// threads. Results are identical for any thread count.
#[cfg(feature = "parallel")]
fn fan_out<P, R, W>(
    obj: &Objective<'_, P, R>,
    cfg: &SearchConfig,
    tasks: u64,
    slice: u64,
    worker: W,
) -> SearchReport
where
    P: Fingerprint + Sync,
    P::State: Send + Sync,
    R: RawState<P::State> + Clone + Send + Sync,
    W: Fn(&mut Objective<'_, P, R>, &SearchConfig, u64, u64) -> (Script, Delay, u64) + Sync,
{
    let threads = cfg.threads.clamp(1, tasks.max(1) as usize);
    if threads == 1 {
        let mut local = obj.clone();
        return fold(
            (0..tasks.max(1))
                .map(|task| worker(&mut local, cfg, task, slice))
                .collect(),
        );
    }
    let mut slots: Vec<Option<(Script, Delay, u64)>> = (0..tasks.max(1)).map(|_| None).collect();
    std::thread::scope(|scope| {
        let worker = &worker;
        let handles: Vec<_> = (0..threads)
            .map(|k| {
                let mut local = obj.clone();
                scope.spawn(move || {
                    (k as u64..tasks.max(1))
                        .step_by(threads)
                        .map(|task| (task, worker(&mut local, cfg, task, slice)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for handle in handles {
            for (task, outcome) in handle.join().expect("search worker panicked") {
                slots[task as usize] = Some(outcome);
            }
        }
    });
    fold(
        slots
            .into_iter()
            .map(|slot| slot.expect("every task ran exactly once"))
            .collect(),
    )
}

/// Serial scheduling (the `parallel` feature is disabled).
#[cfg(not(feature = "parallel"))]
fn fan_out<P, R, W>(
    obj: &Objective<'_, P, R>,
    cfg: &SearchConfig,
    tasks: u64,
    slice: u64,
    worker: W,
) -> SearchReport
where
    P: Fingerprint,
    R: RawState<P::State> + Clone,
    W: Fn(&mut Objective<'_, P, R>, &SearchConfig, u64, u64) -> (Script, Delay, u64),
{
    let mut local = obj.clone();
    fold(
        (0..tasks.max(1))
            .map(|task| worker(&mut local, cfg, task, slice))
            .collect(),
    )
}

/// Random restarts: [`SearchConfig::restarts`] independent workers sample
/// fresh scripts and keep the strongest — the coverage baseline every
/// guided strategy must beat.
pub fn random_search<P, R>(obj: &Objective<'_, P, R>, cfg: &SearchConfig) -> SearchReport
where
    P: Fingerprint + Sync,
    P::State: Send + Sync,
    R: RawState<P::State> + Clone + Send + Sync,
{
    let (tasks, slice) = split_budget(cfg);
    fan_out(obj, cfg, tasks, slice, random_slice)
}

/// Greedy per-move hill-climb with random restarts: the workhorse strategy
/// (best delay found per evaluation in practice).
pub fn hill_climb<P, R>(obj: &Objective<'_, P, R>, cfg: &SearchConfig) -> SearchReport
where
    P: Fingerprint + Sync,
    P::State: Send + Sync,
    R: RawState<P::State> + Clone + Send + Sync,
{
    let (tasks, slice) = split_budget(cfg);
    fan_out(obj, cfg, tasks, slice, climb_restart)
}

/// Beam search over round prefixes: grow scripts one round at a time,
/// keeping the [`SearchConfig::beam_width`] strongest prefixes (each
/// prefix is scored as its own lasso, wrapping from round 0).
pub fn beam_search<P, R>(obj: &Objective<'_, P, R>, cfg: &SearchConfig) -> SearchReport
where
    P: Fingerprint,
    R: RawState<P::State> + Clone,
{
    let mut obj = obj.clone();
    let mut rng = task_rng(cfg.seed, 0xbea0);
    let n = obj.protocol().n();
    let fault_set = obj.fault_set().to_vec();
    let width = fault_set.len() * n;
    let mut used = 0u64;
    let mut beam: Vec<(Script, Delay)> = Vec::new();
    for _ in 0..cfg.beam_width.max(1) {
        if used >= cfg.budget && !beam.is_empty() {
            break;
        }
        let script = Script::random(n, fault_set.clone(), 1, 0, &cfg.space, &mut rng);
        let delay = obj.evaluate(&script);
        used += 1;
        beam.push((script, delay));
    }
    for _ in 1..cfg.rounds {
        let mut candidates: Vec<(Script, Delay)> = Vec::new();
        for (script, _) in &beam {
            for _ in 0..cfg.expansions.max(1) {
                if used >= cfg.budget {
                    break;
                }
                let mut extended = script.clone();
                extended.push_round((0..width).map(|_| cfg.space.sample(&mut rng)).collect());
                let delay = obj.evaluate(&extended);
                used += 1;
                candidates.push((extended, delay));
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Stable descending sort: ties keep generation order, so the beam
        // is deterministic.
        candidates.sort_by_key(|candidate| std::cmp::Reverse(candidate.1));
        candidates.truncate(cfg.beam_width.max(1));
        beam = candidates;
    }
    let (best, delay) = beam
        .into_iter()
        .reduce(|acc, item| if item.1 > acc.1 { item } else { acc })
        .expect("beam holds at least one script");
    SearchReport {
        best,
        delay,
        evaluations: used,
    }
}

/// The combined search: splits the budget over random restarts, beam
/// search, and hill-climbing (which gets the largest share), and returns
/// the strongest script found. Deterministic from the seed.
pub fn search<P, R>(obj: &Objective<'_, P, R>, cfg: &SearchConfig) -> SearchReport
where
    P: Fingerprint + Sync,
    P::State: Send + Sync,
    R: RawState<P::State> + Clone + Send + Sync,
{
    let mut random_cfg = cfg.clone();
    random_cfg.budget = cfg.budget / 4;
    let mut beam_cfg = cfg.clone();
    beam_cfg.budget = cfg.budget / 4;
    let mut climb_cfg = cfg.clone();
    climb_cfg.budget = cfg.budget - random_cfg.budget - beam_cfg.budget;

    let mut best = random_search(obj, &random_cfg);
    for candidate in [beam_search(obj, &beam_cfg), hill_climb(obj, &climb_cfg)] {
        best.evaluations += candidate.evaluations;
        if candidate.delay > best.delay {
            best.best = candidate.best;
            best.delay = candidate.delay;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SampledRaw;
    use sc_sim::testing::FollowMax;

    fn objective(p: &FollowMax) -> Objective<'_, FollowMax, SampledRaw<'_, FollowMax>> {
        Objective::new(p, SampledRaw(p), vec![1], 0..4, 64).unwrap()
    }

    fn config(budget: u64) -> SearchConfig {
        let mut cfg = SearchConfig::new(
            2,
            MoveSpace {
                raw_values: 4,
                salts: 3,
                max_lag: 2,
            },
            42,
        );
        cfg.budget = budget;
        cfg.restarts = 2;
        cfg
    }

    #[test]
    fn strategies_respect_the_budget_and_find_attacks() {
        let p = FollowMax { n: 4, c: 8 };
        let obj = objective(&p);
        for (name, report) in [
            ("random", random_search(&obj, &config(24))),
            ("climb", hill_climb(&obj, &config(24))),
            ("beam", beam_search(&obj, &config(24))),
        ] {
            assert!(
                report.evaluations <= 24,
                "{name} overran its budget: {}",
                report.evaluations
            );
            // FollowMax has resilience 0: any serious search finds an
            // attack that at least delays stabilisation.
            assert!(report.delay.worst >= 1, "{name} found nothing at all");
        }
    }

    #[test]
    fn searches_are_deterministic_and_thread_count_invariant() {
        let p = FollowMax { n: 4, c: 8 };
        let obj = objective(&p);
        let mut one = config(20);
        one.threads = 1;
        let mut many = config(20);
        many.threads = 4;
        let a = hill_climb(&obj, &one);
        let b = hill_climb(&obj, &many);
        assert_eq!(a.best, b.best);
        assert_eq!(a.delay, b.delay);
        assert_eq!(a.evaluations, b.evaluations);
        let c = hill_climb(&obj, &one);
        assert_eq!(a.best, c.best, "same seed, same result");
    }

    #[test]
    fn combined_search_beats_or_matches_pure_random() {
        let p = FollowMax { n: 4, c: 8 };
        let obj = objective(&p);
        let random = random_search(&obj, &config(32));
        let combined = search(&obj, &config(32));
        assert!(
            combined.delay >= random.delay || combined.delay.worst >= random.delay.worst,
            "combined {:?} vs random {:?}",
            combined.delay,
            random.delay
        );
    }
}
