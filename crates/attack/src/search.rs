//! Guided search over the scripted equivocation space: random restarts,
//! greedy per-move hill-climbing, beam search over round prefixes, and
//! simulated annealing over *structured* edits (row copies, round swaps,
//! prefix crossover) — plus a bound-tightness [`period_profile`] that
//! sweeps lasso periods dividing the counter period, gated behind the
//! bit-sliced engine.
//!
//! Every strategy is **deterministic from [`SearchConfig::seed`]** — each
//! restart/worker derives its generator from `(seed, task index)`, so
//! results are bitwise independent of the thread count — and fans restarts
//! out on the persistent `sc-exec` pool behind the `parallel` feature.
//!
//! Budgets are counted in sweep evaluations ([`Objective::evaluate`]
//! calls); a strategy stops mid-pass when its slice is spent, so a
//! [`SearchConfig::budget`] bounds the work (budgets smaller than the
//! restart count shrink the restart pool instead of overrunning; every
//! strategy performs at least one evaluation, so a zero budget still
//! costs one sweep per strategy invoked).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_protocol::Fingerprint;

use crate::adversary::RawState;
use crate::objective::{Delay, Objective};
use crate::script::{Move, MoveSpace, Script};

/// Tuning knobs of one search run.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Explicitly scripted rounds per candidate.
    pub rounds: usize,
    /// Lasso wrap point of sampled candidates (beam candidates always wrap
    /// their whole prefix, i.e. use 0).
    pub cycle_start: usize,
    /// The move vocabulary candidates draw from.
    pub space: MoveSpace,
    /// Master seed; every sampled script and mutation derives from it.
    pub seed: u64,
    /// Total sweep-evaluation budget of the run.
    pub budget: u64,
    /// Independent restarts (hill-climb) / workers (random search).
    pub restarts: usize,
    /// Beam width of [`beam_search`].
    pub beam_width: usize,
    /// Sampled extensions per beam member per round.
    pub expansions: usize,
    /// Worker-thread cap for the `parallel` fan-out.
    pub threads: usize,
}

impl SearchConfig {
    /// A sensible default configuration for `rounds`-round scripts over
    /// `space`, seeded by `seed`.
    pub fn new(rounds: usize, space: MoveSpace, seed: u64) -> SearchConfig {
        SearchConfig {
            rounds: rounds.max(1),
            cycle_start: 0,
            space,
            seed,
            budget: 256,
            restarts: 4,
            beam_width: 4,
            expansions: 4,
            threads: sc_exec::threads(),
        }
    }
}

/// Outcome of one search run.
#[derive(Clone, Debug)]
pub struct SearchReport {
    /// The strongest script found.
    pub best: Script,
    /// Its sweep delay.
    pub delay: Delay,
    /// Sweep evaluations spent.
    pub evaluations: u64,
}

/// Derives a task-local generator: restarts are independent of scheduling.
fn task_rng(seed: u64, task: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ task.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Splits the evaluation budget over restart tasks. Budgets smaller than
/// the restart count run fewer restarts instead of overrunning: the total
/// stays ≤ [`SearchConfig::budget`] (except for the guaranteed single
/// evaluation of a zero budget).
fn split_budget(cfg: &SearchConfig) -> (u64, u64) {
    let tasks = (cfg.restarts as u64).clamp(1, cfg.budget.max(1));
    let slice = (cfg.budget / tasks).max(1);
    (tasks, slice)
}

/// Correct receivers of the objective's network, in ascending order.
fn receivers<P: sc_protocol::Counter, R>(obj: &Objective<'_, P, R>) -> Vec<usize> {
    (0..obj.protocol().n())
        .filter(|v| !obj.fault_set().contains(v))
        .collect()
}

/// One random-search worker: samples `slice` fresh scripts, keeps the best.
fn random_slice<P, R>(
    obj: &mut Objective<'_, P, R>,
    cfg: &SearchConfig,
    task: u64,
    slice: u64,
) -> (Script, Delay, u64)
where
    P: Fingerprint,
    R: RawState<P::State>,
{
    let mut rng = task_rng(cfg.seed, task);
    let n = obj.protocol().n();
    let fault_set = obj.fault_set().to_vec();
    let mut best_script = Script::random(
        n,
        fault_set.clone(),
        cfg.rounds,
        cfg.cycle_start,
        &cfg.space,
        &mut rng,
    );
    let mut best = obj.evaluate(&best_script);
    let mut used = 1u64;
    while used < slice {
        let candidate = Script::random(
            n,
            fault_set.clone(),
            cfg.rounds,
            cfg.cycle_start,
            &cfg.space,
            &mut rng,
        );
        let delay = obj.evaluate(&candidate);
        used += 1;
        if delay > best {
            best = delay;
            best_script = candidate;
        }
    }
    (best_script, best, used)
}

/// One hill-climb restart: start from a random script and greedily mutate
/// one (round, sender, receiver) move at a time, keeping strict
/// improvements — edits are applied **in place** and undone on rejection
/// ([`Script::set_move`]), so no script is cloned per candidate.
fn climb_restart<P, R>(
    obj: &mut Objective<'_, P, R>,
    cfg: &SearchConfig,
    task: u64,
    slice: u64,
) -> (Script, Delay, u64)
where
    P: Fingerprint,
    R: RawState<P::State>,
{
    let mut rng = task_rng(cfg.seed, task.wrapping_add(0x5eed));
    let n = obj.protocol().n();
    let fault_set = obj.fault_set().to_vec();
    let receivers = receivers(obj);
    let mut script = Script::random(
        n,
        fault_set.clone(),
        cfg.rounds,
        cfg.cycle_start,
        &cfg.space,
        &mut rng,
    );
    let mut best = obj.evaluate(&script);
    let mut used = 1u64;
    'passes: loop {
        let mut improved = false;
        for round in 0..cfg.rounds {
            for g in 0..fault_set.len() {
                for &to in &receivers {
                    if used >= slice {
                        break 'passes;
                    }
                    let candidate = cfg.space.sample(&mut rng);
                    let previous = script.set_move(round, g, to, candidate);
                    if previous == candidate {
                        continue;
                    }
                    let delay = obj.evaluate(&script);
                    used += 1;
                    if delay > best {
                        best = delay;
                        improved = true;
                    } else {
                        script.set_move(round, g, to, previous);
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    (script, best, used)
}

/// Copies faulty sender `g`'s whole row (its moves toward every receiver)
/// from explicit round `src` into round `dst`, returning the overwritten
/// row for undo. `src` must differ from `dst`.
fn copy_row(script: &mut Script, src: usize, dst: usize, g: usize) -> Vec<Move> {
    debug_assert_ne!(src, dst);
    (0..script.n())
        .map(|to| {
            let m = script.move_at(src as u64, g, to);
            script.set_move(dst, g, to, m)
        })
        .collect()
}

/// Restores a row previously displaced by [`copy_row`].
fn restore_row(script: &mut Script, dst: usize, g: usize, prev: &[Move]) {
    for (to, &m) in prev.iter().enumerate() {
        script.set_move(dst, g, to, m);
    }
}

/// Swaps two explicit rounds in place (its own inverse).
fn swap_rounds(script: &mut Script, a: usize, b: usize) {
    let n = script.n();
    for g in 0..script.fault_set().len() {
        for to in 0..n {
            let ma = script.move_at(a as u64, g, to);
            let mb = script.set_move(b, g, to, ma);
            script.set_move(a, g, to, mb);
        }
    }
}

/// Overwrites rounds `0..k` of `current` with the donor's prefix
/// (crossover), returning the displaced moves row-major for undo.
fn splice_prefix(current: &mut Script, donor: &Script, k: usize) -> Vec<Move> {
    let n = current.n();
    let f = current.fault_set().len();
    let mut prev = Vec::with_capacity(k * f * n);
    for round in 0..k {
        for g in 0..f {
            for to in 0..n {
                let m = donor.move_at(round as u64, g, to);
                prev.push(current.set_move(round, g, to, m));
            }
        }
    }
    prev
}

/// Restores a prefix previously displaced by [`splice_prefix`].
fn restore_prefix(current: &mut Script, k: usize, prev: &[Move]) {
    let n = current.n();
    let f = current.fault_set().len();
    let mut moves = prev.iter();
    for round in 0..k {
        for g in 0..f {
            for to in 0..n {
                current.set_move(round, g, to, *moves.next().expect("prefix undo width"));
            }
        }
    }
}

/// Inverse of one structured edit.
enum Undo {
    Point {
        round: usize,
        g: usize,
        to: usize,
        prev: Move,
    },
    Row {
        dst: usize,
        g: usize,
        prev: Vec<Move>,
    },
    Swap {
        a: usize,
        b: usize,
    },
    Prefix {
        k: usize,
        prev: Vec<Move>,
    },
}

/// One annealing restart: a random walk over **structured** edits — point
/// mutations, whole-row copies, round swaps, and prefix crossover with the
/// restart's best-so-far script — accepting strict improvements always and
/// regressions with a probability that cools linearly over the slice.
/// Structured edits move many coordinates at once, so they escape the
/// single-move local optima [`climb_restart`] gets stuck in; the downhill
/// acceptance keeps the walk from re-converging to them.
fn anneal_restart<P, R>(
    obj: &mut Objective<'_, P, R>,
    cfg: &SearchConfig,
    task: u64,
    slice: u64,
) -> (Script, Delay, u64)
where
    P: Fingerprint,
    R: RawState<P::State>,
{
    let mut rng = task_rng(cfg.seed, task.wrapping_add(0xa22ea1));
    let n = obj.protocol().n();
    let fault_set = obj.fault_set().to_vec();
    let f = fault_set.len();
    let receivers = receivers(obj);
    let mut current = Script::random(
        n,
        fault_set.clone(),
        cfg.rounds,
        cfg.cycle_start,
        &cfg.space,
        &mut rng,
    );
    let mut current_delay = obj.evaluate(&current);
    let mut best = current.clone();
    let mut best_delay = current_delay;
    let mut used = 1u64;
    while used < slice {
        let rounds = current.len();
        // Row copy / round swap / crossover need two distinct rounds.
        let kind = if rounds >= 2 {
            rng.random_range(0..4u8)
        } else {
            0
        };
        let undo = match kind {
            0 => {
                let round = rng.random_range(0..rounds);
                let g = rng.random_range(0..f);
                let to = receivers[rng.random_range(0..receivers.len())];
                let prev = current.set_move(round, g, to, cfg.space.sample(&mut rng));
                Undo::Point { round, g, to, prev }
            }
            1 => {
                let src = rng.random_range(0..rounds);
                let mut dst = rng.random_range(0..rounds - 1);
                if dst >= src {
                    dst += 1;
                }
                let g = rng.random_range(0..f);
                let prev = copy_row(&mut current, src, dst, g);
                Undo::Row { dst, g, prev }
            }
            2 => {
                let a = rng.random_range(0..rounds);
                let mut b = rng.random_range(0..rounds - 1);
                if b >= a {
                    b += 1;
                }
                swap_rounds(&mut current, a, b);
                Undo::Swap { a, b }
            }
            _ => {
                let k = rng.random_range(1..=rounds);
                let prev = splice_prefix(&mut current, &best, k);
                Undo::Prefix { k, prev }
            }
        };
        let delay = obj.evaluate(&current);
        used += 1;
        // Cooling: downhill acceptance decays from ~0.2 to 0 over the
        // slice. The delay order is lexicographic (not numeric), so the
        // Metropolis exponent has no natural scale; a flat cooled coin is
        // deterministic and scale-free.
        let temperature = 1.0 - used as f64 / slice.max(2) as f64;
        if delay >= current_delay || rng.random_bool(0.2 * temperature) {
            current_delay = delay;
            if delay > best_delay {
                best_delay = delay;
                best = current.clone();
            }
        } else {
            match undo {
                Undo::Point { round, g, to, prev } => {
                    current.set_move(round, g, to, prev);
                }
                Undo::Row { dst, g, prev } => restore_row(&mut current, dst, g, &prev),
                Undo::Swap { a, b } => swap_rounds(&mut current, a, b),
                Undo::Prefix { k, prev } => restore_prefix(&mut current, k, &prev),
            }
        }
    }
    (best, best_delay, used)
}

/// Folds per-task outcomes (in task order) into a report; ties keep the
/// earliest task, so the result is scheduling-independent.
fn fold(outcomes: Vec<(Script, Delay, u64)>) -> SearchReport {
    let mut outcomes = outcomes.into_iter();
    let (best, delay, mut evaluations) = outcomes.next().expect("at least one search task");
    let (mut best, mut delay) = (best, delay);
    for (script, d, used) in outcomes {
        evaluations += used;
        if d > delay {
            delay = d;
            best = script;
        }
    }
    SearchReport {
        best,
        delay,
        evaluations,
    }
}

/// Runs `tasks` independent workers on the persistent [`sc_exec`] pool,
/// capped at [`SearchConfig::threads`] executing threads. Each claiming
/// thread builds one warm clone of the objective and reuses it across the
/// tasks it claims; task results are pure functions of the task index and
/// are folded in task order, so results are identical for any thread
/// count.
#[cfg(feature = "parallel")]
fn fan_out<P, R, W>(
    obj: &Objective<'_, P, R>,
    cfg: &SearchConfig,
    tasks: u64,
    slice: u64,
    worker: W,
) -> SearchReport
where
    P: Fingerprint + Sync,
    P::State: Send + Sync,
    R: RawState<P::State> + Clone + Send + Sync,
    W: Fn(&mut Objective<'_, P, R>, &SearchConfig, u64, u64) -> (Script, Delay, u64) + Sync,
{
    let threads = cfg.threads.clamp(1, tasks.max(1) as usize);
    if threads == 1 {
        let mut local = obj.clone();
        return fold(
            (0..tasks.max(1))
                .map(|task| worker(&mut local, cfg, task, slice))
                .collect(),
        );
    }
    let locals: sc_exec::WorkerScratch<Objective<'_, P, R>> = sc_exec::WorkerScratch::new();
    fold(sc_exec::map(tasks.max(1) as usize, threads, |task| {
        locals.with(
            || obj.clone(),
            |local| worker(local, cfg, task as u64, slice),
        )
    }))
}

/// Serial scheduling (the `parallel` feature is disabled).
#[cfg(not(feature = "parallel"))]
fn fan_out<P, R, W>(
    obj: &Objective<'_, P, R>,
    cfg: &SearchConfig,
    tasks: u64,
    slice: u64,
    worker: W,
) -> SearchReport
where
    P: Fingerprint,
    R: RawState<P::State> + Clone,
    W: Fn(&mut Objective<'_, P, R>, &SearchConfig, u64, u64) -> (Script, Delay, u64),
{
    let mut local = obj.clone();
    fold(
        (0..tasks.max(1))
            .map(|task| worker(&mut local, cfg, task, slice))
            .collect(),
    )
}

/// Random restarts: [`SearchConfig::restarts`] independent workers sample
/// fresh scripts and keep the strongest — the coverage baseline every
/// guided strategy must beat.
pub fn random_search<P, R>(obj: &Objective<'_, P, R>, cfg: &SearchConfig) -> SearchReport
where
    P: Fingerprint + Sync,
    P::State: Send + Sync,
    R: RawState<P::State> + Clone + Send + Sync,
{
    let (tasks, slice) = split_budget(cfg);
    fan_out(obj, cfg, tasks, slice, random_slice)
}

/// Greedy per-move hill-climb with random restarts: the workhorse strategy
/// (best delay found per evaluation in practice).
pub fn hill_climb<P, R>(obj: &Objective<'_, P, R>, cfg: &SearchConfig) -> SearchReport
where
    P: Fingerprint + Sync,
    P::State: Send + Sync,
    R: RawState<P::State> + Clone + Send + Sync,
{
    let (tasks, slice) = split_budget(cfg);
    fan_out(obj, cfg, tasks, slice, climb_restart)
}

/// Simulated annealing over structured edits (row copy, round swap,
/// prefix crossover with the best-so-far, point mutation) with random
/// restarts. Structured edits change many moves per evaluation, so this
/// strategy only pays off on cheap evaluations — attach the bit-sliced
/// path ([`Objective::attach_sliced`]) before spending a serious budget.
pub fn anneal<P, R>(obj: &Objective<'_, P, R>, cfg: &SearchConfig) -> SearchReport
where
    P: Fingerprint + Sync,
    P::State: Send + Sync,
    R: RawState<P::State> + Clone + Send + Sync,
{
    let (tasks, slice) = split_budget(cfg);
    fan_out(obj, cfg, tasks, slice, anneal_restart)
}

/// Beam search over round prefixes: grow scripts one round at a time,
/// keeping the [`SearchConfig::beam_width`] strongest prefixes (each
/// prefix is scored as its own lasso, wrapping from round 0).
pub fn beam_search<P, R>(obj: &Objective<'_, P, R>, cfg: &SearchConfig) -> SearchReport
where
    P: Fingerprint,
    R: RawState<P::State> + Clone,
{
    let mut obj = obj.clone();
    let mut rng = task_rng(cfg.seed, 0xbea0);
    let n = obj.protocol().n();
    let fault_set = obj.fault_set().to_vec();
    let width = fault_set.len() * n;
    let mut used = 0u64;
    let mut beam: Vec<(Script, Delay)> = Vec::new();
    for _ in 0..cfg.beam_width.max(1) {
        if used >= cfg.budget && !beam.is_empty() {
            break;
        }
        let script = Script::random(n, fault_set.clone(), 1, 0, &cfg.space, &mut rng);
        let delay = obj.evaluate(&script);
        used += 1;
        beam.push((script, delay));
    }
    for _ in 1..cfg.rounds {
        let mut candidates: Vec<(Script, Delay)> = Vec::new();
        for (script, _) in &beam {
            for _ in 0..cfg.expansions.max(1) {
                if used >= cfg.budget {
                    break;
                }
                let mut extended = script.clone();
                extended.push_round((0..width).map(|_| cfg.space.sample(&mut rng)).collect());
                let delay = obj.evaluate(&extended);
                used += 1;
                candidates.push((extended, delay));
            }
        }
        if candidates.is_empty() {
            break;
        }
        // Stable descending sort: ties keep generation order, so the beam
        // is deterministic.
        candidates.sort_by_key(|candidate| std::cmp::Reverse(candidate.1));
        candidates.truncate(cfg.beam_width.max(1));
        beam = candidates;
    }
    let (best, delay) = beam
        .into_iter()
        .reduce(|acc, item| if item.1 > acc.1 { item } else { acc })
        .expect("beam holds at least one script");
    SearchReport {
        best,
        delay,
        evaluations: used,
    }
}

/// The combined search: splits the budget over random restarts, beam
/// search, structured annealing, and hill-climbing (which gets the
/// largest share), and returns the strongest script found. Deterministic
/// from the seed.
pub fn search<P, R>(obj: &Objective<'_, P, R>, cfg: &SearchConfig) -> SearchReport
where
    P: Fingerprint + Sync,
    P::State: Send + Sync,
    R: RawState<P::State> + Clone + Send + Sync,
{
    let mut random_cfg = cfg.clone();
    random_cfg.budget = cfg.budget / 8;
    let mut beam_cfg = cfg.clone();
    beam_cfg.budget = cfg.budget / 8;
    let mut anneal_cfg = cfg.clone();
    anneal_cfg.budget = cfg.budget / 4;
    let mut climb_cfg = cfg.clone();
    climb_cfg.budget = cfg.budget - random_cfg.budget - beam_cfg.budget - anneal_cfg.budget;

    let mut best = random_search(obj, &random_cfg);
    for candidate in [
        beam_search(obj, &beam_cfg),
        anneal(obj, &anneal_cfg),
        hill_climb(obj, &climb_cfg),
    ] {
        best.evaluations += candidate.evaluations;
        if candidate.delay > best.delay {
            best.best = candidate.best;
            best.delay = candidate.delay;
        }
    }
    best
}

/// One point of a bound-tightness profile: the strongest attack found
/// among scripts whose lasso cycle has exactly this length.
#[derive(Clone, Debug)]
pub struct PeriodPoint {
    /// Cycle length (in rounds) of the scripts this point searched over.
    pub period: usize,
    /// The strongest script found at that period and its delay.
    pub report: SearchReport,
}

/// Bound-tightness sweep near the proven bound T(A): for every lasso
/// period dividing the protocol's counter period `C`, run the combined
/// [`search`] over scripts whose cycle is exactly that period
/// (`cycle_start = 0`), and report the strongest delay per period.
///
/// A script whose cycle divides `C` replays itself in lock-step with the
/// honest counter, so these are the natural candidates for attacks that
/// stretch stabilisation toward `T(A)` — a profile whose best delays stay
/// far below the bound is evidence of slack, one that approaches it is
/// evidence of tightness.
///
/// Near-bound horizons make the sweep orders of magnitude more expensive
/// than a single search, so it is **gated behind the bit-sliced engine**:
/// returns `None` unless the objective has a sliced path attached
/// ([`Objective::attach_sliced`]). The budget is split evenly across the
/// divisors; each period reseeds deterministically from
/// [`SearchConfig::seed`].
pub fn period_profile<P, R>(
    obj: &Objective<'_, P, R>,
    cfg: &SearchConfig,
) -> Option<Vec<PeriodPoint>>
where
    P: Fingerprint + Sync,
    P::State: Send + Sync,
    R: RawState<P::State> + Clone + Send + Sync,
{
    if !obj.is_sliced() {
        return None;
    }
    let modulus = obj.protocol().modulus().max(1) as usize;
    let divisors: Vec<usize> = (1..=modulus)
        .filter(|d| modulus.is_multiple_of(*d))
        .collect();
    let share = (cfg.budget / divisors.len() as u64).max(1);
    Some(
        divisors
            .into_iter()
            .map(|period| {
                let mut sub = cfg.clone();
                sub.rounds = period;
                sub.cycle_start = 0;
                sub.budget = share;
                sub.seed = cfg
                    .seed
                    .wrapping_add((period as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                PeriodPoint {
                    period,
                    report: search(obj, &sub),
                }
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SampledRaw;
    use sc_sim::testing::FollowMax;

    fn objective(p: &FollowMax) -> Objective<'_, FollowMax, SampledRaw<'_, FollowMax>> {
        Objective::new(p, SampledRaw(p), vec![1], 0..4, 64).unwrap()
    }

    fn config(budget: u64) -> SearchConfig {
        let mut cfg = SearchConfig::new(
            2,
            MoveSpace {
                raw_values: 4,
                salts: 3,
                max_lag: 2,
            },
            42,
        );
        cfg.budget = budget;
        cfg.restarts = 2;
        cfg
    }

    #[test]
    fn strategies_respect_the_budget_and_find_attacks() {
        let p = FollowMax { n: 4, c: 8 };
        let obj = objective(&p);
        for (name, report) in [
            ("random", random_search(&obj, &config(24))),
            ("climb", hill_climb(&obj, &config(24))),
            ("beam", beam_search(&obj, &config(24))),
            ("anneal", anneal(&obj, &config(24))),
        ] {
            assert!(
                report.evaluations <= 24,
                "{name} overran its budget: {}",
                report.evaluations
            );
            // FollowMax has resilience 0: any serious search finds an
            // attack that at least delays stabilisation.
            assert!(report.delay.worst >= 1, "{name} found nothing at all");
        }
    }

    #[test]
    fn searches_are_deterministic_and_thread_count_invariant() {
        let p = FollowMax { n: 4, c: 8 };
        let obj = objective(&p);
        let mut one = config(20);
        one.threads = 1;
        let mut many = config(20);
        many.threads = 4;
        let a = hill_climb(&obj, &one);
        let b = hill_climb(&obj, &many);
        assert_eq!(a.best, b.best);
        assert_eq!(a.delay, b.delay);
        assert_eq!(a.evaluations, b.evaluations);
        let c = hill_climb(&obj, &one);
        assert_eq!(a.best, c.best, "same seed, same result");
        let d = anneal(&obj, &one);
        let e = anneal(&obj, &many);
        assert_eq!(d.best, e.best, "annealing is thread-count invariant");
        assert_eq!(d.delay, e.delay);
        assert_eq!(d.evaluations, e.evaluations);
    }

    #[test]
    fn structured_edits_undo_cleanly() {
        // Drive one annealing restart with a slice large enough to hit
        // every edit kind, then check the returned best script still
        // scores its reported delay — undo corruption would desynchronise
        // the script from its score.
        let p = FollowMax { n: 4, c: 8 };
        let obj = objective(&p);
        let mut local = obj.clone();
        let mut cfg = config(40);
        cfg.rounds = 3;
        let (best, delay, used) = anneal_restart(&mut local, &cfg, 0, 40);
        assert_eq!(used, 40);
        assert_eq!(
            local.evaluate(&best),
            delay,
            "best script re-scores identically"
        );
    }

    #[test]
    fn period_profile_is_gated_behind_the_sliced_engine() {
        // FollowMax objectives have no sliced path attached here, so the
        // near-bound sweep refuses to run on the scalar engine.
        let p = FollowMax { n: 4, c: 8 };
        let obj = objective(&p);
        assert!(period_profile(&obj, &config(8)).is_none());
    }

    #[test]
    fn combined_search_beats_or_matches_pure_random() {
        let p = FollowMax { n: 4, c: 8 };
        let obj = objective(&p);
        let random = random_search(&obj, &config(32));
        let combined = search(&obj, &config(32));
        assert!(
            combined.delay >= random.delay || combined.delay.worst >= random.delay.worst,
            "combined {:?} vs random {:?}",
            combined.delay,
            random.delay
        );
    }
}
