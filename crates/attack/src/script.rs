//! Scripted attacks as data: the [`Script`] representation, its compact
//! codec, and lossless import from verifier witnesses.
//!
//! A script fixes, for every (round, faulty sender, receiver) triple, one
//! [`Move`] from a small vocabulary — echo a current honest state, replay a
//! stale one, or fabricate a raw vocabulary state. Scripts follow a
//! **lasso** shape exactly like [`sc_verifier::Witness`] executions: a
//! finite prefix of explicit rounds followed by a cycle that repeats
//! forever, so a finite table describes an infinite adversary.
//!
//! Treating the adversary as data is what makes worst-case *search*
//! possible: [`crate::ScriptedAdversary`] executes any script on the live
//! engine, the [`crate::Objective`] harness scores it by stabilisation
//! delay, and the strategies in [`crate::search`] edit scripts **in place**
//! ([`Script::set_move`] returns the previous move for undo) — the
//! mutate/undo pattern of the synthesiser's `LutCounter::set_transition`.

use rand::rngs::SmallRng;
use rand::Rng;
use sc_protocol::{BitReader, BitVec, CodecError, ParamError};
use sc_verifier::Witness;

/// One scripted message choice: what a faulty sender presents to one
/// receiver in one round.
///
/// The vocabulary is protocol-agnostic — echo and stale moves permute
/// *observed* honest states (delivered as zero-copy broadcast echoes or
/// ring replays), while [`Move::Raw`] names an entry of the protocol's raw
/// state vocabulary (see [`crate::RawState`]). Witness imports use `Raw`
/// exclusively; searches mix all three.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Move {
    /// Echo the current broadcast of the `salt`-th correct node (rotating
    /// through the honest set, like the library strategies' donor rule).
    Echo(u8),
    /// Fabricate the raw vocabulary state with this index.
    Raw(u8),
    /// Replay what the `salt`-th correct node broadcast `lag` rounds ago
    /// (clamped to the observed history during warm-up; `lag = 0` degrades
    /// to an echo).
    Stale {
        /// Rounds of staleness.
        lag: u8,
        /// Donor salt into the honest set.
        salt: u8,
    },
}

/// The move vocabulary a search samples from — the knobs that bound the
/// explored equivocation space.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MoveSpace {
    /// Raw vocabulary size: `Raw(v)` moves use `v < raw_values`
    /// (0 disables raw moves entirely).
    pub raw_values: u8,
    /// Donor salts: echo/stale moves use `salt < salts` (at least 1).
    pub salts: u8,
    /// Maximum staleness: stale moves use `1 ..= max_lag`
    /// (0 disables stale moves).
    pub max_lag: u8,
}

impl MoveSpace {
    /// A vocabulary of pure echo moves over `salts` donors.
    pub fn echoes(salts: u8) -> MoveSpace {
        MoveSpace {
            raw_values: 0,
            salts: salts.max(1),
            max_lag: 0,
        }
    }

    /// Samples one move uniformly over the enabled kinds.
    pub fn sample(&self, rng: &mut SmallRng) -> Move {
        let salts = self.salts.max(1);
        let mut kinds = 1u32; // Echo is always available
        if self.raw_values > 0 {
            kinds += 1;
        }
        if self.max_lag > 0 {
            kinds += 1;
        }
        let mut kind = rng.random_range(0..kinds);
        if self.raw_values == 0 && kind >= 1 {
            kind += 1; // skip Raw
        }
        match kind {
            0 => Move::Echo(rng.random_range(0..salts)),
            1 => Move::Raw(rng.random_range(0..self.raw_values)),
            _ => Move::Stale {
                lag: rng.random_range(1..=self.max_lag),
                salt: rng.random_range(0..salts),
            },
        }
    }

    /// Whether `m` lies inside this vocabulary.
    pub fn contains(&self, m: Move) -> bool {
        match m {
            Move::Echo(salt) => salt < self.salts.max(1),
            Move::Raw(v) => v < self.raw_values,
            Move::Stale { lag, salt } => {
                lag >= 1 && lag <= self.max_lag && salt < self.salts.max(1)
            }
        }
    }
}

/// A complete scripted adversary strategy: per-(round, faulty, receiver)
/// [`Move`]s in lasso form.
///
/// Round `t ≥ len` replays round `cycle_start + (t − cycle_start) mod
/// (len − cycle_start)` — exactly the wrap rule of
/// [`Witness::script_at`], so an imported witness script drives the live
/// simulator through the witness's infinite execution.
///
/// # Example
///
/// ```
/// use sc_attack::{Move, Script};
///
/// // One faulty node (id 1) in a 3-node network, scripted for 2 rounds
/// // that then repeat forever.
/// let rounds = vec![vec![Move::Echo(0); 3], vec![Move::Raw(1); 3]];
/// let script = Script::new(3, vec![1], rounds, 0)?;
/// assert_eq!(script.index_at(0), 0);
/// assert_eq!(script.index_at(5), 1); // 2, 4, … wrap onto the cycle
/// # Ok::<(), sc_protocol::ParamError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Script {
    n: usize,
    fault_set: Vec<usize>,
    /// Per-round move tables; `rounds[r][g * n + to]` is what faulty sender
    /// `fault_set[g]` presents to receiver `to`. Entries addressed to
    /// faulty receivers are padding and never consulted.
    rounds: Vec<Vec<Move>>,
    cycle_start: usize,
}

impl Script {
    /// Validates and wraps a move table.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] when a faulty id is out of range or
    /// duplicated, a round's table has the wrong width, or `cycle_start`
    /// does not leave a non-empty cycle.
    pub fn new(
        n: usize,
        fault_set: Vec<usize>,
        rounds: Vec<Vec<Move>>,
        cycle_start: usize,
    ) -> Result<Script, ParamError> {
        if fault_set.windows(2).any(|w| w[0] >= w[1]) {
            return Err(ParamError::constraint(
                "script fault set must be sorted and duplicate-free",
            ));
        }
        if fault_set.iter().any(|&v| v >= n) {
            return Err(ParamError::constraint(
                "script fault set names a node outside the network",
            ));
        }
        let width = fault_set.len() * n;
        if rounds.iter().any(|r| r.len() != width) {
            return Err(ParamError::constraint(format!(
                "every scripted round needs f·n = {width} moves"
            )));
        }
        if rounds.is_empty() {
            // An empty table can only script an empty fault set (it never
            // answers a message); anything else would panic at use time.
            if !fault_set.is_empty() {
                return Err(ParamError::constraint(
                    "a script with faulty nodes needs at least one round",
                ));
            }
            if cycle_start != 0 {
                return Err(ParamError::constraint(
                    "an empty script cannot have a cycle start",
                ));
            }
        } else if cycle_start >= rounds.len() {
            return Err(ParamError::constraint(
                "cycle_start must leave a non-empty cycle",
            ));
        }
        Ok(Script {
            n,
            fault_set,
            rounds,
            cycle_start,
        })
    }

    /// A script of `rounds` uniformly sampled moves, deterministic from the
    /// caller's generator — the seed of random restarts.
    ///
    /// # Panics
    ///
    /// Panics if the parameters fail [`Script::new`] validation.
    pub fn random(
        n: usize,
        fault_set: Vec<usize>,
        rounds: usize,
        cycle_start: usize,
        space: &MoveSpace,
        rng: &mut SmallRng,
    ) -> Script {
        let width = fault_set.len() * n;
        let rounds = (0..rounds)
            .map(|_| (0..width).map(|_| space.sample(rng)).collect())
            .collect();
        Script::new(n, fault_set, rounds, cycle_start).expect("sampled script is well-formed")
    }

    /// Imports a verifier [`Witness`] lasso **losslessly**: every Byzantine
    /// value `byz[t][h][g]` becomes a [`Move::Raw`] at the matching (round,
    /// sender, receiver) slot, and the cycle wraps at the witness's
    /// `cycle_start` — replayed through a [`crate::ScriptedAdversary`] with
    /// an exact raw vocabulary, the live execution visits the witness's
    /// configurations forever.
    pub fn from_witness(witness: &Witness) -> Script {
        let n = witness.honest.len() + witness.fault_set.len();
        let width = witness.fault_set.len() * n;
        let rounds = witness
            .byz
            .iter()
            .map(|step| {
                let mut moves = vec![Move::Raw(0); width];
                for (hi, per_node) in step.iter().enumerate() {
                    let to = witness.honest[hi];
                    for (g, &value) in per_node.iter().enumerate() {
                        moves[g * n + to] = Move::Raw(value);
                    }
                }
                moves
            })
            .collect();
        Script::new(n, witness.fault_set.clone(), rounds, witness.cycle_start)
            .expect("witness lassos are well-formed scripts")
    }

    /// Network size the script is written for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The sorted faulty nodes the script drives.
    pub fn fault_set(&self) -> &[usize] {
        &self.fault_set
    }

    /// Number of explicitly scripted rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the script has no scripted rounds at all.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// First round of the repeating cycle.
    pub fn cycle_start(&self) -> usize {
        self.cycle_start
    }

    /// Length of the repeating cycle.
    pub fn cycle_len(&self) -> usize {
        self.rounds.len() - self.cycle_start
    }

    /// The scripted round index driving round `t`, following the lasso:
    /// the prefix once, then the cycle forever.
    #[inline]
    pub fn index_at(&self, t: u64) -> usize {
        let len = self.rounds.len();
        if (t as usize) < len {
            t as usize
        } else {
            let cycle = len - self.cycle_start;
            self.cycle_start + ((t as usize - self.cycle_start) % cycle)
        }
    }

    /// The move faulty sender `g` (an index into [`Script::fault_set`])
    /// plays against receiver `to` at round `t`.
    #[inline]
    pub fn move_at(&self, t: u64, g: usize, to: usize) -> Move {
        self.rounds[self.index_at(t)][g * self.n + to]
    }

    /// Replaces one move in place and returns the previous one — the
    /// search strategies' mutate/undo hook (no script is ever cloned per
    /// candidate). `round` indexes the explicit table, not the lasso.
    pub fn set_move(&mut self, round: usize, g: usize, to: usize, m: Move) -> Move {
        std::mem::replace(&mut self.rounds[round][g * self.n + to], m)
    }

    /// Appends an explicitly scripted round — the beam search's
    /// prefix-extension hook.
    ///
    /// # Panics
    ///
    /// Panics if `moves` does not hold exactly `f·n` entries.
    pub fn push_round(&mut self, moves: Vec<Move>) {
        assert_eq!(
            moves.len(),
            self.fault_set.len() * self.n,
            "scripted round has the wrong width"
        );
        self.rounds.push(moves);
    }

    /// The largest staleness any move of the script requests (0 when no
    /// stale moves exist) — how much history a replaying adversary must
    /// retain.
    pub fn max_lag(&self) -> usize {
        self.rounds
            .iter()
            .flatten()
            .map(|m| match m {
                Move::Stale { lag, .. } => *lag as usize,
                _ => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// Appends the compact encoding of the script to `out`.
    ///
    /// The codec is lossless ([`Script::decode`] inverts it bit for bit;
    /// property-tested) and compact: 2 tag bits plus an 8-bit payload per
    /// move (16 bits for stale moves).
    pub fn encode(&self, out: &mut BitVec) {
        out.push_bits(self.n as u64, 16);
        out.push_bits(self.fault_set.len() as u64, 8);
        for &v in &self.fault_set {
            out.push_bits(v as u64, 16);
        }
        out.push_bits(self.rounds.len() as u64, 32);
        out.push_bits(self.cycle_start as u64, 32);
        for round in &self.rounds {
            for &m in round {
                match m {
                    Move::Echo(salt) => {
                        out.push_bits(0, 2);
                        out.push_bits(u64::from(salt), 8);
                    }
                    Move::Raw(v) => {
                        out.push_bits(1, 2);
                        out.push_bits(u64::from(v), 8);
                    }
                    Move::Stale { lag, salt } => {
                        out.push_bits(2, 2);
                        out.push_bits(u64::from(lag), 8);
                        out.push_bits(u64::from(salt), 8);
                    }
                }
            }
        }
    }

    /// Decodes a script previously produced by [`Script::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] when the bit string is truncated, a move tag
    /// is unknown, or the decoded fields fail [`Script::new`] validation.
    pub fn decode(input: &mut BitReader<'_>) -> Result<Script, CodecError> {
        let n = input.read_bits(16)? as usize;
        let f = input.read_bits(8)? as usize;
        let mut fault_set = Vec::with_capacity(f);
        for _ in 0..f {
            fault_set.push(input.read_bits(16)? as usize);
        }
        let len = input.read_bits(32)? as usize;
        let cycle_start = input.read_bits(32)? as usize;
        let width = f * n;
        // Capacities are clamped: the length fields are untrusted input,
        // and a corrupt header must fail with a decode error on the first
        // missing move, not abort on a huge up-front allocation.
        let mut rounds = Vec::with_capacity(len.min(1024));
        for _ in 0..len {
            let mut moves = Vec::with_capacity(width.min(4096));
            for _ in 0..width {
                let tag = input.read_bits(2)?;
                moves.push(match tag {
                    0 => Move::Echo(input.read_bits(8)? as u8),
                    1 => Move::Raw(input.read_bits(8)? as u8),
                    2 => Move::Stale {
                        lag: input.read_bits(8)? as u8,
                        salt: input.read_bits(8)? as u8,
                    },
                    other => {
                        return Err(CodecError::InvalidField {
                            field: "script move tag",
                            value: other,
                        })
                    }
                });
            }
            rounds.push(moves);
        }
        Script::new(n, fault_set, rounds, cycle_start).map_err(|_| CodecError::InvalidField {
            field: "script structure",
            value: len as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny() -> Script {
        Script::new(
            3,
            vec![2],
            vec![
                vec![Move::Echo(0), Move::Raw(1), Move::Echo(2)],
                vec![Move::Stale { lag: 2, salt: 1 }, Move::Echo(1), Move::Raw(0)],
                vec![Move::Raw(3), Move::Raw(4), Move::Echo(0)],
            ],
            1,
        )
        .unwrap()
    }

    #[test]
    fn lasso_indexing_matches_witness_rule() {
        let s = tiny();
        // len 3, cycle_start 1, cycle 2: 0 1 2 1 2 1 2 …
        let expect = [0usize, 1, 2, 1, 2, 1, 2, 1];
        for (t, &e) in expect.iter().enumerate() {
            assert_eq!(s.index_at(t as u64), e, "round {t}");
        }
    }

    #[test]
    fn set_move_mutates_and_undoes_in_place() {
        let mut s = tiny();
        let original = s.clone();
        let prev = s.set_move(0, 0, 1, Move::Echo(7));
        assert_eq!(prev, Move::Raw(1));
        assert_eq!(s.move_at(0, 0, 1), Move::Echo(7));
        assert_ne!(s, original);
        s.set_move(0, 0, 1, prev);
        assert_eq!(s, original);
    }

    #[test]
    fn codec_round_trips() {
        let s = tiny();
        let mut bits = BitVec::new();
        s.encode(&mut bits);
        let back = Script::decode(&mut bits.reader()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let s = tiny();
        let mut bits = BitVec::new();
        s.encode(&mut bits);
        let mut truncated = BitVec::new();
        for i in 0..bits.len() - 3 {
            truncated.push_bit(bits.bit(i));
        }
        assert!(Script::decode(&mut truncated.reader()).is_err());
    }

    #[test]
    fn validation_rejects_malformed_tables() {
        assert!(Script::new(3, vec![3], vec![], 0).is_err()); // fault ≥ n
        assert!(Script::new(3, vec![1, 1], vec![], 0).is_err()); // duplicate
        assert!(Script::new(3, vec![1], vec![vec![Move::Echo(0); 2]], 0).is_err()); // width
        assert!(Script::new(3, vec![1], vec![vec![Move::Echo(0); 3]], 1).is_err());
        // empty cycle
        // No rounds: only acceptable for an empty fault set at cycle 0 —
        // a faulty script with no rounds would panic at use time.
        assert!(Script::new(3, vec![1], vec![], 0).is_err());
        assert!(Script::new(3, vec![1], vec![], 9).is_err());
        assert!(Script::new(3, vec![], vec![], 1).is_err());
        assert!(Script::new(3, vec![], vec![], 0).is_ok());
    }

    #[test]
    fn decode_rejects_headers_the_constructor_rejects() {
        // An encoding claiming faulty nodes but zero rounds must come back
        // as a decode error, not a script that panics later (or a giant
        // up-front allocation).
        let mut bits = BitVec::new();
        bits.push_bits(3, 16); // n
        bits.push_bits(1, 8); // f
        bits.push_bits(1, 16); // fault id
        bits.push_bits(0, 32); // rounds = 0
        bits.push_bits(0, 32); // cycle_start
        assert!(Script::decode(&mut bits.reader()).is_err());
        // A huge claimed length with no move payload fails on the first
        // missing move instead of aborting on an up-front allocation.
        let mut bits = BitVec::new();
        bits.push_bits(3, 16);
        bits.push_bits(1, 8);
        bits.push_bits(1, 16);
        bits.push_bits(u64::from(u32::MAX), 32);
        bits.push_bits(0, 32);
        assert!(Script::decode(&mut bits.reader()).is_err());
    }

    #[test]
    fn move_space_samples_stay_in_vocabulary() {
        let space = MoveSpace {
            raw_values: 4,
            salts: 3,
            max_lag: 2,
        };
        let mut rng = SmallRng::seed_from_u64(7);
        let mut kinds = [false; 3];
        for _ in 0..500 {
            let m = space.sample(&mut rng);
            assert!(space.contains(m), "{m:?} outside the vocabulary");
            kinds[match m {
                Move::Echo(_) => 0,
                Move::Raw(_) => 1,
                Move::Stale { .. } => 2,
            }] = true;
        }
        assert!(kinds.iter().all(|&k| k), "all kinds must be reachable");
        // Disabled kinds are never sampled.
        let echoes = MoveSpace::echoes(2);
        for _ in 0..100 {
            assert!(matches!(echoes.sample(&mut rng), Move::Echo(_)));
        }
    }

    #[test]
    fn max_lag_scans_the_whole_table() {
        assert_eq!(tiny().max_lag(), 2);
        let s = Script::new(2, vec![0], vec![vec![Move::Echo(0); 2]], 0).unwrap();
        assert_eq!(s.max_lag(), 0);
    }
}
