//! The search objective: score a script by the stabilisation delay it
//! inflicts on a fixed `(seed, fault set)` sweep.

use std::sync::{Arc, Mutex};

use sc_protocol::{Counter, Fingerprint, NodeId, SyncProtocol};
use sc_sim::adversaries::normalize_faults;
use sc_sim::{
    required_confirmation, Adversary, Scenario, SimError, Simulation, SlicedBatch, SlicedProtocol,
};

use crate::adversary::{RawState, ScriptedAdversary};
use crate::script::Script;
use crate::sliced::SlicedScript;

/// A pre-bound sliced evaluator: scores a script by advancing every
/// scenario 64-per-word through one shared compiled model.
type SlicedEval<'a> = Arc<dyn Fn(&Script) -> Delay + Send + Sync + 'a>;

/// The delay a strategy inflicted on one sweep, ordered lexicographically
/// by `(worst, unstable, total)` — a strictly greater [`Delay`] is a
/// strictly stronger attack.
///
/// Per scenario, the delay is the measured stabilisation round; a scenario
/// that fails to stabilise inside the horizon counts as `horizon + 1`
/// (worse than any stabilising execution can score).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Delay {
    /// Worst per-scenario delay across the sweep.
    pub worst: u64,
    /// Scenarios that failed to stabilise within the horizon.
    pub unstable: usize,
    /// Sum of per-scenario delays (the hill-climbing gradient: strictly
    /// finer than `worst` alone, so single-scenario progress is visible).
    pub total: u64,
}

/// The objective harness: a prepared sweep of initial configurations on one
/// protocol and fault set, scoring scripts (and, for comparison, arbitrary
/// adversaries) by [`Delay`].
///
/// The sweep is fixed up front — initial configurations are sampled **once**
/// per seed, exactly as [`Simulation::new`] would sample them, and reused
/// for every candidate — so two evaluations differ only in the adversary.
/// The inner loop is [`Simulation::run_until_stable_early`]: scripted
/// adversaries snapshot, so stabilised candidates exit at the first
/// configuration recurrence instead of executing the full horizon.
///
/// Candidates are edited **in place** between evaluations
/// ([`Script::set_move`] mutate/undo); the harness never clones a script.
pub struct Objective<'a, P: SyncProtocol, R> {
    protocol: &'a P,
    raw: R,
    fault_set: Vec<usize>,
    horizon: u64,
    /// `(seed, initial configuration)` per scenario, sampled once.
    inits: Vec<(u64, Vec<P::State>)>,
    evaluations: u64,
    /// The bit-sliced fast path, attached by [`Objective::attach_sliced`]:
    /// a pre-bound evaluator advancing all scenarios 64-per-word through
    /// one shared compiled model. `None` runs scripts on the scalar engine.
    sliced: Option<SlicedEval<'a>>,
}

impl<'a, P: SyncProtocol, R: Clone> Clone for Objective<'a, P, R> {
    fn clone(&self) -> Self {
        Objective {
            protocol: self.protocol,
            raw: self.raw.clone(),
            fault_set: self.fault_set.clone(),
            horizon: self.horizon,
            inits: self.inits.clone(),
            evaluations: self.evaluations,
            sliced: self.sliced.clone(),
        }
    }
}

impl<'a, P: SyncProtocol, R> std::fmt::Debug for Objective<'a, P, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Objective")
            .field("fault_set", &self.fault_set)
            .field("horizon", &self.horizon)
            .field("scenarios", &self.inits.len())
            .field("evaluations", &self.evaluations)
            .field("sliced", &self.sliced.is_some())
            .finish_non_exhaustive()
    }
}

impl<'a, P: Counter, R> Objective<'a, P, R> {
    /// Prepares a sweep: one scenario per seed, each starting from the
    /// configuration [`Simulation::new`] would draw for that seed, all
    /// corrupting `fault_set` and running for at most `horizon` rounds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HorizonTooShort`] when `horizon` cannot fit the
    /// confirmation suffix [`required_confirmation`] demands.
    pub fn new(
        protocol: &'a P,
        raw: R,
        fault_set: Vec<usize>,
        seeds: impl IntoIterator<Item = u64>,
        horizon: u64,
    ) -> Result<Self, SimError> {
        let confirm = required_confirmation(protocol.modulus());
        if horizon < confirm {
            return Err(SimError::HorizonTooShort {
                horizon,
                required: confirm,
            });
        }
        use rand::SeedableRng;
        let inits = seeds
            .into_iter()
            .map(|seed| {
                let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
                let states = (0..protocol.n())
                    .map(|i| protocol.random_state(NodeId::new(i), &mut rng))
                    .collect();
                (seed, states)
            })
            .collect();
        Ok(Objective {
            protocol,
            raw,
            fault_set,
            horizon,
            inits,
            evaluations: 0,
            sliced: None,
        })
    }

    /// [`Objective::new`] with the initial configurations supplied instead
    /// of sampled — the pre-filter's warm path, where the seeded sweep is
    /// invariant across every candidate of one shape. The caller must pass
    /// exactly what [`Objective::new`] would have sampled (see
    /// [`Objective::inits`]), or sweeps diverge from the cold path.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::HorizonTooShort`] when `horizon` cannot fit the
    /// confirmation suffix [`required_confirmation`] demands.
    pub(crate) fn with_inits(
        protocol: &'a P,
        raw: R,
        fault_set: Vec<usize>,
        inits: Vec<(u64, Vec<P::State>)>,
        horizon: u64,
    ) -> Result<Self, SimError> {
        let confirm = required_confirmation(protocol.modulus());
        if horizon < confirm {
            return Err(SimError::HorizonTooShort {
                horizon,
                required: confirm,
            });
        }
        Ok(Objective {
            protocol,
            raw,
            fault_set,
            horizon,
            inits,
            evaluations: 0,
            sliced: None,
        })
    }

    /// The `(seed, initial configuration)` sweep, as sampled by
    /// [`Objective::new`] — what [`Objective::with_inits`] takes back.
    /// Consuming lets a warm caller recover the sweep it lent without a
    /// clone.
    pub(crate) fn into_inits(self) -> Vec<(u64, Vec<P::State>)> {
        self.inits
    }

    /// The protocol under attack.
    pub fn protocol(&self) -> &'a P {
        self.protocol
    }

    /// The fault set every candidate corrupts.
    pub fn fault_set(&self) -> &[usize] {
        &self.fault_set
    }

    /// Per-scenario round horizon.
    pub fn horizon(&self) -> u64 {
        self.horizon
    }

    /// Number of scenarios in the sweep.
    pub fn scenarios(&self) -> usize {
        self.inits.len()
    }

    /// Sweep evaluations performed so far (each is one full sweep).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Scores an arbitrary adversary on the same sweep — how the built-in
    /// strategies are measured for the search-vs-library comparison. The
    /// factory receives the scenario seed, exactly like a
    /// [`Batch`](sc_sim::Batch) adversary factory.
    pub fn measure<A, F>(&mut self, factory: F) -> Delay
    where
        P: Fingerprint,
        A: Adversary<P::State>,
        F: FnMut(u64) -> A,
    {
        let delay = sweep(
            self.protocol,
            &self.inits,
            self.horizon,
            factory,
            |sim, horizon| sim.run_until_stable_early(horizon).0,
        );
        self.evaluations += 1;
        delay
    }

    /// Attaches the bit-sliced fast path: compiles one sliced model for the
    /// `(protocol, fault set)` pair and rebinds [`Objective::evaluate`] to
    /// run every sweep through [`SlicedBatch`], 64 scenarios per word, with
    /// the model's round-program cache shared across all evaluations (and
    /// across the search's worker clones — clones share the attachment).
    ///
    /// Returns `false` — leaving the scalar path in place — when the
    /// protocol cannot lower this fault set. Delays are verdict-identical
    /// either way: the sliced engine feeds the same detector, and the
    /// equivalence is property-tested against [`Objective::evaluate_full`].
    ///
    /// [`Objective::measure`] always stays scalar: it scores arbitrary
    /// [`Adversary`] impls, whose per-receiver leases have no lane-uniform
    /// face-table form.
    pub fn attach_sliced(&mut self) -> bool
    where
        P: SlicedProtocol + Sync,
        P::State: Clone + Send + Sync + 'a,
        R: RawState<P::State>,
    {
        let faulty = normalize_faults(self.fault_set.iter().copied());
        let Some(model) = self.protocol.sliced_model(&faulty) else {
            return false;
        };
        // Pre-resolve the dense raw vocabulary once: `SlicedScript` maps
        // `Raw(v)` of sender `g` to packed id `g·256 + v`, so the rows must
        // be identical for every script this model ever sees.
        let raw_states: Vec<Vec<P::State>> = faulty
            .iter()
            .map(|&node| (0..=u8::MAX).map(|v| self.raw.raw_state(node, v)).collect())
            .collect();
        let scenarios: Vec<Scenario<P::State>> = self
            .inits
            .iter()
            .map(|(seed, init)| Scenario::with_states(*seed, init.clone()))
            .collect();
        let model = Mutex::new(model);
        let protocol = self.protocol;
        let horizon = self.horizon;
        // One word of lanes per group and a single worker: an objective
        // evaluation is already one task of the search's own thread fan-out,
        // and sweeps are scored serially on the scalar path too.
        self.sliced = Some(Arc::new(move |script: &Script| {
            let strategy = SlicedScript::new(script, &raw_states);
            let report = SlicedBatch::new(protocol, horizon)
                .lane_words(1)
                .threads(1)
                .run_with_model(&scenarios, &strategy, &model);
            let confirm = required_confirmation(protocol.modulus());
            let mut delay = Delay::default();
            for outcome in report.outcomes {
                accumulate(&mut delay, outcome.result, horizon, confirm);
            }
            delay
        }));
        true
    }

    /// Whether the bit-sliced fast path is attached.
    pub fn is_sliced(&self) -> bool {
        self.sliced.is_some()
    }

    /// Scores `script` on the sweep (the search's inner loop).
    pub fn evaluate(&mut self, script: &Script) -> Delay
    where
        P: Fingerprint,
        R: RawState<P::State>,
    {
        self.check_script(script);
        if let Some(sliced) = &self.sliced {
            let delay = sliced(script);
            self.evaluations += 1;
            return delay;
        }
        let raw = &self.raw;
        let delay = sweep(
            self.protocol,
            &self.inits,
            self.horizon,
            |_| ScriptedAdversary::new(script, raw),
            |sim, horizon| sim.run_until_stable_early(horizon).0,
        );
        self.evaluations += 1;
        delay
    }

    /// [`Objective::evaluate`] without the early-decision exit: executes
    /// every horizon round on the **scalar** engine, ignoring any attached
    /// sliced path. Verdicts — and therefore delays — are guaranteed
    /// identical (`early ≡ full ≡ sliced`); property tests assert it, which
    /// makes this the oracle both fast paths are checked against.
    pub fn evaluate_full(&mut self, script: &Script) -> Delay
    where
        P: Fingerprint,
        R: RawState<P::State>,
    {
        self.check_script(script);
        let raw = &self.raw;
        let delay = sweep(
            self.protocol,
            &self.inits,
            self.horizon,
            |_| ScriptedAdversary::new(script, raw),
            Simulation::run_until_stable,
        );
        self.evaluations += 1;
        delay
    }

    /// Guards script evaluations against fault-set mismatches.
    fn check_script(&self, script: &Script) {
        debug_assert_eq!(
            script.fault_set(),
            &self.fault_set[..],
            "script corrupts a different fault set than the objective sweeps"
        );
        let _ = script;
    }
}

/// Drives one sweep with a fresh adversary per scenario; `run` selects the
/// engine path (early-decision or full-horizon), so both evaluation modes
/// share one seeding and accumulation loop.
fn sweep<'p, P, A, F, G>(
    protocol: &'p P,
    inits: &[(u64, Vec<P::State>)],
    horizon: u64,
    mut factory: F,
    run: G,
) -> Delay
where
    P: Counter,
    A: Adversary<P::State>,
    F: FnMut(u64) -> A,
    G: Fn(&mut Simulation<'p, P, A>, u64) -> Result<sc_sim::StabilizationReport, SimError>,
{
    let confirm = required_confirmation(protocol.modulus());
    let mut delay = Delay::default();
    for (seed, init) in inits {
        let mut sim =
            Simulation::with_states(protocol, factory(*seed), init.clone(), seed.wrapping_add(1));
        let result = run(&mut sim, horizon);
        accumulate(&mut delay, result, horizon, confirm);
    }
    delay
}

/// Folds one scenario verdict into the sweep delay.
fn accumulate(
    delay: &mut Delay,
    result: Result<sc_sim::StabilizationReport, SimError>,
    horizon: u64,
    confirm: u64,
) {
    let d = match result {
        Ok(report) => report.stabilization_round,
        Err(SimError::NotStabilized { .. }) => {
            delay.unstable += 1;
            horizon + 1
        }
        Err(err) => unreachable!(
            "objective horizon was validated against the {confirm}-round confirmation: {err}"
        ),
    };
    delay.worst = delay.worst.max(d);
    delay.total += d;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::script::{Move, MoveSpace, Script};
    use crate::SampledRaw;
    use sc_sim::testing::FollowMax;

    #[test]
    fn delay_orders_worst_then_unstable_then_total() {
        let weak = Delay {
            worst: 5,
            unstable: 0,
            total: 9,
        };
        let strong = Delay {
            worst: 6,
            unstable: 0,
            total: 6,
        };
        assert!(strong > weak, "worst dominates total");
        let broken = Delay {
            worst: 6,
            unstable: 1,
            total: 6,
        };
        assert!(broken > strong, "unstable breaks worst ties");
    }

    #[test]
    fn horizon_is_validated_up_front() {
        let p = FollowMax { n: 4, c: 4 };
        let err = Objective::new(&p, SampledRaw(&p), vec![1], 0..4, 5).unwrap_err();
        assert!(matches!(err, SimError::HorizonTooShort { required: 8, .. }));
    }

    #[test]
    fn raw_scripts_break_followmax_and_echoes_do_not_always() {
        // FollowMax (resilience 0) with one fault: a constant high raw
        // value pins every receiver's maximum, freezing the counter — the
        // objective must report it as maximally delayed (unstable).
        let p = FollowMax { n: 4, c: 8 };
        let mut obj = Objective::new(&p, SampledRaw(&p), vec![1], 0..4, 64).unwrap();
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::SmallRng::seed_from_u64(3)
        };
        let freeze = Script::random(
            4,
            vec![1],
            1,
            0,
            &MoveSpace {
                raw_values: 1, // Raw(0) only
                salts: 1,
                max_lag: 0,
            },
            &mut rng,
        );
        // SampledRaw palette state 0 for FollowMax is some fixed value —
        // every receiver sees the same frozen state every round. FollowMax
        // follows max+1, so a frozen max does not freeze the counter, but a
        // scripted *per-receiver split* does. Use two raw values split by
        // receiver parity instead.
        let mut split = freeze.clone();
        for to in [0usize, 2] {
            split.set_move(0, 0, to, Move::Raw(0));
        }
        split.set_move(0, 0, 3, Move::Raw(1));
        let d = obj.evaluate(&split);
        assert!(d.worst >= 1, "a scripted attack must register some delay");

        // Early and full evaluation agree exactly.
        let full = obj.evaluate_full(&split);
        assert_eq!(d, full, "early ≡ full on scripted runs");
        assert_eq!(obj.evaluations(), 2);
    }

    #[test]
    fn measure_scores_builtin_strategies_on_the_same_sweep() {
        let p = FollowMax { n: 4, c: 8 };
        let mut obj = Objective::new(&p, SampledRaw(&p), vec![1], 0..4, 64).unwrap();
        let none = obj.measure(|_| sc_sim::adversaries::none());
        // Fault-free FollowMax stabilises almost immediately on every seed.
        assert!(none.worst <= 2, "fault-free sweep should be fast: {none:?}");
        assert_eq!(none.unstable, 0);
    }
}
