//! The attack pre-filter: a budgeted adversary search as a synthesis
//! screen, implementing [`sc_verifier::CandidateFilter`].
//!
//! # Soundness (reject-only)
//!
//! The exhaustive checker decides a candidate by attractor layering over
//! at most `|X|^h ≤ |X|^n` honest configurations, so a **correct**
//! candidate stabilises every execution within strictly fewer than
//! `|X|^n` rounds — no adversary, scripted or not, can delay it longer.
//! The filter therefore scores each candidate with a horizon of
//! `|X|^n + required_confirmation(c)` (the confirmation suffix the
//! stability detector needs): if *any* evaluated script leaves a scenario
//! unstable at that horizon ([`Delay::unstable`] `> 0`), the candidate is
//! provably not a self-stabilising `c`-counter and is rejected. A
//! candidate no script breaks is **never** accepted here — it merely
//! survives to the exhaustive quotient solver, which remains the sole
//! source of `Stabilizes` verdicts. Scripted runs snapshot, so unstable
//! lassos exit at the first recurrence instead of executing the full
//! nominal horizon; with the bit-sliced path attached, a sweep costs
//! 64 scenarios per word.
//!
//! Anything that prevents scoring at all — an instance the simulator
//! cannot host, a fault set the script codec rejects — makes the filter
//! pass the candidate through (`false`), keeping rejections sound by
//! construction.

use sc_core::{Algorithm, CounterState, LutCounter};
use sc_verifier::CandidateFilter;

use crate::search::{hill_climb, SearchConfig};
use crate::{MoveSpace, Objective, Script};

/// Cross-candidate invariants of one candidate shape: the seeded scenario
/// sweep [`Objective::new`] would sample. The initial configurations are a
/// pure function of `(n, states)` and the filter's scenario count — a LUT
/// state is drawn as `clamp(rng.next_u64() as u8)` per node, blind to the
/// transition tables — so reusing them across a family sweep is
/// bitwise-neutral. The per-candidate work that genuinely differs (the LUT
/// algorithm and its compiled sliced model) still rebuilds in
/// [`AttackPreFilter::reject`].
#[derive(Clone, Debug)]
struct WarmSweep {
    n: usize,
    states: u8,
    inits: Vec<(u64, Vec<CounterState>)>,
}

/// A reject-only synthesis screen driving [`hill_climb`] over scripted
/// attacks (see the module docs for the soundness argument).
///
/// The filter is deterministic: every candidate is scored on the same
/// seeded scenario sweep with the same seeded search, so a sweep's ledger
/// is reproducible run to run.
#[derive(Clone, Debug)]
pub struct AttackPreFilter {
    /// Scenarios per sweep (seeds `0..scenarios`).
    scenarios: usize,
    /// Explicitly scripted rounds per candidate attack.
    rounds: usize,
    /// Sweep-evaluation budget per candidate.
    budget: u64,
    /// Master search seed.
    seed: u64,
    /// Candidates offered to [`AttackPreFilter::reject`].
    screened: u64,
    /// Candidates rejected (some script provably breaks them).
    rejected: u64,
    /// Sweep evaluations spent across all candidates.
    evaluations: u64,
    /// The last shape's scenario sweep, reused while candidates keep the
    /// same `(n, states)` — a family sweep resamples nothing after the
    /// first candidate.
    warm: Option<WarmSweep>,
}

impl AttackPreFilter {
    /// A filter sweeping `scenarios` seeded initial configurations with
    /// `rounds`-round scripts under a per-candidate evaluation `budget`.
    pub fn new(scenarios: usize, rounds: usize, budget: u64, seed: u64) -> AttackPreFilter {
        AttackPreFilter {
            scenarios: scenarios.max(1),
            rounds: rounds.max(1),
            budget: budget.max(1),
            seed,
            screened: 0,
            rejected: 0,
            evaluations: 0,
            warm: None,
        }
    }

    /// Candidates screened so far.
    pub fn screened(&self) -> u64 {
        self.screened
    }

    /// Candidates rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total sweep evaluations spent so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Scores `lut`; `Some(true)` = provably broken. `None` when the
    /// candidate cannot be scored at all (never a rejection).
    fn breaks(&mut self, lut: &LutCounter) -> Option<bool> {
        let spec = lut.spec().clone();
        let (n, f, states) = (spec.n, spec.f, spec.states);
        // A correct candidate's worst-case stabilisation time is < |X|^n
        // (one attractor layer per configuration); add the confirmation
        // suffix the stability detector needs on top.
        let configs = (states as u64).checked_pow(n as u32)?;
        let horizon = configs.checked_add(sc_sim::required_confirmation(spec.c))?;
        let algo = Algorithm::lut(spec).ok()?;
        let fault_set: Vec<usize> = (0..f).collect();
        // Lend the warm sweep to the objective (a move, not a clone) and
        // recover it after scoring; the first candidate of a shape pays the
        // sampling once and seeds the cache for the rest of the family.
        let warm_inits = self
            .warm
            .as_mut()
            .filter(|w| w.n == n && w.states == states)
            .map(|w| std::mem::take(&mut w.inits));
        let mut obj = match warm_inits {
            Some(inits) => {
                match Objective::with_inits(&algo, &algo, fault_set.clone(), inits, horizon) {
                    Ok(obj) => obj,
                    Err(_) => {
                        // The lent sweep is gone; drop the emptied cache
                        // rather than let a later hit see zero scenarios.
                        self.warm = None;
                        return None;
                    }
                }
            }
            None => {
                let obj = Objective::new(
                    &algo,
                    &algo,
                    fault_set.clone(),
                    0..self.scenarios as u64,
                    horizon,
                )
                .ok()?;
                self.warm = Some(WarmSweep {
                    n,
                    states,
                    inits: Vec::new(),
                });
                obj
            }
        };
        obj.attach_sliced();
        let broken = if fault_set.is_empty() {
            // No adversary moves to search: one empty script scores the
            // candidate's intrinsic convergence on the whole sweep.
            let script = Script::new(n, vec![], vec![], 0).ok();
            script.map(|script| {
                let delay = obj.evaluate(&script);
                self.evaluations += obj.evaluations();
                delay.unstable > 0
            })
        } else {
            let space = MoveSpace {
                raw_values: states,
                salts: 2,
                max_lag: 2,
            };
            let mut cfg = SearchConfig::new(self.rounds, space, self.seed);
            cfg.budget = self.budget;
            cfg.restarts = 2;
            // The filter is one stage of the synthesiser's own loop; keep
            // each candidate's search on the calling thread.
            cfg.threads = 1;
            let report = hill_climb(&obj, &cfg);
            self.evaluations += report.evaluations;
            Some(report.delay.unstable > 0)
        };
        if let Some(warm) = self.warm.as_mut() {
            warm.inits = obj.into_inits();
        }
        broken
    }
}

impl CandidateFilter for AttackPreFilter {
    fn reject(&mut self, lut: &LutCounter) -> bool {
        self.screened += 1;
        let broken = self.breaks(lut).unwrap_or(false);
        if broken {
            self.rejected += 1;
        }
        broken
    }

    /// The filter screens concurrently: every candidate is scored on the
    /// same seeded sweep with the same seeded search, independent of
    /// screening order, so forks reject exactly what the parent would.
    /// Forks start with zeroed audit counters (and inherit the parent's
    /// warm sweep, which is shape-keyed pure data).
    fn fork(&self) -> Option<AttackPreFilter> {
        Some(AttackPreFilter {
            scenarios: self.scenarios,
            rounds: self.rounds,
            budget: self.budget,
            seed: self.seed,
            screened: 0,
            rejected: 0,
            evaluations: 0,
            warm: self.warm.clone(),
        })
    }

    fn absorb(&mut self, fork: AttackPreFilter) {
        self.screened += fork.screened;
        self.rejected += fork.rejected;
        self.evaluations += fork.evaluations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::LutSpec;
    use sc_verifier::{analyze, CandidateFilter};

    /// The exchangeable "follow the max, then increment" table: 0-resilient,
    /// so with one faulty node a constant-high script freezes it.
    fn follow_max(n: usize, f: usize) -> LutCounter {
        let rows: Vec<u8> = (0..2u32.pow(n as u32))
            .map(|index| {
                let max = (0..n).map(|u| (index >> u & 1) as u8).max().unwrap();
                (max + 1) % 2
            })
            .collect();
        LutCounter::new(LutSpec {
            n,
            f,
            c: 2,
            states: 2,
            transition: vec![rows; n],
            output: vec![vec![0, 1]; n],
            stabilization_bound: 0,
        })
        .unwrap()
    }

    #[test]
    fn rejects_a_breakable_candidate_and_audits_the_ledger() {
        let lut = follow_max(4, 1);
        let mut filter = AttackPreFilter::new(4, 3, 64, 7);
        assert!(filter.reject(&lut), "follow-max with f = 1 must be broken");
        assert_eq!(filter.screened(), 1);
        assert_eq!(filter.rejected(), 1);
        assert!(filter.evaluations() > 0);
        // Reject-only audit: the exhaustive checker agrees it fails.
        assert!(analyze(&lut).unwrap().failure.is_some());
    }

    #[test]
    fn passes_a_correct_candidate_through() {
        // The trivial fault-free 2-counter on one node cycles 0 → 1 → 0:
        // correct, so the filter must not reject it.
        let lut = LutCounter::new(LutSpec {
            n: 1,
            f: 0,
            c: 2,
            states: 2,
            transition: vec![vec![1, 0]],
            output: vec![vec![0, 1]],
            stabilization_bound: 0,
        })
        .unwrap();
        let mut filter = AttackPreFilter::new(4, 2, 16, 1);
        assert!(!filter.reject(&lut));
        assert_eq!(filter.screened(), 1);
        assert_eq!(filter.rejected(), 0);
    }
}
