//! The attack pre-filter: a budgeted adversary search as a synthesis
//! screen, implementing [`sc_verifier::CandidateFilter`].
//!
//! # Soundness (reject-only)
//!
//! The exhaustive checker decides a candidate by attractor layering over
//! at most `|X|^h ≤ |X|^n` honest configurations, so a **correct**
//! candidate stabilises every execution within strictly fewer than
//! `|X|^n` rounds — no adversary, scripted or not, can delay it longer.
//! The filter therefore scores each candidate with a horizon of
//! `|X|^n + required_confirmation(c)` (the confirmation suffix the
//! stability detector needs): if *any* evaluated script leaves a scenario
//! unstable at that horizon ([`Delay::unstable`] `> 0`), the candidate is
//! provably not a self-stabilising `c`-counter and is rejected. A
//! candidate no script breaks is **never** accepted here — it merely
//! survives to the exhaustive quotient solver, which remains the sole
//! source of `Stabilizes` verdicts. Scripted runs snapshot, so unstable
//! lassos exit at the first recurrence instead of executing the full
//! nominal horizon; with the bit-sliced path attached, a sweep costs
//! 64 scenarios per word.
//!
//! Anything that prevents scoring at all — an instance the simulator
//! cannot host, a fault set the script codec rejects — makes the filter
//! pass the candidate through (`false`), keeping rejections sound by
//! construction.

use sc_core::{Algorithm, CounterState, LutCounter};
use sc_verifier::CandidateFilter;

use crate::search::{hill_climb, SearchConfig};
use crate::{MoveSpace, Objective, Script};

#[cfg(feature = "trace")]
pub use meter::FilterMeter;

#[cfg(not(feature = "trace"))]
pub use meter_noop::FilterMeter;

/// Live metering for [`AttackPreFilter`] sweeps (`trace` feature on).
///
/// The filter's own `screened`/`rejected`/`evaluations` ledger is
/// fork-local — worker forks report zero until [`CandidateFilter::absorb`]
/// folds them back at the end of a sweep chunk. A [`FilterMeter`] is the
/// live view: forks share the parent's counter cells (cloning the meter
/// clones `Arc`s), so a long family sweep's reject rate and evals/s read
/// correctly *while* workers screen.
#[cfg(feature = "trace")]
mod meter {
    use std::fmt;
    use std::sync::Arc;
    use std::time::Instant;

    use sc_obs::{CounterCell, MetricsSnapshot, Registry};

    struct Inner {
        registry: Registry,
        screened: Arc<CounterCell>,
        rejected: Arc<CounterCell>,
        evaluations: Arc<CounterCell>,
        started: Instant,
    }

    /// Shared pre-filter meter; see the module docs. Default instances
    /// are detached (every call is a `None` check).
    #[derive(Clone, Default)]
    pub struct FilterMeter {
        inner: Option<Arc<Inner>>,
    }

    impl FilterMeter {
        /// An attached meter with live counters.
        pub fn recording() -> FilterMeter {
            let registry = Registry::new();
            FilterMeter {
                inner: Some(Arc::new(Inner {
                    screened: registry.counter("attack.screened"),
                    rejected: registry.counter("attack.rejected"),
                    evaluations: registry.counter("attack.evaluations"),
                    registry,
                    started: Instant::now(),
                })),
            }
        }

        /// Whether this meter records anything.
        pub fn is_recording(&self) -> bool {
            self.inner.is_some()
        }

        #[inline]
        pub(crate) fn screened_inc(&self) {
            if let Some(inner) = &self.inner {
                inner.screened.inc();
            }
        }

        #[inline]
        pub(crate) fn rejected_inc(&self) {
            if let Some(inner) = &self.inner {
                inner.rejected.inc();
            }
        }

        #[inline]
        pub(crate) fn evals_add(&self, n: u64) {
            if let Some(inner) = &self.inner {
                inner.evaluations.add(n);
            }
        }

        /// `(screened, rejected, evaluations)` so far, across every
        /// holder of this meter — forks included.
        pub fn counts(&self) -> (u64, u64, u64) {
            self.inner.as_ref().map_or((0, 0, 0), |i| {
                (i.screened.get(), i.rejected.get(), i.evaluations.get())
            })
        }

        /// Fraction of screened candidates rejected so far (0 when
        /// nothing was screened).
        pub fn reject_rate(&self) -> f64 {
            let (screened, rejected, _) = self.counts();
            if screened == 0 {
                0.0
            } else {
                rejected as f64 / screened as f64
            }
        }

        /// Sweep evaluations per second since the meter was created.
        pub fn evals_per_sec(&self) -> f64 {
            self.inner.as_ref().map_or(0.0, |i| {
                let secs = i.started.elapsed().as_secs_f64();
                if secs > 0.0 {
                    i.evaluations.get() as f64 / secs
                } else {
                    0.0
                }
            })
        }

        /// Snapshot of the meters, with the derived rates folded in as
        /// the `attack.reject_rate_permille` / `attack.evals_per_sec`
        /// gauges.
        pub fn metrics(&self) -> Option<MetricsSnapshot> {
            self.inner.as_ref().map(|i| {
                i.registry
                    .gauge("attack.reject_rate_permille")
                    .set((self.reject_rate() * 1000.0) as i64);
                i.registry
                    .gauge("attack.evals_per_sec")
                    .set(self.evals_per_sec() as i64);
                i.registry.snapshot()
            })
        }
    }

    impl fmt::Debug for FilterMeter {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match &self.inner {
                Some(_) => {
                    let (screened, rejected, evaluations) = self.counts();
                    write!(
                        f,
                        "FilterMeter(recording, screened: {screened}, \
                         rejected: {rejected}, evaluations: {evaluations})"
                    )
                }
                None => write!(f, "FilterMeter(detached)"),
            }
        }
    }
}

/// No-op mirror of the pre-filter meter (`trace` feature off).
#[cfg(not(feature = "trace"))]
mod meter_noop {
    /// Pre-filter meter (`trace` feature off): a ZST whose every method
    /// is an inlined empty body. `Clone` only (no `Copy`) so call sites
    /// clone identically under both feature states.
    #[derive(Clone, Debug, Default)]
    pub struct FilterMeter {}

    impl FilterMeter {
        /// A no-op meter (the `trace` feature is off).
        pub fn recording() -> FilterMeter {
            FilterMeter {}
        }

        /// Always `false` without the `trace` feature.
        #[inline(always)]
        pub fn is_recording(&self) -> bool {
            false
        }

        #[inline(always)]
        pub(crate) fn screened_inc(&self) {}

        #[inline(always)]
        pub(crate) fn rejected_inc(&self) {}

        #[inline(always)]
        pub(crate) fn evals_add(&self, _n: u64) {}

        /// Always zero without the `trace` feature.
        #[inline(always)]
        pub fn counts(&self) -> (u64, u64, u64) {
            (0, 0, 0)
        }

        /// Always 0 without the `trace` feature.
        #[inline(always)]
        pub fn reject_rate(&self) -> f64 {
            0.0
        }

        /// Always 0 without the `trace` feature.
        #[inline(always)]
        pub fn evals_per_sec(&self) -> f64 {
            0.0
        }
    }
}

/// Cross-candidate invariants of one candidate shape: the seeded scenario
/// sweep [`Objective::new`] would sample. The initial configurations are a
/// pure function of `(n, states)` and the filter's scenario count — a LUT
/// state is drawn as `clamp(rng.next_u64() as u8)` per node, blind to the
/// transition tables — so reusing them across a family sweep is
/// bitwise-neutral. The per-candidate work that genuinely differs (the LUT
/// algorithm and its compiled sliced model) still rebuilds in
/// [`AttackPreFilter::reject`].
#[derive(Clone, Debug)]
struct WarmSweep {
    n: usize,
    states: u8,
    inits: Vec<(u64, Vec<CounterState>)>,
}

/// A reject-only synthesis screen driving [`hill_climb`] over scripted
/// attacks (see the module docs for the soundness argument).
///
/// The filter is deterministic: every candidate is scored on the same
/// seeded scenario sweep with the same seeded search, so a sweep's ledger
/// is reproducible run to run.
#[derive(Clone, Debug)]
pub struct AttackPreFilter {
    /// Scenarios per sweep (seeds `0..scenarios`).
    scenarios: usize,
    /// Explicitly scripted rounds per candidate attack.
    rounds: usize,
    /// Sweep-evaluation budget per candidate.
    budget: u64,
    /// Master search seed.
    seed: u64,
    /// Candidates offered to [`AttackPreFilter::reject`].
    screened: u64,
    /// Candidates rejected (some script provably breaks them).
    rejected: u64,
    /// Sweep evaluations spent across all candidates.
    evaluations: u64,
    /// The last shape's scenario sweep, reused while candidates keep the
    /// same `(n, states)` — a family sweep resamples nothing after the
    /// first candidate.
    warm: Option<WarmSweep>,
    /// Live shared meter (a no-op ZST without the `trace` feature).
    meter: FilterMeter,
}

impl AttackPreFilter {
    /// A filter sweeping `scenarios` seeded initial configurations with
    /// `rounds`-round scripts under a per-candidate evaluation `budget`.
    pub fn new(scenarios: usize, rounds: usize, budget: u64, seed: u64) -> AttackPreFilter {
        AttackPreFilter {
            scenarios: scenarios.max(1),
            rounds: rounds.max(1),
            budget: budget.max(1),
            seed,
            screened: 0,
            rejected: 0,
            evaluations: 0,
            warm: None,
            meter: FilterMeter::default(),
        }
    }

    /// Attaches a live [`FilterMeter`]: every screen, rejection and sweep
    /// evaluation — across worker forks too — is counted into the meter's
    /// shared cells as it happens, unlike the fork-local audit ledger
    /// that only folds at [`CandidateFilter::absorb`]. Screening results
    /// are unchanged.
    pub fn with_meter(mut self, meter: FilterMeter) -> AttackPreFilter {
        self.meter = meter;
        self
    }

    /// Candidates screened so far.
    pub fn screened(&self) -> u64 {
        self.screened
    }

    /// Candidates rejected so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total sweep evaluations spent so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Scores `lut`; `Some(true)` = provably broken. `None` when the
    /// candidate cannot be scored at all (never a rejection).
    fn breaks(&mut self, lut: &LutCounter) -> Option<bool> {
        let spec = lut.spec().clone();
        let (n, f, states) = (spec.n, spec.f, spec.states);
        // A correct candidate's worst-case stabilisation time is < |X|^n
        // (one attractor layer per configuration); add the confirmation
        // suffix the stability detector needs on top.
        let configs = (states as u64).checked_pow(n as u32)?;
        let horizon = configs.checked_add(sc_sim::required_confirmation(spec.c))?;
        let algo = Algorithm::lut(spec).ok()?;
        let fault_set: Vec<usize> = (0..f).collect();
        // Lend the warm sweep to the objective (a move, not a clone) and
        // recover it after scoring; the first candidate of a shape pays the
        // sampling once and seeds the cache for the rest of the family.
        let warm_inits = self
            .warm
            .as_mut()
            .filter(|w| w.n == n && w.states == states)
            .map(|w| std::mem::take(&mut w.inits));
        let mut obj = match warm_inits {
            Some(inits) => {
                match Objective::with_inits(&algo, &algo, fault_set.clone(), inits, horizon) {
                    Ok(obj) => obj,
                    Err(_) => {
                        // The lent sweep is gone; drop the emptied cache
                        // rather than let a later hit see zero scenarios.
                        self.warm = None;
                        return None;
                    }
                }
            }
            None => {
                let obj = Objective::new(
                    &algo,
                    &algo,
                    fault_set.clone(),
                    0..self.scenarios as u64,
                    horizon,
                )
                .ok()?;
                self.warm = Some(WarmSweep {
                    n,
                    states,
                    inits: Vec::new(),
                });
                obj
            }
        };
        obj.attach_sliced();
        let broken = if fault_set.is_empty() {
            // No adversary moves to search: one empty script scores the
            // candidate's intrinsic convergence on the whole sweep.
            let script = Script::new(n, vec![], vec![], 0).ok();
            script.map(|script| {
                let delay = obj.evaluate(&script);
                self.evaluations += obj.evaluations();
                self.meter.evals_add(obj.evaluations());
                delay.unstable > 0
            })
        } else {
            let space = MoveSpace {
                raw_values: states,
                salts: 2,
                max_lag: 2,
            };
            let mut cfg = SearchConfig::new(self.rounds, space, self.seed);
            cfg.budget = self.budget;
            cfg.restarts = 2;
            // The filter is one stage of the synthesiser's own loop; keep
            // each candidate's search on the calling thread.
            cfg.threads = 1;
            let report = hill_climb(&obj, &cfg);
            self.evaluations += report.evaluations;
            self.meter.evals_add(report.evaluations);
            Some(report.delay.unstable > 0)
        };
        if let Some(warm) = self.warm.as_mut() {
            warm.inits = obj.into_inits();
        }
        broken
    }
}

impl CandidateFilter for AttackPreFilter {
    fn reject(&mut self, lut: &LutCounter) -> bool {
        self.screened += 1;
        self.meter.screened_inc();
        let broken = self.breaks(lut).unwrap_or(false);
        if broken {
            self.rejected += 1;
            self.meter.rejected_inc();
        }
        broken
    }

    /// The filter screens concurrently: every candidate is scored on the
    /// same seeded sweep with the same seeded search, independent of
    /// screening order, so forks reject exactly what the parent would.
    /// Forks start with zeroed audit counters (and inherit the parent's
    /// warm sweep, which is shape-keyed pure data).
    fn fork(&self) -> Option<AttackPreFilter> {
        Some(AttackPreFilter {
            scenarios: self.scenarios,
            rounds: self.rounds,
            budget: self.budget,
            seed: self.seed,
            screened: 0,
            rejected: 0,
            evaluations: 0,
            warm: self.warm.clone(),
            // Forks share the parent's meter cells, so the meter reads
            // live totals while `absorb` still folds the audit ledger.
            meter: self.meter.clone(),
        })
    }

    fn absorb(&mut self, fork: AttackPreFilter) {
        self.screened += fork.screened;
        self.rejected += fork.rejected;
        self.evaluations += fork.evaluations;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sc_core::LutSpec;
    use sc_verifier::{analyze, CandidateFilter};

    /// The exchangeable "follow the max, then increment" table: 0-resilient,
    /// so with one faulty node a constant-high script freezes it.
    fn follow_max(n: usize, f: usize) -> LutCounter {
        let rows: Vec<u8> = (0..2u32.pow(n as u32))
            .map(|index| {
                let max = (0..n).map(|u| (index >> u & 1) as u8).max().unwrap();
                (max + 1) % 2
            })
            .collect();
        LutCounter::new(LutSpec {
            n,
            f,
            c: 2,
            states: 2,
            transition: vec![rows; n],
            output: vec![vec![0, 1]; n],
            stabilization_bound: 0,
        })
        .unwrap()
    }

    #[test]
    fn rejects_a_breakable_candidate_and_audits_the_ledger() {
        let lut = follow_max(4, 1);
        let mut filter = AttackPreFilter::new(4, 3, 64, 7);
        assert!(filter.reject(&lut), "follow-max with f = 1 must be broken");
        assert_eq!(filter.screened(), 1);
        assert_eq!(filter.rejected(), 1);
        assert!(filter.evaluations() > 0);
        // Reject-only audit: the exhaustive checker agrees it fails.
        assert!(analyze(&lut).unwrap().failure.is_some());
    }

    #[test]
    fn passes_a_correct_candidate_through() {
        // The trivial fault-free 2-counter on one node cycles 0 → 1 → 0:
        // correct, so the filter must not reject it.
        let lut = LutCounter::new(LutSpec {
            n: 1,
            f: 0,
            c: 2,
            states: 2,
            transition: vec![vec![1, 0]],
            output: vec![vec![0, 1]],
            stabilization_bound: 0,
        })
        .unwrap();
        let mut filter = AttackPreFilter::new(4, 2, 16, 1);
        assert!(!filter.reject(&lut));
        assert_eq!(filter.screened(), 1);
        assert_eq!(filter.rejected(), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn meter_mirrors_the_ledger_across_forks() {
        let lut = follow_max(4, 1);
        let meter = FilterMeter::recording();
        let mut filter = AttackPreFilter::new(4, 3, 64, 7).with_meter(meter.clone());
        assert!(filter.reject(&lut));
        // A fork screens into the *same* meter while its own ledger
        // stays fork-local until absorb.
        let mut fork = filter.fork().expect("filter forks");
        assert!(fork.reject(&lut));
        assert_eq!(fork.screened(), 1);
        assert_eq!(filter.screened(), 1, "parent ledger not yet folded");
        let (screened, rejected, evaluations) = meter.counts();
        assert_eq!(screened, 2, "meter reads live totals across forks");
        assert_eq!(rejected, 2);
        assert!(evaluations > 0);
        filter.absorb(fork);
        assert_eq!(filter.screened(), 2);
        assert_eq!(
            meter.counts().0,
            filter.screened(),
            "after absorb, ledger and meter agree"
        );
        assert!((meter.reject_rate() - 1.0).abs() < f64::EPSILON);
        let metrics = meter.metrics().expect("recording meter");
        assert_eq!(metrics.counter("attack.screened"), Some(2));
        assert_eq!(metrics.counter("attack.rejected"), Some(2));
    }
}
