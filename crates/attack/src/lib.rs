//! Worst-case adversary search: scripted attacks as data, verifier
//! witnesses as seeds, guided search over the equivocation space.
//!
//! The paper's guarantees are worst-case over *all* Byzantine behaviours,
//! but a library of hand-written strategies (crash, two-faced, replay, …)
//! only samples a dozen points of that space — measured stabilisation
//! times say nothing about the *tightness* of the proven bounds. This
//! crate closes the gap with three layers:
//!
//! * **Scripts as data** — a [`Script`] fixes one [`Move`] per (round,
//!   faulty sender, receiver) in lasso form, with a compact lossless codec
//!   ([`Script::encode`] / [`Script::decode`]) and lossless import from
//!   exhaustive-verifier witnesses ([`Script::from_witness`]). The
//!   [`ScriptedAdversary`] executes any script on the live engine over the
//!   borrow-based message plane, and snapshots
//!   ([`sc_sim::Adversary::snapshot`]) so scripted runs ride the
//!   early-decision exit.
//! * **An objective harness** — [`Objective`] scores a script (or any
//!   adversary, for comparison) by the stabilisation [`Delay`] it inflicts
//!   on a fixed `(seed, fault set)` sweep, with
//!   `Simulation::run_until_stable_early` as the inner loop and in-place
//!   script edits between evaluations (the synthesiser's mutate/undo
//!   pattern). [`Objective::attach_sliced`] reroutes evaluation through
//!   the bit-sliced engine ([`sc_sim::SlicedBatch`]) — 64 scenarios per
//!   word, verdicts bitwise-identical, ≥ 20× faster on deep stacks.
//! * **Search strategies** — [`search::random_search`],
//!   [`search::hill_climb`], [`search::beam_search`] and the structured
//!   annealer [`search::anneal`] (faulty-row copies, round swaps, prefix
//!   crossover between elite scripts — moves the cheap sliced evals make
//!   affordable), plus the combined [`search::search`] and the
//!   bound-tightness sweep [`search::period_profile`]; all deterministic
//!   from a seed and fanned out with [`std::thread::scope`] behind the
//!   `parallel` feature.
//! * **A synthesis pre-filter** — [`AttackPreFilter`] packages a budgeted
//!   seeded search as a [`sc_verifier::CandidateFilter`]: candidates a
//!   cheap scripted attack provably breaks never reach the exhaustive
//!   solver. Reject-only by construction — see the soundness argument in
//!   the module docs.
//!
//! At verifier scale the two ends meet: on an instance the exhaustive
//! checker refutes, a seeded search rediscovers a witness-equivalent
//! non-stabilising script from delay measurements alone — and past that
//! scale, search is the only machinery probing how bad an adversary can
//! actually be.
//!
//! # Example
//!
//! Replay a model-checker witness on the live simulator through a script:
//!
//! ```
//! use sc_attack::{Script, ScriptedAdversary};
//! use sc_core::{Algorithm, CounterState, LutSpec};
//! use sc_sim::Simulation;
//! use sc_verifier::{verify, Verdict};
//!
//! // Follow-max is 0-resilient: the checker refutes it and extracts a
//! // witness lasso.
//! let rows: Vec<u8> = (0..16u32)
//!     .map(|index| {
//!         let max = (0..4).map(|u| (index >> u & 1) as u8).max().unwrap();
//!         (max + 1) % 2
//!     })
//!     .collect();
//! let spec = LutSpec {
//!     n: 4,
//!     f: 1,
//!     c: 2,
//!     states: 2,
//!     transition: vec![rows.clone(), rows.clone(), rows.clone(), rows],
//!     output: vec![vec![0, 1]; 4],
//!     stabilization_bound: 0,
//! };
//! let lut = sc_core::LutCounter::new(spec.clone())?;
//! let Verdict::Fails { witness, .. } = verify(&lut)? else { panic!() };
//!
//! // Import the witness as a script and drive the real engine with it.
//! let script = Script::from_witness(&witness);
//! let algo = Algorithm::lut(spec)?;
//! let mut states = vec![CounterState::Lut(0); 4];
//! for (hi, &node) in witness.honest.iter().enumerate() {
//!     states[node] = CounterState::Lut(witness.configs[0][hi]);
//! }
//! let adversary = ScriptedAdversary::new(&script, &algo);
//! let mut sim = Simulation::with_states(&algo, adversary, states, 0);
//! sim.step();
//! for (hi, &node) in witness.honest.iter().enumerate() {
//!     assert_eq!(sim.states()[node], CounterState::Lut(witness.configs[1][hi]));
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adversary;
mod objective;
mod prefilter;
mod script;
pub mod search;
mod sliced;

pub use adversary::{RawState, SampledRaw, ScriptedAdversary};
pub use objective::{Delay, Objective};
pub use prefilter::{AttackPreFilter, FilterMeter};
pub use script::{Move, MoveSpace, Script};
pub use search::{PeriodPoint, SearchConfig, SearchReport};
pub use sliced::SlicedScript;
