//! The randomised quorum-follow counter.

use rand::RngCore;
use sc_protocol::{
    bits_for, BitReader, BitVec, CodecError, Counter, MessageView, NodeId, ParamError, StepContext,
    SyncProtocol, Tally,
};

/// Randomised synchronous `c`-counter in the style of rows [6, 7] of
/// Table 1: follow a value supported by an `n−f` quorum, otherwise pick a
/// fresh random value.
///
/// * **Closure**: once all correct nodes hold the same value `w`, every
///   correct node sees `z_w ≥ n−f` forever (correct nodes alone provide the
///   quorum), adopts `w+1`, and counting persists — regardless of Byzantine
///   behaviour.
/// * **Convergence**: with `n > 3f` at most one value can be presented as a
///   quorum in any round (two would need `2(n−2f) ≤ n−f` correct
///   supporters), so in every round the correct nodes that are not forced
///   all randomise, and with probability at least `c^{−(n−f)}` the network
///   lands on one common value. Stabilisation therefore has expected time
///   `O(c^{n−f})` — *exponential*, against the boosted counter's linear
///   time, which is exactly the trade-off Table 1 reports.
///
/// State: `⌈log₂ c⌉` bits (just the counter value).
///
/// # Example
///
/// ```
/// use sc_baselines::RandomizedCounter;
/// use sc_protocol::Counter;
///
/// let r = RandomizedCounter::new(4, 1, 2)?;
/// assert_eq!(r.state_bits(), 1);
/// assert_eq!(r.resilience(), 1);
/// # Ok::<(), sc_protocol::ParamError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RandomizedCounter {
    n: usize,
    f: usize,
    c: u64,
}

impl RandomizedCounter {
    /// A randomised `c`-counter for `n` nodes tolerating `f < n/3` faults.
    ///
    /// # Errors
    ///
    /// Returns [`ParamError`] unless `n > 3f` and `c ≥ 2`.
    pub fn new(n: usize, f: usize, c: u64) -> Result<Self, ParamError> {
        if n <= 3 * f {
            return Err(ParamError::constraint(format!(
                "randomised counting requires n > 3f, got n = {n}, f = {f}"
            )));
        }
        if c < 2 {
            return Err(ParamError::constraint(format!(
                "counter modulus must be ≥ 2, got {c}"
            )));
        }
        Ok(RandomizedCounter { n, f, c })
    }

    /// The quorum size `n − f`.
    pub fn quorum(&self) -> usize {
        self.n - self.f
    }

    /// Geometric estimate of the *expected* stabilisation time,
    /// `c^{n−f}` rounds (saturating). This is the quantity Table 1 lists for
    /// randomised algorithms; there is no worst-case deterministic bound.
    pub fn expected_stabilization(&self) -> u64 {
        self.c.saturating_pow((self.n - self.f) as u32)
    }
}

impl SyncProtocol for RandomizedCounter {
    type State = u64;

    fn n(&self) -> usize {
        self.n
    }

    fn step(&self, _node: NodeId, view: &MessageView<'_, u64>, ctx: &mut StepContext<'_>) -> u64 {
        let tally: Tally = view.iter().map(|&v| v % self.c).collect();
        match tally.min_value_with_count_over(self.quorum() - 1) {
            Some(w) => (w + 1) % self.c,
            None => ctx.rng.next_u64() % self.c,
        }
    }

    fn output(&self, _node: NodeId, state: &u64) -> u64 {
        *state % self.c
    }

    fn random_state(&self, _node: NodeId, rng: &mut dyn RngCore) -> u64 {
        rng.next_u64() % self.c
    }
}

impl Counter for RandomizedCounter {
    fn modulus(&self) -> u64 {
        self.c
    }

    fn resilience(&self) -> usize {
        self.f
    }

    fn state_bits(&self) -> u32 {
        bits_for(self.c)
    }

    /// For this *randomised* algorithm the value is the expected
    /// stabilisation time (the convention of Table 1), not a worst-case
    /// promise.
    fn stabilization_bound(&self) -> u64 {
        self.expected_stabilization()
    }

    fn encode_state(&self, _node: NodeId, state: &u64, out: &mut BitVec) {
        out.push_bits(*state % self.c, self.state_bits());
    }

    fn decode_state(&self, _node: NodeId, input: &mut BitReader<'_>) -> Result<u64, CodecError> {
        let raw = input.read_bits(self.state_bits())?;
        if raw >= self.c {
            return Err(CodecError::InvalidField {
                field: "randomised counter value",
                value: raw,
            });
        }
        Ok(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use sc_sim::{adversaries, Simulation};

    #[test]
    fn construction_is_validated() {
        assert!(RandomizedCounter::new(3, 1, 2).is_err());
        assert!(RandomizedCounter::new(4, 1, 1).is_err());
        assert!(RandomizedCounter::new(4, 1, 2).is_ok());
    }

    #[test]
    fn quorum_forces_following() {
        let r = RandomizedCounter::new(4, 1, 4).unwrap();
        let states = vec![2u64, 2, 2, 0];
        let view = MessageView::new(&states, &[]);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut ctx = StepContext::new(&mut rng);
        // Quorum of 3 on value 2 → adopt 3.
        assert_eq!(r.step(NodeId::new(0), &view, &mut ctx), 3);
    }

    #[test]
    fn no_quorum_randomises_within_domain() {
        let r = RandomizedCounter::new(4, 1, 4).unwrap();
        let states = vec![0u64, 1, 2, 3];
        let view = MessageView::new(&states, &[]);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..20 {
            let mut ctx = StepContext::new(&mut rng);
            assert!(r.step(NodeId::new(0), &view, &mut ctx) < 4);
        }
    }

    #[test]
    fn stabilises_under_byzantine_faults() {
        let r = RandomizedCounter::new(4, 1, 2).unwrap();
        // Expected time ~ 2^3 = 8; a 2000-round horizon fails with
        // probability < (7/8)^1000 — never, for fixed seeds.
        for seed in 0..5 {
            let adv = adversaries::two_faced(&r, [1], seed);
            let mut sim = Simulation::new(&r, adv, seed);
            let report = sim.run_until_stable(2000).unwrap_or_else(|e| {
                panic!("randomised counter failed to stabilise (seed {seed}): {e}")
            });
            assert!(report.confirmed_rounds >= 4);
        }
    }

    #[test]
    fn agreement_is_absorbing() {
        let r = RandomizedCounter::new(7, 2, 3).unwrap();
        let adv = adversaries::random(&r, [0, 6], 3);
        let mut sim = Simulation::with_states(&r, adv, vec![1; 7], 9);
        let trace = sim.run_trace(200);
        for t in 0..trace.len() {
            assert!(
                trace.agreed_value(t).is_some(),
                "agreement lost at round {t}"
            );
        }
    }

    #[test]
    fn codec_and_bounds() {
        let r = RandomizedCounter::new(4, 1, 2).unwrap();
        assert_eq!(r.expected_stabilization(), 8);
        let mut bits = BitVec::new();
        r.encode_state(NodeId::new(0), &1, &mut bits);
        assert_eq!(bits.len(), 1);
        assert_eq!(
            r.decode_state(NodeId::new(0), &mut bits.reader()).unwrap(),
            1
        );
    }
}
