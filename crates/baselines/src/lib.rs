//! Baseline synchronous counters for the Table 1 comparison.
//!
//! Table 1 of *Towards Optimal Synchronous Counting* compares the paper's
//! deterministic construction against space-efficient *randomised*
//! algorithms in the style of [6, 7] (S. Dolev's book; Dolev–Welch): "the
//! nodes can just pick random states until a clear majority of them has the
//! same state, after which they start to follow the majority". These have
//! tiny state (the counter value itself) but exponential expected
//! stabilisation time — the shape the Table 1 harness (experiment E1)
//! measures against the boosted counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod randomized;

pub use randomized::RandomizedCounter;
