//! Transient-fault recovery: the defining scenario of self-stabilisation.
//!
//! A protocol that stabilises from arbitrary initial states also recovers
//! from arbitrary *mid-run* corruption — the initial configuration is just
//! the state after "the last transient fault". These tests drive a simple
//! fault-free counter through repeated corruption bursts.

use rand::RngCore;
use sc_protocol::{Counter, MessageView, NodeId, StepContext, SyncProtocol};
use sc_sim::{adversaries, Simulation};

/// Fault-free self-stabilising counter used as the subject.
#[derive(Clone, Debug)]
struct FollowMax {
    n: usize,
    c: u64,
}

impl SyncProtocol for FollowMax {
    type State = u64;
    fn n(&self) -> usize {
        self.n
    }
    fn step(&self, _: NodeId, view: &MessageView<'_, u64>, _: &mut StepContext<'_>) -> u64 {
        (view.iter().max().copied().unwrap() + 1) % self.c
    }
    fn output(&self, _: NodeId, s: &u64) -> u64 {
        *s
    }
    fn random_state(&self, _: NodeId, rng: &mut dyn RngCore) -> u64 {
        rng.next_u64() % self.c
    }
}

impl Counter for FollowMax {
    fn modulus(&self) -> u64 {
        self.c
    }
    fn resilience(&self) -> usize {
        0
    }
    fn state_bits(&self) -> u32 {
        sc_protocol::bits_for(self.c)
    }
    fn stabilization_bound(&self) -> u64 {
        1
    }
    fn encode_state(&self, _: NodeId, s: &u64, out: &mut sc_protocol::BitVec) {
        out.push_bits(*s, self.state_bits());
    }
    fn decode_state(
        &self,
        _: NodeId,
        r: &mut sc_protocol::BitReader<'_>,
    ) -> Result<u64, sc_protocol::CodecError> {
        r.read_bits(self.state_bits())
    }
}

#[test]
fn recovers_after_total_corruption() {
    let p = FollowMax { n: 5, c: 8 };
    let mut sim = Simulation::new(&p, adversaries::none(), 1);
    sim.run_until_stable(64).unwrap();
    for burst in 0..5u64 {
        sim.corrupt_all(1000 + burst);
        let report = sim.run_until_stable(64).unwrap();
        assert!(
            report.stabilization_round <= 2,
            "burst {burst} not recovered"
        );
    }
}

#[test]
fn partial_corruption_is_no_worse_than_total() {
    let p = FollowMax { n: 5, c: 8 };
    let mut sim = Simulation::new(&p, adversaries::none(), 2);
    sim.run_until_stable(64).unwrap();
    sim.corrupt([NodeId::new(0), NodeId::new(3)], 7);
    let report = sim.run_until_stable(64).unwrap();
    assert!(report.stabilization_round <= 2);
}

#[test]
#[should_panic(expected = "outside the network")]
fn corrupting_unknown_node_panics() {
    let p = FollowMax { n: 3, c: 4 };
    let mut sim = Simulation::new(&p, adversaries::none(), 0);
    sim.corrupt([NodeId::new(9)], 0);
}

#[test]
fn corruption_actually_changes_state() {
    // Guard against a no-op corrupt(): after corruption from a fixed seed,
    // at least one node differs from the stabilised chain with overwhelming
    // probability (c = 2^20).
    let p = FollowMax { n: 4, c: 1 << 20 };
    let mut sim = Simulation::new(&p, adversaries::none(), 3);
    sim.run(32);
    let before = sim.states().to_vec();
    sim.corrupt_all(42);
    assert_ne!(before, sim.states());
}
