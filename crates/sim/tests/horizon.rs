//! `HorizonTooShort` must fire **before** any round executes, on every
//! entry point: a horizon that cannot fit the required confirmation suffix
//! would otherwise pass a near-empty stable tail off as "stable".
//!
//! (The ported pulling engine's fail-fast behaviour is covered in
//! `sc-pulling`'s `pulling_stabilization` suite — same engine, same check.)

use proptest::prelude::*;
use sc_sim::testing::FollowMax;
use sc_sim::{adversaries, required_confirmation, Batch, Scenario, SimError, Simulation};

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// For any modulus and any horizon below the confirmation requirement,
    /// `run_until_stable` rejects up front without consuming a round.
    #[test]
    fn short_horizons_fail_fast_without_running(
        modulus in 2u64..10_000,
        seed in any::<u64>(),
        slack in 1u64..64,
    ) {
        let confirm = required_confirmation(modulus);
        let horizon = confirm.saturating_sub(slack.min(confirm));
        let p = FollowMax { n: 4, c: modulus };
        let mut sim = Simulation::new(&p, adversaries::none(), seed);
        match sim.run_until_stable(horizon) {
            Err(SimError::HorizonTooShort { horizon: h, required }) => {
                prop_assert_eq!(h, horizon);
                prop_assert_eq!(required, confirm);
            }
            other => prop_assert!(false, "expected HorizonTooShort, got {:?}", other),
        }
        prop_assert_eq!(sim.round(), 0, "rejected run must not execute rounds");
    }

    /// The batched sweep rejects every scenario of a too-short sweep with
    /// the same error — no scenario is silently run with a shrunk suffix.
    #[test]
    fn batch_rejects_short_horizons_per_scenario(
        modulus in 2u64..10_000,
        scenarios in 1usize..6,
    ) {
        let confirm = required_confirmation(modulus);
        let p = FollowMax { n: 4, c: modulus };
        let report = Batch::new(&p, confirm - 1)
            .run(&Scenario::seeds(0..scenarios as u64), |_| adversaries::none());
        prop_assert_eq!(report.outcomes.len(), scenarios);
        for outcome in &report.outcomes {
            prop_assert!(matches!(
                outcome.result,
                Err(SimError::HorizonTooShort { required, .. }) if required == confirm
            ));
        }
    }

    /// At exactly the confirmation requirement the run is *attempted* — the
    /// fail-fast bound is tight. (The execution itself usually reports
    /// `NotStabilized` at such a minimal horizon; the property here is only
    /// that rejection does not over-trigger and the rounds are consumed.)
    #[test]
    fn exact_confirmation_horizon_is_accepted(modulus in 2u64..128, seed in any::<u64>()) {
        let confirm = required_confirmation(modulus);
        let p = FollowMax { n: 4, c: modulus };
        let mut sim = Simulation::new(&p, adversaries::none(), seed);
        let result = sim.run_until_stable(confirm);
        prop_assert!(!matches!(result, Err(SimError::HorizonTooShort { .. })));
        prop_assert_eq!(sim.round(), confirm);
    }
}
