//! Sweep-metering suite (`trace` feature): `SimObs` tallies must agree
//! with the report, and metering must not perturb verdicts.

#![cfg(feature = "trace")]

use sc_sim::testing::FollowMax;
use sc_sim::{adversaries, Batch, ExitReason, Scenario, SimObs};

#[test]
fn batch_meters_match_the_report() {
    let p = FollowMax { n: 4, c: 4 };
    let scenarios = Scenario::seeds(0..24);
    let obs = SimObs::recording();
    assert!(obs.is_recording());

    let plain = Batch::new(&p, 40).run(&scenarios, |_| adversaries::none());
    let observed = Batch::new(&p, 40)
        .observed(&obs)
        .run(&scenarios, |_| adversaries::none());
    assert_eq!(
        plain.outcomes, observed.outcomes,
        "metering must not perturb verdicts"
    );

    assert_eq!(obs.scenarios_done(), 24);
    let metrics = obs.metrics().expect("recording bundle");
    assert_eq!(metrics.counter("sim.scenarios"), Some(24));
    assert_eq!(
        metrics.counter("sim.stabilized"),
        Some(observed.summary().stabilized as u64)
    );
    assert_eq!(metrics.counter("sim.exit.full_horizon"), Some(24));
    assert_eq!(metrics.counter("sim.exit.cycle"), Some(0));
    let hist = metrics.hist("sim.stabilization_round").expect("histogram");
    assert_eq!(hist.count, observed.summary().stabilized as u64);
    assert!(obs.scenarios_per_sec() > 0.0);
}

#[test]
fn early_exits_tally_by_reason() {
    let p = FollowMax { n: 4, c: 4 };
    let scenarios = Scenario::seeds(0..16);
    let obs = SimObs::recording();
    let report = Batch::new(&p, 64)
        .observed(&obs)
        .run_early(&scenarios, |_| adversaries::none());

    let metrics = obs.metrics().expect("recording bundle");
    let cycles = report
        .outcomes
        .iter()
        .filter(|o| matches!(o.exit_reason, ExitReason::Cycle { .. }))
        .count() as u64;
    let full = report
        .outcomes
        .iter()
        .filter(|o| o.exit_reason == ExitReason::FullHorizon)
        .count() as u64;
    let opaque = report
        .outcomes
        .iter()
        .filter(|o| o.exit_reason == ExitReason::Opaque)
        .count() as u64;
    assert_eq!(metrics.counter("sim.exit.cycle"), Some(cycles));
    assert_eq!(metrics.counter("sim.exit.full_horizon"), Some(full));
    assert_eq!(metrics.counter("sim.exit.opaque"), Some(opaque));
    assert_eq!(cycles + full + opaque, 16);
    assert!(
        cycles > 0,
        "deterministic fault-free FollowMax runs must cycle out early"
    );
}

#[test]
fn detached_bundle_counts_nothing() {
    let p = FollowMax { n: 3, c: 4 };
    let obs = SimObs::default();
    assert!(!obs.is_recording());
    let scenarios = Scenario::seeds(0..4);
    Batch::new(&p, 40)
        .observed(&obs)
        .run(&scenarios, |_| adversaries::none());
    assert_eq!(obs.scenarios_done(), 0);
    assert!(obs.metrics().is_none());
}
