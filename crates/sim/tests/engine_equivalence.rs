//! The self-check gate for the zero-copy engine, after the retirement of
//! the first-generation `reference_step` oracle (its equivalence gate was
//! green from PR 1 through PR 2): fixed-seed executions must be **bitwise
//! reproducible**, the batched sweep must reproduce looped single-stepped
//! runs verdict for verdict, and per-receiver overrides must never leak
//! between receivers or rounds.

use rand::RngCore;
use sc_protocol::{BitVec, Counter, MessageSource, MessageView, NodeId, StepContext, SyncProtocol};
use sc_sim::{adversaries, Adversary, Batch, RoundContext, Scenario, Simulation, StatePool};

use sc_sim::testing::FollowMax;

/// Runs two independent engines under identical seeds and compares states
/// round by round — bitwise, via the counter's exact codec, not just
/// `PartialEq`. Any hidden global or cross-execution state would diverge
/// the replicas.
fn assert_replay_identical<A, F>(p: &FollowMax, make_adversary: F, rounds: u64)
where
    A: Adversary<u64>,
    F: Fn() -> A,
{
    for seed in 0..5u64 {
        let mut a = Simulation::new(p, make_adversary(), seed);
        let mut b = Simulation::new(p, make_adversary(), seed);
        assert_eq!(a.states(), b.states(), "initial configurations differ");
        for round in 0..rounds {
            a.step();
            b.step();
            assert_eq!(
                a.states(),
                b.states(),
                "state divergence at round {round} (seed {seed})"
            );
            let mut a_bits = BitVec::new();
            let mut b_bits = BitVec::new();
            for &id in a.honest() {
                p.encode_state(id, &a.states()[id.index()], &mut a_bits);
                p.encode_state(id, &b.states()[id.index()], &mut b_bits);
            }
            assert_eq!(
                a_bits, b_bits,
                "encoded-state divergence at round {round} (seed {seed})"
            );
        }
    }
}

#[test]
fn crash_adversary_replays_bitwise() {
    let p = FollowMax { n: 6, c: 1 << 16 };
    assert_replay_identical(&p, || adversaries::crash(&p, [1, 4], 99), 60);
}

#[test]
fn random_adversary_replays_bitwise() {
    let p = FollowMax { n: 6, c: 1 << 16 };
    assert_replay_identical(&p, || adversaries::random(&p, [0, 3], 7), 60);
}

#[test]
fn two_faced_adversary_replays_bitwise() {
    let p = FollowMax { n: 7, c: 1 << 16 };
    assert_replay_identical(&p, || adversaries::two_faced(&p, [2], 13), 60);
}

#[test]
fn fault_free_replays_bitwise() {
    let p = FollowMax { n: 5, c: 64 };
    assert_replay_identical(&p, adversaries::none, 40);
}

#[test]
fn batch_engine_matches_looped_single_step_verdicts() {
    // End-to-end: the batched sweep (streaming detection, no trace) must
    // reproduce, scenario for scenario, what a looped single-stepped run
    // with a materialised trace concludes about the same executions.
    let p = FollowMax { n: 5, c: 8 };
    let scenarios = Scenario::seeds(0..10);
    let report = Batch::new(&p, 64).run(&scenarios, |s: &Scenario<u64>| {
        adversaries::crash(&p, [1], s.seed)
    });
    for scenario in &scenarios {
        let mut sim = Simulation::new(
            &p,
            adversaries::crash(&p, [1], scenario.seed),
            scenario.seed,
        );
        let trace = sim.run_trace(64);
        let expect = sc_sim::detect_stabilization(&trace, 8, sc_sim::required_confirmation(8));
        assert_eq!(
            report.outcomes[scenario.seed as usize].result, expect,
            "verdict divergence at seed {}",
            scenario.seed
        );
    }
}

/// An adversary that equivocates a *distinct* value to every receiver, so
/// any override leaking from one receiver's view into another's is visible
/// in the next states.
struct PerReceiverTagger {
    faulty: Vec<NodeId>,
}

impl Adversary<u64> for PerReceiverTagger {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }
    fn message(
        &mut self,
        from: NodeId,
        to: NodeId,
        ctx: &RoundContext<'_, u64>,
        pool: &mut StatePool<u64>,
    ) -> MessageSource {
        // Tag = round, sender and receiver identity, in disjoint digit
        // ranges; every (round, from, to) triple is unique.
        pool.fabricate(
            1_000_000 + ctx.round * 10_000 + (from.index() as u64) * 100 + to.index() as u64,
        )
    }
}

/// Echoes the value received from the faulty sender: the next state of node
/// `i` *is* what node 0 sent it, making delivery fully observable.
struct EchoFaulty {
    n: usize,
}

impl SyncProtocol for EchoFaulty {
    type State = u64;
    fn n(&self) -> usize {
        self.n
    }
    fn step(&self, _: NodeId, view: &MessageView<'_, u64>, _: &mut StepContext<'_>) -> u64 {
        *view.get(NodeId::new(0))
    }
    fn output(&self, _: NodeId, s: &u64) -> u64 {
        *s
    }
    fn random_state(&self, _: NodeId, rng: &mut dyn RngCore) -> u64 {
        rng.next_u64() % 1_000
    }
}

#[test]
fn overrides_never_leak_between_receivers() {
    let p = EchoFaulty { n: 5 };
    let adv = PerReceiverTagger {
        faulty: vec![NodeId::new(0)],
    };
    let mut sim = Simulation::new(&p, adv, 3);
    for round in 0..10u64 {
        sim.step();
        for &id in sim.honest() {
            let got = sim.states()[id.index()];
            let expect = 1_000_000 + round * 10_000 + id.index() as u64;
            assert_eq!(
                got, expect,
                "receiver {id} observed a foreign override at round {round}"
            );
        }
    }
}
