//! The soundness gate of the early-decision mode: for every adversary the
//! engine can snapshot, the early-exit verdict must be **bitwise identical**
//! to the full-horizon verdict — `Ok` reports and `Err` diagnostics alike —
//! and RNG-driven strategies must never take the early exit at all.

use sc_sim::testing::FollowMax;
use sc_sim::{
    adversaries, greedy, required_confirmation, sleeper, Batch, ExitReason, Scenario, SimError,
    Simulation,
};

/// Runs the same seeded scenario on both paths and demands bitwise-equal
/// verdicts; returns the early exit reason for further assertions.
fn assert_early_matches_full<A, F>(
    p: &FollowMax,
    make_adversary: F,
    horizon: u64,
    seed: u64,
) -> ExitReason
where
    A: sc_sim::Adversary<u64>,
    F: Fn() -> A,
{
    let mut full = Simulation::new(p, make_adversary(), seed);
    let expect = full.run_until_stable(horizon);
    let mut early = Simulation::new(p, make_adversary(), seed);
    let (got, exit) = early.run_until_stable_early(horizon);
    assert_eq!(got, expect, "verdict divergence (seed {seed})");
    exit
}

#[test]
fn fault_free_counting_is_a_fixpoint_class_cycle() {
    // FollowMax stabilises in ≤ 1 round and its configuration then cycles
    // with period c: the early exit must fire right after one full period
    // and still report the exact stabilisation round.
    let p = FollowMax { n: 5, c: 16 };
    for seed in 0..8u64 {
        let exit = assert_early_matches_full(&p, adversaries::none, 4_000, seed);
        match exit {
            ExitReason::Cycle {
                length, decided_at, ..
            } => {
                assert_eq!(length, 16, "period must be the modulus (seed {seed})");
                assert!(
                    decided_at <= 18,
                    "decided late at {decided_at} (seed {seed})"
                );
                assert!(exit.rounds_saved(4_000) >= 4_000 - 18);
            }
            other => panic!("expected a cycle exit, got {other:?} (seed {seed})"),
        }
    }
}

#[test]
fn crash_failures_replay_their_violations_algebraically() {
    // A frozen maximal value wraps FollowMax through a periodic counting
    // violation: the early path must reproduce the exact NotStabilized
    // diagnostics (last violation projected to the horizon tail) without
    // executing the tail.
    let p = FollowMax { n: 5, c: 8 };
    let mut cycles = 0;
    for seed in 0..12u64 {
        let exit = assert_early_matches_full(&p, || adversaries::crash(&p, [4], seed), 2_000, seed);
        if matches!(exit, ExitReason::Cycle { .. }) {
            cycles += 1;
        }
    }
    assert!(cycles >= 10, "crash executions are periodic: {cycles}/12");
}

#[test]
fn fixed_and_replay_adversaries_support_the_early_exit() {
    let p = FollowMax { n: 6, c: 8 };
    for seed in 0..6u64 {
        let exit = assert_early_matches_full(&p, || adversaries::fixed([2], 3u64), 2_000, seed);
        assert!(
            matches!(exit, ExitReason::Cycle { .. }),
            "fixed: {exit:?} (seed {seed})"
        );
        let exit =
            assert_early_matches_full(&p, || adversaries::replay::<u64>([1], 3), 2_000, seed);
        assert!(
            matches!(exit, ExitReason::Cycle { .. }),
            "replay: {exit:?} (seed {seed})"
        );
    }
}

#[test]
fn sleepers_delay_the_cycle_until_after_waking() {
    // The countdown keeps pre-wake configurations distinct, so the cycle
    // can only close after the wake round — and the verdict still matches.
    let p = FollowMax { n: 5, c: 8 };
    for seed in 0..4u64 {
        let wake = 120;
        let make = || sleeper(&p, [3], wake, adversaries::fixed([3], 1u64), seed);
        let exit = assert_early_matches_full(&p, make, 2_000, seed);
        match exit {
            ExitReason::Cycle { start, .. } => {
                assert!(
                    start >= wake,
                    "cycle start {start} before wake {wake} (seed {seed})"
                );
            }
            other => panic!("expected cycle after waking, got {other:?} (seed {seed})"),
        }
    }
}

#[test]
fn rng_driven_adversaries_never_take_the_early_exit() {
    let p = FollowMax { n: 5, c: 8 };
    for seed in 0..4u64 {
        let exit = assert_early_matches_full(&p, || adversaries::random(&p, [2], seed), 200, seed);
        assert_eq!(exit, ExitReason::Opaque, "random (seed {seed})");
        let exit =
            assert_early_matches_full(&p, || adversaries::two_faced(&p, [2], seed), 200, seed);
        assert_eq!(exit, ExitReason::Opaque, "two-faced (seed {seed})");
        let exit = assert_early_matches_full(&p, || greedy(&p, [2], 4, seed), 200, seed);
        assert_eq!(exit, ExitReason::Opaque, "greedy (seed {seed})");
    }
}

#[test]
fn a_sleeper_inherits_its_attacks_opacity() {
    // Deterministic until the wake round, RNG-driven after: the joint
    // strategy must opt out as a whole.
    let p = FollowMax { n: 5, c: 8 };
    let make = || sleeper(&p, [3], 40, adversaries::random(&p, [3], 9), 7);
    let exit = assert_early_matches_full(&p, make, 200, 7);
    assert_eq!(exit, ExitReason::Opaque);
}

#[test]
fn batch_early_sweeps_match_full_sweeps_scenario_for_scenario() {
    let p = FollowMax { n: 5, c: 16 };
    let scenarios = Scenario::seeds(0..16);
    let horizon = 4_000;
    let factory = |s: &Scenario<u64>| adversaries::crash(&p, [1], s.seed);
    let full = Batch::new(&p, horizon).run(&scenarios, factory);
    let early = Batch::new(&p, horizon).run_early(&scenarios, factory);
    assert_eq!(full.outcomes.len(), early.outcomes.len());
    for (f, e) in full.outcomes.iter().zip(&early.outcomes) {
        assert_eq!(f.result, e.result, "seed {}", f.seed);
        assert_eq!(f.exit_reason, ExitReason::FullHorizon);
    }
    assert!(
        early.early_exits() >= 14,
        "crash sweeps are periodic: {}/16 early exits",
        early.early_exits()
    );
    assert!(early.rounds_saved(horizon) > 14 * (horizon - 200));
    assert_eq!(full.rounds_saved(horizon), 0);
}

#[test]
fn batch_early_results_are_thread_count_invariant() {
    let p = FollowMax { n: 5, c: 8 };
    let scenarios = Scenario::seeds(0..9);
    let factory = |s: &Scenario<u64>| adversaries::crash(&p, [2], s.seed);
    let one = Batch::new(&p, 1_000)
        .threads(1)
        .run_early(&scenarios, factory);
    let many = Batch::new(&p, 1_000)
        .threads(4)
        .run_early(&scenarios, factory);
    assert_eq!(one.outcomes, many.outcomes);
}

#[test]
fn early_path_rejects_short_horizons_up_front() {
    let p = FollowMax { n: 4, c: 4 };
    let confirm = required_confirmation(4);
    let mut sim = Simulation::new(&p, adversaries::none(), 3);
    let (result, exit) = sim.run_until_stable_early(confirm - 1);
    assert!(matches!(
        result,
        Err(SimError::HorizonTooShort { required, .. }) if required == confirm
    ));
    assert_eq!(exit, ExitReason::FullHorizon);
    assert_eq!(sim.round(), 0, "rejected run must not execute rounds");
}
