//! Thread-count invariance of the pool-backed `Batch` fan-out: reports
//! must be bitwise identical whatever the thread cap (`SC_THREADS` only
//! picks the default cap — every task is a pure function of its scenario
//! index, and results are folded in submission order). Property-tested
//! over random sweeps at the caps the executor treats differently: 1
//! (serial path), 2 (submitter plus one claimer), and 7 (more claimants
//! than most sweeps have scenarios). The sliced twin lives in
//! `sc-attack`'s `thread_invariance` suite, next to a public
//! `SlicedProtocol` instance.

use proptest::prelude::*;
use sc_sim::testing::FollowMax;
use sc_sim::{adversaries, Batch, Scenario};

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn batch_reports_are_identical_at_caps_1_2_and_7(
        n in 3usize..6,
        c in 2u64..9,
        base_seed in proptest::any::<u32>(),
        scenarios in 1usize..24,
    ) {
        let p = FollowMax { n, c };
        let faulty = n - 1;
        let seeds = (base_seed as u64)..(base_seed as u64 + scenarios as u64);
        let scenarios = Scenario::seeds(seeds);
        let factory = |s: &Scenario<u64>| adversaries::crash(&p, [faulty], s.seed);
        let one = Batch::new(&p, 600).threads(1).run_early(&scenarios, factory);
        for threads in [2, 7] {
            let many = Batch::new(&p, 600)
                .threads(threads)
                .run_early(&scenarios, factory);
            prop_assert_eq!(&one.outcomes, &many.outcomes, "cap {}", threads);
        }
    }
}
