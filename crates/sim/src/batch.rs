//! Batched scenario sweeps: many executions of one protocol, one API call.
//!
//! The paper's guarantees are worst-case statements over *all* initial
//! configurations and adversaries, so everything downstream — the
//! experiment harness, the property tests, exhaustive small-instance work —
//! runs not one execution but sweeps of `(seed, adversary, initial
//! configuration)` scenarios. [`Batch`] is the engine for those sweeps: it
//! drives every scenario through the zero-copy [`Simulation`] core with a
//! streaming [`OnlineDetector`] (no trace is materialised), optionally
//! fanning scenarios out across threads, and aggregates the verdicts.
//!
//! # Example
//!
//! ```
//! use rand::RngCore;
//! use sc_protocol::{Counter, MessageView, NodeId, StepContext, SyncProtocol};
//! use sc_sim::{adversaries, Batch, Scenario};
//!
//! // A toy fault-free 4-counter: follow the minimum received value + 1.
//! struct FollowMin;
//! impl SyncProtocol for FollowMin {
//!     type State = u64;
//!     fn n(&self) -> usize { 3 }
//!     fn step(&self, _: NodeId, view: &MessageView<'_, u64>, _: &mut StepContext<'_>) -> u64 {
//!         (view.iter().min().copied().unwrap() + 1) % 4
//!     }
//!     fn output(&self, _: NodeId, s: &u64) -> u64 { *s }
//!     fn random_state(&self, _: NodeId, rng: &mut dyn RngCore) -> u64 { rng.next_u64() % 4 }
//! }
//! impl Counter for FollowMin {
//!     fn modulus(&self) -> u64 { 4 }
//!     fn resilience(&self) -> usize { 0 }
//!     fn state_bits(&self) -> u32 { 2 }
//!     fn stabilization_bound(&self) -> u64 { 1 }
//!     fn encode_state(&self, _: NodeId, s: &u64, out: &mut sc_protocol::BitVec) {
//!         out.push_bits(*s, 2);
//!     }
//!     fn decode_state(
//!         &self,
//!         _: NodeId,
//!         input: &mut sc_protocol::BitReader<'_>,
//!     ) -> Result<u64, sc_protocol::CodecError> {
//!         input.read_bits(2)
//!     }
//! }
//!
//! let p = FollowMin;
//! let scenarios = Scenario::seeds(0..16);
//! let report = Batch::new(&p, 40).run(&scenarios, |_| adversaries::none());
//! assert_eq!(report.summary().stabilized, 16);
//! assert!(report.summary().worst <= 1);
//! ```

use sc_protocol::{Counter, Fingerprint, PreparedProtocol};

use crate::adversary::Adversary;
use crate::early::ExitReason;
use crate::obs::SimObs;
use crate::simulation::{required_confirmation, Simulation};
use crate::stabilization::{OnlineDetector, StabilizationReport};
use crate::SimError;

/// One execution to run: a seed plus an optional explicit initial
/// configuration (when absent, the configuration is drawn from the seed).
#[derive(Clone, Debug)]
pub struct Scenario<S> {
    /// Seeds the initial configuration (when `init` is `None`), the
    /// protocol's own randomness, and — by convention — the adversary
    /// factory.
    pub seed: u64,
    /// Explicit initial configuration, one state per node.
    pub init: Option<Vec<S>>,
}

impl<S> Scenario<S> {
    /// A scenario drawing its initial configuration from `seed`.
    pub fn seeded(seed: u64) -> Self {
        Scenario { seed, init: None }
    }

    /// A scenario starting from an explicit configuration.
    pub fn with_states(seed: u64, states: Vec<S>) -> Self {
        Scenario {
            seed,
            init: Some(states),
        }
    }

    /// Seed-only scenarios for every seed in `seeds`.
    pub fn seeds(seeds: impl IntoIterator<Item = u64>) -> Vec<Self> {
        seeds.into_iter().map(Self::seeded).collect()
    }
}

impl<S> From<u64> for Scenario<S> {
    fn from(seed: u64) -> Self {
        Scenario::seeded(seed)
    }
}

/// The verdict of one scenario in a [`BatchReport`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// The scenario's seed, for replay.
    pub seed: u64,
    /// Stabilisation verdict of the execution.
    pub result: Result<StabilizationReport, SimError>,
    /// States the adversary materialised through the message plane's pool
    /// over this execution (see [`Simulation::fabricated_states`]) — the
    /// fabrication-cost ledger Byzantine sweeps are benchmarked on.
    pub fabricated_states: u64,
    /// How the execution finished: full horizon, opted-out (RNG-driven), or
    /// an early cycle exit — the early-decision ledger next to
    /// `fabricated_states`. Always [`ExitReason::FullHorizon`] on the
    /// non-early entry points ([`Batch::run`], [`Batch::run_prepared`]).
    pub exit_reason: ExitReason,
}

/// Aggregate statistics over a [`BatchReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BatchSummary {
    /// Scenarios run.
    pub runs: usize,
    /// Scenarios that stabilised within their horizon.
    pub stabilized: usize,
    /// Worst observed stabilisation round among stabilised scenarios.
    pub worst: u64,
    /// Mean observed stabilisation round among stabilised scenarios.
    pub mean: f64,
}

/// Results of a batched sweep, in scenario order (independent of thread
/// scheduling).
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-scenario verdicts, indexed like the input scenarios.
    pub outcomes: Vec<ScenarioOutcome>,
}

impl BatchReport {
    /// Aggregates the outcomes.
    pub fn summary(&self) -> BatchSummary {
        let mut stabilized = 0usize;
        let mut worst = 0u64;
        let mut sum = 0u64;
        for outcome in &self.outcomes {
            if let Ok(report) = &outcome.result {
                stabilized += 1;
                worst = worst.max(report.stabilization_round);
                sum += report.stabilization_round;
            }
        }
        BatchSummary {
            runs: self.outcomes.len(),
            stabilized,
            worst,
            mean: if stabilized == 0 {
                0.0
            } else {
                sum as f64 / stabilized as f64
            },
        }
    }

    /// Whether every scenario stabilised.
    pub fn all_stabilized(&self) -> bool {
        self.outcomes.iter().all(|o| o.result.is_ok())
    }

    /// The first failing scenario, if any — the one to replay first.
    pub fn first_failure(&self) -> Option<&ScenarioOutcome> {
        self.outcomes.iter().find(|o| o.result.is_err())
    }

    /// Total adversary-fabricated states across all scenarios — the sweep's
    /// message-plane cost ledger.
    pub fn fabricated_states(&self) -> u64 {
        self.outcomes.iter().map(|o| o.fabricated_states).sum()
    }

    /// Scenarios that took the early cycle exit.
    pub fn early_exits(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.exit_reason, ExitReason::Cycle { .. }))
            .count()
    }

    /// Total rounds of a `horizon`-round sweep that were decided
    /// algebraically instead of executed — the early-decision ledger.
    pub fn rounds_saved(&self, horizon: u64) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.exit_reason.rounds_saved(horizon))
            .sum()
    }
}

/// A batched sweep runner for one counter protocol.
///
/// Created with a protocol and a per-scenario horizon; [`Batch::run`] then
/// executes any number of scenarios through the zero-copy engine. With the
/// `parallel` feature (default), scenarios are fanned out across up to
/// [`Batch::threads`] OS threads — results are bitwise identical regardless
/// of the thread count, because every scenario owns its seeds.
#[derive(Clone, Copy, Debug)]
pub struct Batch<'a, P> {
    protocol: &'a P,
    horizon: u64,
    threads: usize,
    obs: Option<&'a SimObs>,
}

impl<'a, P: Counter> Batch<'a, P> {
    /// A sweep runner giving each scenario `horizon` rounds.
    pub fn new(protocol: &'a P, horizon: u64) -> Self {
        Batch {
            protocol,
            horizon,
            threads: sc_exec::threads(),
            obs: None,
        }
    }

    /// Caps the worker thread count (effective only with the `parallel`
    /// feature; clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Meters every scenario of this sweep into `obs` (scenario count,
    /// exit-reason tallies, stabilisation rounds). Metering is
    /// observe-only: verdicts are bitwise unchanged.
    pub fn observed(mut self, obs: &'a SimObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Runs one scenario to completion, detecting stabilisation on the
    /// fly; `step` selects the engine path (plain or prepared).
    fn run_one<A, F, S>(
        &self,
        scenario: &Scenario<P::State>,
        factory: &F,
        step: S,
    ) -> ScenarioOutcome
    where
        A: Adversary<P::State>,
        F: Fn(&Scenario<P::State>) -> A,
        S: Fn(&mut Simulation<'a, P, A>),
    {
        let confirm = required_confirmation(self.protocol.modulus());
        if self.horizon < confirm {
            return ScenarioOutcome {
                seed: scenario.seed,
                result: Err(SimError::HorizonTooShort {
                    horizon: self.horizon,
                    required: confirm,
                }),
                fabricated_states: 0,
                exit_reason: ExitReason::FullHorizon,
            };
        }
        let adversary = factory(scenario);
        let mut sim = match &scenario.init {
            Some(states) => {
                Simulation::with_states(self.protocol, adversary, states.clone(), scenario.seed)
            }
            None => Simulation::new(self.protocol, adversary, scenario.seed),
        };
        let mut detector = OnlineDetector::new(self.protocol.modulus());
        detector.observe(sim.agreed_output_now());
        for _ in 0..self.horizon {
            step(&mut sim);
            detector.observe(sim.agreed_output_now());
        }
        ScenarioOutcome {
            seed: scenario.seed,
            result: detector.finish(confirm),
            fabricated_states: sim.fabricated_states(),
            exit_reason: ExitReason::FullHorizon,
        }
    }

    /// Runs one scenario in the early-decision mode: identical verdict, but
    /// the execution stops as soon as the configuration provably cycles.
    fn run_one_early<A, F, S>(
        &self,
        scenario: &Scenario<P::State>,
        factory: &F,
        step: S,
    ) -> ScenarioOutcome
    where
        P: Fingerprint,
        A: Adversary<P::State>,
        F: Fn(&Scenario<P::State>) -> A,
        S: Fn(&mut Simulation<'a, P, A>),
    {
        let adversary = factory(scenario);
        let mut sim = match &scenario.init {
            Some(states) => {
                Simulation::with_states(self.protocol, adversary, states.clone(), scenario.seed)
            }
            None => Simulation::new(self.protocol, adversary, scenario.seed),
        };
        let (result, exit_reason) = sim.run_early_with(self.horizon, step);
        ScenarioOutcome {
            seed: scenario.seed,
            result,
            fabricated_states: sim.fabricated_states(),
            exit_reason,
        }
    }

    /// Schedules `runner` over every scenario on the persistent
    /// [`sc_exec`] pool (capped at [`Batch::threads`] executing threads)
    /// and collects outcomes in input order.
    ///
    /// Workers claim scenarios dynamically, so uneven per-scenario cost —
    /// early-decision exits make adjacent seeds wildly different — load-
    /// balances automatically; results land in per-index slots, so the
    /// report is bitwise identical for every thread count.
    #[cfg(feature = "parallel")]
    fn schedule<R>(&self, scenarios: &[Scenario<P::State>], runner: R) -> BatchReport
    where
        R: Fn(&Scenario<P::State>) -> ScenarioOutcome + Sync,
        P::State: Sync,
    {
        let obs = self.obs;
        BatchReport {
            outcomes: sc_exec::map(scenarios.len(), self.threads, |i| {
                let outcome = runner(&scenarios[i]);
                if let Some(obs) = obs {
                    obs.scenario_done(&outcome);
                }
                outcome
            }),
        }
    }

    /// Schedules `runner` over every scenario in input order
    /// (single-threaded build: the `parallel` feature is disabled).
    #[cfg(not(feature = "parallel"))]
    fn schedule<R>(&self, scenarios: &[Scenario<P::State>], runner: R) -> BatchReport
    where
        R: Fn(&Scenario<P::State>) -> ScenarioOutcome,
    {
        BatchReport {
            outcomes: scenarios
                .iter()
                .map(|s| {
                    let outcome = runner(s);
                    if let Some(obs) = self.obs {
                        obs.scenario_done(&outcome);
                    }
                    outcome
                })
                .collect(),
        }
    }

    /// Runs every scenario, producing per-scenario verdicts in input order.
    ///
    /// The `factory` builds a fresh adversary per scenario (adversaries are
    /// stateful). With the `parallel` feature, scenarios are distributed
    /// over worker threads; adversaries are created inside their worker, so
    /// only the factory itself must be `Sync`.
    #[cfg(feature = "parallel")]
    pub fn run<A, F>(&self, scenarios: &[Scenario<P::State>], factory: F) -> BatchReport
    where
        A: Adversary<P::State>,
        F: Fn(&Scenario<P::State>) -> A + Sync,
        P: Sync,
        P::State: Send + Sync,
    {
        self.schedule(scenarios, |s| self.run_one(s, &factory, Simulation::step))
    }

    /// Runs every scenario, producing per-scenario verdicts in input order
    /// (single-threaded build: the `parallel` feature is disabled).
    #[cfg(not(feature = "parallel"))]
    pub fn run<A, F>(&self, scenarios: &[Scenario<P::State>], factory: F) -> BatchReport
    where
        A: Adversary<P::State>,
        F: Fn(&Scenario<P::State>) -> A,
    {
        self.schedule(scenarios, |s| self.run_one(s, &factory, Simulation::step))
    }

    /// [`run`](Batch::run) on the protocol's [`PreparedProtocol`] fast path:
    /// per round, the receiver-independent vote tallies are hoisted out and
    /// each receiver patches only the Byzantine overrides. Verdicts are
    /// bitwise identical to [`run`](Batch::run).
    #[cfg(feature = "parallel")]
    pub fn run_prepared<A, F>(&self, scenarios: &[Scenario<P::State>], factory: F) -> BatchReport
    where
        P: PreparedProtocol,
        A: Adversary<P::State>,
        F: Fn(&Scenario<P::State>) -> A + Sync,
        P: Sync,
        P::State: Send + Sync,
    {
        self.schedule(scenarios, |s| {
            self.run_one(s, &factory, Simulation::step_prepared)
        })
    }

    /// [`run_prepared`](Batch::run_prepared), single-threaded build.
    #[cfg(not(feature = "parallel"))]
    pub fn run_prepared<A, F>(&self, scenarios: &[Scenario<P::State>], factory: F) -> BatchReport
    where
        P: PreparedProtocol,
        A: Adversary<P::State>,
        F: Fn(&Scenario<P::State>) -> A,
    {
        self.schedule(scenarios, |s| {
            self.run_one(s, &factory, Simulation::step_prepared)
        })
    }

    /// [`run`](Batch::run) in the **early-decision mode**: verdicts are
    /// bitwise identical, but scenarios whose joint (states, adversary)
    /// configuration provably cycles stop executing at the recurrence and
    /// replay the rest of the horizon algebraically (see
    /// [`Simulation::run_until_stable_early`]). Each outcome's
    /// [`exit_reason`](ScenarioOutcome::exit_reason) records whether and
    /// where the exit fired; RNG-driven adversaries run the full horizon
    /// and report [`ExitReason::Opaque`].
    #[cfg(feature = "parallel")]
    pub fn run_early<A, F>(&self, scenarios: &[Scenario<P::State>], factory: F) -> BatchReport
    where
        P: Fingerprint,
        A: Adversary<P::State>,
        F: Fn(&Scenario<P::State>) -> A + Sync,
        P: Sync,
        P::State: Send + Sync,
    {
        self.schedule(scenarios, |s| {
            self.run_one_early(s, &factory, Simulation::step)
        })
    }

    /// [`run_early`](Batch::run_early), single-threaded build.
    #[cfg(not(feature = "parallel"))]
    pub fn run_early<A, F>(&self, scenarios: &[Scenario<P::State>], factory: F) -> BatchReport
    where
        P: Fingerprint,
        A: Adversary<P::State>,
        F: Fn(&Scenario<P::State>) -> A,
    {
        self.schedule(scenarios, |s| {
            self.run_one_early(s, &factory, Simulation::step)
        })
    }

    /// [`run_early`](Batch::run_early) on the [`PreparedProtocol`] fast
    /// path.
    #[cfg(feature = "parallel")]
    pub fn run_prepared_early<A, F>(
        &self,
        scenarios: &[Scenario<P::State>],
        factory: F,
    ) -> BatchReport
    where
        P: Fingerprint + PreparedProtocol,
        A: Adversary<P::State>,
        F: Fn(&Scenario<P::State>) -> A + Sync,
        P: Sync,
        P::State: Send + Sync,
    {
        self.schedule(scenarios, |s| {
            self.run_one_early(s, &factory, Simulation::step_prepared)
        })
    }

    /// [`run_prepared_early`](Batch::run_prepared_early), single-threaded
    /// build.
    #[cfg(not(feature = "parallel"))]
    pub fn run_prepared_early<A, F>(
        &self,
        scenarios: &[Scenario<P::State>],
        factory: F,
    ) -> BatchReport
    where
        P: Fingerprint + PreparedProtocol,
        A: Adversary<P::State>,
        F: Fn(&Scenario<P::State>) -> A,
    {
        self.schedule(scenarios, |s| {
            self.run_one_early(s, &factory, Simulation::step_prepared)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversaries;

    use crate::testing::FollowMax;

    #[test]
    fn batch_matches_looped_single_runs() {
        let p = FollowMax { n: 4, c: 4 };
        let scenarios = Scenario::seeds(0..12);
        let report = Batch::new(&p, 40).run(&scenarios, |_| adversaries::none());
        assert_eq!(report.outcomes.len(), 12);
        for scenario in &scenarios {
            let mut sim = Simulation::new(&p, adversaries::none(), scenario.seed);
            let expect = sim.run_until_stable(40);
            let got = &report.outcomes[scenario.seed as usize].result;
            assert_eq!(*got, expect, "seed {}", scenario.seed);
        }
    }

    #[test]
    fn batch_results_are_thread_count_invariant() {
        let p = FollowMax { n: 5, c: 8 };
        let scenarios = Scenario::seeds(0..9);
        let factory = |s: &Scenario<u64>| adversaries::random(&p, [2], s.seed);
        let one = Batch::new(&p, 64).threads(1).run(&scenarios, factory);
        // Strided assignment: 4 workers over 9 scenarios (ragged), and
        // more workers than scenarios — outcomes must come back complete
        // and in input order either way.
        let many = Batch::new(&p, 64).threads(4).run(&scenarios, factory);
        let over = Batch::new(&p, 64).threads(16).run(&scenarios, factory);
        assert_eq!(one.outcomes, many.outcomes);
        assert_eq!(one.outcomes, over.outcomes);
        let seeds: Vec<u64> = one.outcomes.iter().map(|o| o.seed).collect();
        assert_eq!(seeds, (0..9).collect::<Vec<u64>>(), "input order kept");
    }

    #[test]
    fn explicit_configurations_are_honoured() {
        let p = FollowMax { n: 3, c: 4 };
        // All-equal initial states: stabilises at round 0 (counting from
        // the very first transition).
        let scenarios = vec![Scenario::with_states(7, vec![2u64, 2, 2])];
        let report = Batch::new(&p, 40).run(&scenarios, |_| adversaries::none());
        let stab = report.outcomes[0].result.as_ref().unwrap();
        assert_eq!(stab.stabilization_round, 0);
    }

    #[test]
    fn summary_aggregates_failures_and_successes() {
        let p = FollowMax { n: 4, c: 1 << 20 };
        // Random equivocation breaks the 0-resilient counter in (almost)
        // every scenario; modulus 2^20 needs 128 confirmations.
        let scenarios = Scenario::seeds(0..4);
        let report = Batch::new(&p, 200).run(&scenarios, |s| adversaries::random(&p, [0], s.seed));
        let summary = report.summary();
        assert_eq!(summary.runs, 4);
        assert!(
            summary.stabilized < 4,
            "equivocation should break FollowMax"
        );
        assert_eq!(report.all_stabilized(), summary.stabilized == 4);
        if summary.stabilized < 4 {
            assert!(report.first_failure().is_some());
        }
    }

    #[test]
    fn fabrication_ledger_distinguishes_echo_from_fresh_attacks() {
        let p = FollowMax { n: 5, c: 8 };
        let scenarios = Scenario::seeds(0..4);
        let echo = Batch::new(&p, 64).run(&scenarios, |s: &Scenario<u64>| {
            adversaries::two_faced(&p, [2], s.seed)
        });
        assert_eq!(
            echo.fabricated_states(),
            0,
            "two-faced equivocation echoes honest donors, fabricating nothing"
        );
        let fresh = Batch::new(&p, 64).run(&scenarios, |s: &Scenario<u64>| {
            adversaries::random(&p, [2], s.seed)
        });
        // One fresh state per (faulty sender, correct receiver, round):
        // 1 × 4 × 64 per scenario, 4 scenarios.
        assert_eq!(fresh.fabricated_states(), 4 * 4 * 64);
    }

    #[test]
    fn short_horizon_fails_every_scenario_up_front() {
        let p = FollowMax { n: 3, c: 4 };
        let scenarios = Scenario::seeds(0..3);
        let report = Batch::new(&p, 4).run(&scenarios, |_| adversaries::none());
        for outcome in &report.outcomes {
            assert!(matches!(
                outcome.result,
                Err(SimError::HorizonTooShort {
                    horizon: 4,
                    required: 8
                })
            ));
        }
    }
}
