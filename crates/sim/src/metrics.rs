//! Communication-cost accounting for the broadcast model.

use sc_protocol::Counter;

/// Per-round communication cost of a counter in the broadcast model.
///
/// In §2 every node broadcasts its whole state each round, so the network
/// moves `n(n−1)` messages of `S(A)` bits per round — the `Θ(n²·S)` total
/// the paper quotes at the start of §5 as motivation for the pulling model.
///
/// # Example
///
/// ```no_run
/// # fn demo<C: sc_protocol::Counter>(counter: &C) {
/// let m = sc_sim::broadcast_metrics(counter);
/// println!("{} messages/round, {} bits/round", m.messages_per_round, m.bits_per_round);
/// # }
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BroadcastMetrics {
    /// Network size.
    pub n: usize,
    /// Bits per state, `S(A)`.
    pub state_bits: u32,
    /// Messages crossing links per round: `n(n−1)`.
    pub messages_per_round: u64,
    /// Bits crossing links per round.
    pub bits_per_round: u64,
}

impl BroadcastMetrics {
    /// Total bits communicated over `rounds` rounds.
    pub fn total_bits(&self, rounds: u64) -> u128 {
        u128::from(self.bits_per_round) * u128::from(rounds)
    }
}

/// Computes the broadcast-model cost profile of `counter`.
pub fn broadcast_metrics<C: Counter>(counter: &C) -> BroadcastMetrics {
    let n = counter.n();
    let state_bits = counter.state_bits();
    let messages_per_round = (n as u64) * (n as u64 - 1);
    BroadcastMetrics {
        n,
        state_bits,
        messages_per_round,
        bits_per_round: messages_per_round * u64::from(state_bits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;
    use sc_protocol::{
        BitReader, BitVec, CodecError, MessageView, NodeId, StepContext, SyncProtocol,
    };

    struct Fixed {
        n: usize,
        bits: u32,
    }

    impl SyncProtocol for Fixed {
        type State = u64;
        fn n(&self) -> usize {
            self.n
        }
        fn step(&self, _: NodeId, _: &MessageView<'_, u64>, _: &mut StepContext<'_>) -> u64 {
            0
        }
        fn output(&self, _: NodeId, s: &u64) -> u64 {
            *s
        }
        fn random_state(&self, _: NodeId, _: &mut dyn RngCore) -> u64 {
            0
        }
    }

    impl Counter for Fixed {
        fn modulus(&self) -> u64 {
            2
        }
        fn resilience(&self) -> usize {
            0
        }
        fn state_bits(&self) -> u32 {
            self.bits
        }
        fn stabilization_bound(&self) -> u64 {
            0
        }
        fn encode_state(&self, _: NodeId, _: &u64, _: &mut BitVec) {}
        fn decode_state(&self, _: NodeId, _: &mut BitReader<'_>) -> Result<u64, CodecError> {
            Ok(0)
        }
    }

    #[test]
    fn quadratic_message_count() {
        let m = broadcast_metrics(&Fixed { n: 10, bits: 12 });
        assert_eq!(m.messages_per_round, 90);
        assert_eq!(m.bits_per_round, 90 * 12);
        assert_eq!(m.total_bits(100), 108_000);
    }

    #[test]
    fn single_node_network_moves_nothing() {
        let m = broadcast_metrics(&Fixed { n: 1, bits: 8 });
        assert_eq!(m.messages_per_round, 0);
        assert_eq!(m.bits_per_round, 0);
    }
}
