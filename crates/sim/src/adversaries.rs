//! A library of generic Byzantine fault strategies.
//!
//! Self-stabilisation is a worst-case property, so no strategy library can
//! *prove* an algorithm correct — that is what the proven bounds and the
//! [`sc_verifier`-style](https://arxiv.org/abs/1304.5719) exhaustive checking
//! of small instances are for. These strategies instead provide strong,
//! qualitatively different stress patterns used across the test suite and the
//! experiment harness:
//!
//! * [`none`] — fault-free executions (sanity baseline),
//! * [`crash`] — faulty nodes freeze an arbitrary state forever,
//! * [`random`] — fresh arbitrary state per (sender, receiver, round),
//! * [`two_faced`] — classic equivocation: plausible-but-different honest
//!   states presented to the two halves of the network, attacking majority
//!   votes,
//! * [`replay`] — lagged copies of honest states, attacking counters
//!   specifically (stale counter values are plausible values),
//! * [`fixed`] — a caller-chosen constant state (building block for tests).
//!
//! All strategies speak the borrow-based message plane: they return
//! [`MessageSource`] leases, so echo/equivocation attacks deliver without a
//! single clone and fabricated states are materialised once per round (or
//! once per execution, for frozen values) into the engine's [`StatePool`].
//! The module also exports the strategy building blocks shared with the
//! advanced strategies ([`crate::sleeper`], [`crate::greedy`]) and
//! `sc-core::adversaries` — [`normalize_faults`], [`donor_id`] and the
//! parity-equivocation [`FacePair`] — so each pattern has exactly one
//! implementation in the workspace.
//!
//! Counter-*structure-aware* attacks (king impersonation, pointer splitting)
//! live in `sc-core::adversaries`, next to the state types they inspect.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_protocol::{MessageSource, NodeId, SyncProtocol};

use crate::adversary::{Adversary, AdversarySnapshot, RoundContext, SnapshotSupport};
use crate::workspace::StatePool;

/// Sorts, deduplicates and wraps raw faulty indices — the canonical
/// constructor-side normalisation every strategy in the workspace shares.
pub fn normalize_faults(faulty: impl IntoIterator<Item = usize>) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = faulty.into_iter().map(NodeId::new).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// The `salt`-th correct node (rotating through the honest set) — the shared
/// donor-selection rule of echo, replay and structure-aware mirroring
/// strategies.
///
/// # Panics
///
/// Panics if no node is correct.
pub fn donor_id<S>(ctx: &RoundContext<'_, S>, salt: usize) -> NodeId {
    let count = ctx.honest_count().max(1);
    ctx.honest_ids()
        .nth(salt % count)
        .expect("at least one correct node")
}

/// A pair of per-round message leases assigned to receivers by index parity
/// — the shared core of every equivocation strategy ([`two_faced`],
/// [`crate::greedy`], `sc-core`'s `bad_king`).
#[derive(Clone, Copy, Debug)]
pub struct FacePair {
    /// Lease shown to even-indexed receivers.
    pub even: MessageSource,
    /// Lease shown to odd-indexed receivers.
    pub odd: MessageSource,
}

impl FacePair {
    /// The lease receiver `to` gets.
    #[inline]
    pub fn for_receiver(&self, to: NodeId) -> MessageSource {
        if to.index().is_multiple_of(2) {
            self.even
        } else {
            self.odd
        }
    }
}

/// The empty adversary: no faulty nodes at all.
///
/// # Example
///
/// ```
/// use sc_sim::{adversaries, Adversary};
///
/// let adv = adversaries::none();
/// assert!(<_ as Adversary<u64>>::faulty(&adv).is_empty());
/// ```
pub fn none() -> NoFaults {
    NoFaults { _priv: () }
}

/// Adversary with no faulty nodes. See [`none`].
#[derive(Clone, Debug)]
pub struct NoFaults {
    _priv: (),
}

impl<S> Adversary<S> for NoFaults {
    fn faulty(&self) -> &[NodeId] {
        &[]
    }

    fn message(
        &mut self,
        from: NodeId,
        _to: NodeId,
        _ctx: &RoundContext<'_, S>,
        _pool: &mut StatePool<S>,
    ) -> MessageSource {
        unreachable!("no faulty nodes, but a message was requested from {from}")
    }

    fn snapshot(&self, _round: u64, _out: &mut AdversarySnapshot<'_, S>) -> SnapshotSupport {
        // No faults, no state: the configuration is the correct nodes alone.
        SnapshotSupport::Deterministic
    }
}

/// Crash-style faults: each faulty node freezes an arbitrary state (sampled
/// once from the protocol's state space) and broadcasts it forever.
///
/// This is the *weakest* Byzantine behaviour — it cannot equivocate — and is
/// mainly useful to check that algorithms do not rely on faulty nodes
/// participating. On the borrowed message plane the frozen states are
/// pinned into the pool at the first round and leased from then on: the
/// whole execution materialises each of them exactly once.
pub fn crash<P: SyncProtocol>(
    protocol: &P,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
) -> Crash<P::State> {
    let ids = normalize_faults(faulty);
    let mut rng = SmallRng::seed_from_u64(seed);
    let frozen = ids
        .iter()
        .map(|&id| protocol.random_state(id, &mut rng))
        .collect();
    Crash {
        faulty: ids,
        frozen,
        leases: Vec::new(),
    }
}

/// Adversary produced by [`crash`].
///
/// Deliberately not `Clone`: after the first round the frozen states have
/// been drained into one execution's pool, and a copy would hand out leases
/// against a pool that never issued them. Construct a fresh instance per
/// execution.
#[derive(Debug)]
pub struct Crash<S> {
    faulty: Vec<NodeId>,
    /// Frozen states, moved into the pool at the first `begin_round`.
    frozen: Vec<S>,
    /// Pinned leases, parallel to `faulty`, once issued.
    leases: Vec<MessageSource>,
}

impl<S: Clone + std::fmt::Debug> Adversary<S> for Crash<S> {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn begin_round(&mut self, _ctx: &RoundContext<'_, S>, pool: &mut StatePool<S>) {
        if !self.frozen.is_empty() {
            self.leases = self.frozen.drain(..).map(|s| pool.pin(s)).collect();
        }
    }

    fn message(
        &mut self,
        from: NodeId,
        _to: NodeId,
        _ctx: &RoundContext<'_, S>,
        _pool: &mut StatePool<S>,
    ) -> MessageSource {
        let idx = self
            .faulty
            .binary_search(&from)
            .expect("message requested from a non-faulty node");
        self.leases[idx]
    }

    fn snapshot(&self, _round: u64, out: &mut AdversarySnapshot<'_, S>) -> SnapshotSupport {
        // Before the first round the frozen states are still queued; after,
        // they live in the execution's immutable pinned pool and the leases
        // are their faithful stand-ins.
        out.word(self.frozen.len() as u64);
        for (id, state) in self.faulty.iter().zip(&self.frozen) {
            out.state(*id, state);
        }
        for lease in &self.leases {
            out.source(*lease);
        }
        SnapshotSupport::Deterministic
    }
}

/// Fully random Byzantine noise: a fresh arbitrary state for every
/// (sender, receiver, round) triple.
///
/// Because states are drawn from the protocol's own state space they are
/// always *well-formed*, unlike bit-level garbage; this exercises every
/// decoding path without tripping validation. Fresh-per-pair fabrication is
/// the one behaviour the borrowed plane cannot amortise — this strategy is
/// the upper bound of the fabrication ledger.
pub fn random<P: SyncProtocol>(
    protocol: &P,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
) -> FreshRandom<'_, P::State> {
    let sample: Sampler<'_, P::State> = Box::new(move |node, rng| protocol.random_state(node, rng));
    FreshRandom {
        faulty: normalize_faults(faulty),
        rng: SmallRng::seed_from_u64(seed),
        sample,
    }
}

type Sampler<'a, S> = Box<dyn Fn(NodeId, &mut SmallRng) -> S + 'a>;

/// Like [`random`], but drawing fabricated states from an arbitrary sampler
/// instead of a [`SyncProtocol`] — for protocols of other communication
/// models (e.g. the pulling model).
pub fn random_from<'a, S>(
    sampler: impl Fn(NodeId, &mut SmallRng) -> S + 'a,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
) -> FreshRandom<'a, S> {
    FreshRandom {
        faulty: normalize_faults(faulty),
        rng: SmallRng::seed_from_u64(seed),
        sample: Box::new(sampler),
    }
}

/// Like [`two_faced`], but drawing fallback states from an arbitrary sampler
/// instead of a [`SyncProtocol`].
pub fn two_faced_from<'a, S>(
    sampler: impl Fn(NodeId, &mut SmallRng) -> S + 'a,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
) -> TwoFaced<'a, S> {
    TwoFaced {
        faulty: normalize_faults(faulty),
        rng: SmallRng::seed_from_u64(seed),
        sample: Box::new(sampler),
        faces: None,
    }
}

/// Adversary produced by [`random`].
pub struct FreshRandom<'a, S> {
    faulty: Vec<NodeId>,
    rng: SmallRng,
    sample: Sampler<'a, S>,
}

impl<S> std::fmt::Debug for FreshRandom<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FreshRandom")
            .field("faulty", &self.faulty)
            .finish_non_exhaustive()
    }
}

impl<S: Clone + std::fmt::Debug> Adversary<S> for FreshRandom<'_, S> {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn message(
        &mut self,
        from: NodeId,
        _to: NodeId,
        _ctx: &RoundContext<'_, S>,
        pool: &mut StatePool<S>,
    ) -> MessageSource {
        pool.fabricate((self.sample)(from, &mut self.rng))
    }
}

/// Two-faced equivocation: each round the adversary picks two *honest donor
/// states* and presents one to even-indexed receivers and the other to
/// odd-indexed receivers.
///
/// Donor states are plausible in-protocol states, which is the strongest way
/// to attack majority votes: the faulty nodes appear to be correct members of
/// two different "camps", keeping the camps from converging. On the borrowed
/// plane both faces are [`MessageSource::Broadcast`] echoes of the donors —
/// the attack delivers `f × (n − f)` messages per round without cloning a
/// single state.
pub fn two_faced<P: SyncProtocol>(
    protocol: &P,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
) -> TwoFaced<'_, P::State> {
    let sample: Sampler<'_, P::State> = Box::new(move |node, rng| protocol.random_state(node, rng));
    TwoFaced {
        faulty: normalize_faults(faulty),
        rng: SmallRng::seed_from_u64(seed),
        sample,
        faces: None,
    }
}

/// Adversary produced by [`two_faced`].
pub struct TwoFaced<'a, S> {
    faulty: Vec<NodeId>,
    rng: SmallRng,
    sample: Sampler<'a, S>,
    faces: Option<FacePair>,
}

impl<S> std::fmt::Debug for TwoFaced<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoFaced")
            .field("faulty", &self.faulty)
            .finish_non_exhaustive()
    }
}

impl<S: Clone + std::fmt::Debug> Adversary<S> for TwoFaced<'_, S> {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn begin_round(&mut self, ctx: &RoundContext<'_, S>, pool: &mut StatePool<S>) {
        let count = ctx.honest_count();
        let faces = if count == 0 {
            // Degenerate all-faulty network: fall back to sampled states.
            FacePair {
                even: pool.fabricate((self.sample)(NodeId::new(0), &mut self.rng)),
                odd: pool.fabricate((self.sample)(NodeId::new(0), &mut self.rng)),
            }
        } else {
            let ia = self.rng.random_range(0..count);
            let ib = self.rng.random_range(0..count);
            FacePair {
                even: MessageSource::Broadcast(donor_id(ctx, ia)),
                odd: MessageSource::Broadcast(donor_id(ctx, ib)),
            }
        };
        self.faces = Some(faces);
    }

    fn message(
        &mut self,
        _from: NodeId,
        to: NodeId,
        _ctx: &RoundContext<'_, S>,
        _pool: &mut StatePool<S>,
    ) -> MessageSource {
        self.faces
            .as_ref()
            .expect("begin_round not called")
            .for_receiver(to)
    }
}

/// Replay attack: faulty nodes echo honest states from `delay` rounds ago.
///
/// Stale counter states are plausible counter states, so this specifically
/// attacks the *increment* part of the counting specification.
///
/// The donor mapping (`to ↦ honest[to mod |honest|]`) is static for the
/// execution, so only the ~`|honest|` states that will actually be replayed
/// are snapshotted each round — one clone per donor — and when a snapshot
/// falls `delay − 1` rounds behind it is **moved** into the round pool and
/// leased, not cloned again. While the window is still warming up the
/// serving snapshot is the current broadcast (pure echo, no clone at all)
/// or the oldest ring entry (cloned at most once per donor per round).
pub fn replay<S: Clone>(faulty: impl IntoIterator<Item = usize>, delay: usize) -> Replay<S> {
    Replay {
        faulty: normalize_faults(faulty),
        delay: delay.max(1),
        ring: VecDeque::new(),
        spare: Vec::new(),
        honest: Vec::new(),
        donors: Vec::new(),
        slot_of: Vec::new(),
        leases: Vec::new(),
        serve: Serve::Current,
    }
}

/// Where this round's replayed states come from.
#[derive(Clone, Copy, Debug)]
enum Serve {
    /// The current broadcast (warm-up round 0, or `delay == 1`): echo.
    Current,
    /// The oldest ring snapshot, still warming up: clone per donor, once.
    Front,
    /// The retired snapshot, moved into the pool by `begin_round`.
    Retired,
}

/// Adversary produced by [`replay`].
#[derive(Clone, Debug)]
pub struct Replay<S> {
    faulty: Vec<NodeId>,
    delay: usize,
    /// The last `delay − 1` rounds' donor snapshots (each parallel to
    /// `donors`), oldest first.
    ring: VecDeque<Vec<S>>,
    /// Recycled snapshot buffers.
    spare: Vec<Vec<S>>,
    /// Correct node ids — static per execution, cached at the first round.
    honest: Vec<NodeId>,
    /// The distinct donor nodes, in slot order.
    donors: Vec<NodeId>,
    /// Node index → donor slot (`usize::MAX` for non-donors).
    slot_of: Vec<usize>,
    /// Per-donor-slot leases for the current round.
    leases: Vec<Option<MessageSource>>,
    serve: Serve,
}

impl<S: Clone + std::fmt::Debug> Adversary<S> for Replay<S> {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn begin_round(&mut self, ctx: &RoundContext<'_, S>, pool: &mut StatePool<S>) {
        if self.honest.is_empty() {
            // First round: the fault set is static, so the donor mapping is
            // computed once.
            self.honest.extend(ctx.honest_ids());
            self.slot_of = vec![usize::MAX; ctx.honest.len()];
            for &to in &self.honest {
                let donor = self.honest[to.index() % self.honest.len()];
                if self.slot_of[donor.index()] == usize::MAX {
                    self.slot_of[donor.index()] = self.donors.len();
                    self.donors.push(donor);
                }
            }
        }
        self.leases.clear();
        self.leases.resize(self.donors.len(), None);

        self.serve = if self.delay == 1 || self.ring.is_empty() {
            Serve::Current
        } else if self.ring.len() < self.delay - 1 {
            Serve::Front
        } else {
            // Steady state: the oldest snapshot is exactly `delay − 1`
            // rounds behind — move its states into the pool, no clones.
            let mut retired = self.ring.pop_front().expect("ring is non-empty");
            for (slot, state) in retired.drain(..).enumerate() {
                self.leases[slot] = Some(pool.fabricate(state));
            }
            self.spare.push(retired);
            Serve::Retired
        };

        if self.delay > 1 {
            // Snapshot this round's donor states for use `delay − 1` rounds
            // from now: one clone per donor, nothing else.
            let mut snapshot = self.spare.pop().unwrap_or_default();
            snapshot.clear();
            snapshot.extend(self.donors.iter().map(|d| ctx.honest[d.index()].clone()));
            self.ring.push_back(snapshot);
        }
    }

    fn message(
        &mut self,
        _from: NodeId,
        to: NodeId,
        _ctx: &RoundContext<'_, S>,
        pool: &mut StatePool<S>,
    ) -> MessageSource {
        // Echo a (possibly stale) honest state back at the receiver; pick the
        // donor deterministically so different receivers see different lags.
        assert!(
            !self.honest.is_empty(),
            "begin_round not called (or no correct nodes)"
        );
        let donor = self.honest[to.index() % self.honest.len()];
        match self.serve {
            Serve::Current => MessageSource::Broadcast(donor),
            Serve::Retired => {
                self.leases[self.slot_of[donor.index()]].expect("retired snapshot leased")
            }
            Serve::Front => {
                let slot = self.slot_of[donor.index()];
                let front = self.ring.front().expect("warm-up ring is non-empty");
                *self.leases[slot].get_or_insert_with(|| pool.fabricate(front[slot].clone()))
            }
        }
    }

    fn snapshot(&self, _round: u64, out: &mut AdversarySnapshot<'_, S>) -> SnapshotSupport {
        // The donor mapping is static; the strategy's evolving state is the
        // ring of donor snapshots (the serve mode and the per-round leases
        // are recomputed from it every `begin_round`).
        out.word(self.delay as u64);
        out.word(self.ring.len() as u64);
        for snapshot in &self.ring {
            for (donor, state) in self.donors.iter().zip(snapshot) {
                out.state(*donor, state);
            }
        }
        SnapshotSupport::Deterministic
    }
}

/// Sends the caller-supplied state to every receiver in every round.
///
/// # Example
///
/// ```
/// use sc_sim::adversaries;
///
/// let adv = adversaries::fixed([1usize, 3], 99u64);
/// ```
pub fn fixed<S: Clone>(faulty: impl IntoIterator<Item = usize>, state: S) -> Fixed<S> {
    Fixed {
        faulty: normalize_faults(faulty),
        state: Some(state),
        lease: None,
    }
}

/// Adversary produced by [`fixed`].
///
/// Deliberately not `Clone` for the same reason as [`Crash`]: once pinned,
/// the lease belongs to one execution's pool.
#[derive(Debug)]
pub struct Fixed<S> {
    faulty: Vec<NodeId>,
    /// The constant state, moved into the pool at the first `begin_round`.
    state: Option<S>,
    lease: Option<MessageSource>,
}

impl<S: Clone + std::fmt::Debug> Adversary<S> for Fixed<S> {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn begin_round(&mut self, _ctx: &RoundContext<'_, S>, pool: &mut StatePool<S>) {
        if let Some(state) = self.state.take() {
            self.lease = Some(pool.pin(state));
        }
    }

    fn message(
        &mut self,
        _from: NodeId,
        _to: NodeId,
        _ctx: &RoundContext<'_, S>,
        _pool: &mut StatePool<S>,
    ) -> MessageSource {
        self.lease.expect("begin_round not called")
    }

    fn snapshot(&self, _round: u64, out: &mut AdversarySnapshot<'_, S>) -> SnapshotSupport {
        // The constant state is either still queued or pinned immutably.
        if let Some(state) = &self.state {
            out.word(1);
            out.state(
                self.faulty.first().copied().unwrap_or(NodeId::new(0)),
                state,
            );
        } else {
            out.word(0);
        }
        if let Some(lease) = self.lease {
            out.source(lease);
        }
        SnapshotSupport::Deterministic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::TestRound;
    use rand::RngCore;
    use sc_protocol::{MessageView, StepContext, SyncProtocol};

    struct Toy;
    impl SyncProtocol for Toy {
        type State = u64;
        fn n(&self) -> usize {
            4
        }
        fn step(&self, _: NodeId, _: &MessageView<'_, u64>, _: &mut StepContext<'_>) -> u64 {
            0
        }
        fn output(&self, _: NodeId, s: &u64) -> u64 {
            *s
        }
        fn random_state(&self, _: NodeId, rng: &mut dyn RngCore) -> u64 {
            rng.next_u64() % 100
        }
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        assert_eq!(
            normalize_faults([3, 1, 3, 0]),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]
        );
    }

    #[test]
    fn face_pair_splits_by_parity() {
        let faces = FacePair {
            even: MessageSource::Pinned(0),
            odd: MessageSource::Pinned(1),
        };
        assert_eq!(faces.for_receiver(NodeId::new(0)), MessageSource::Pinned(0));
        assert_eq!(faces.for_receiver(NodeId::new(2)), MessageSource::Pinned(0));
        assert_eq!(faces.for_receiver(NodeId::new(3)), MessageSource::Pinned(1));
    }

    #[test]
    fn crash_always_sends_the_same_pinned_state() {
        let mut adv = crash(&Toy, [2], 9);
        let round = TestRound::new(vec![0u64; 4], [2]);
        let mut pool = StatePool::new();
        let ctx = round.ctx(0);
        adv.begin_round(&ctx, &mut pool);
        let first = adv.message(NodeId::new(2), NodeId::new(0), &ctx, &mut pool);
        assert!(matches!(first, MessageSource::Pinned(_)));
        let value = *pool.resolve(round.honest(), first);
        for to in [0usize, 1, 3] {
            let src = adv.message(NodeId::new(2), NodeId::new(to), &ctx, &mut pool);
            assert_eq!(src, first);
            assert_eq!(*pool.resolve(round.honest(), src), value);
        }
        // Nothing was fabricated: the frozen state is pinned exactly once.
        assert_eq!(pool.fabricated_total(), 0);
        // Later rounds reuse the same pin.
        pool.begin_round();
        adv.begin_round(&round.ctx(1), &mut pool);
        let again = adv.message(NodeId::new(2), NodeId::new(1), &ctx, &mut pool);
        assert_eq!(again, first);
    }

    #[test]
    fn two_faced_splits_receivers_by_parity_without_fabricating() {
        let mut adv = two_faced(&Toy, [3], 5);
        let round = TestRound::new(vec![10u64, 20, 30, 40], [3]);
        let mut pool = StatePool::new();
        let ctx = round.ctx(0);
        adv.begin_round(&ctx, &mut pool);
        let to_even = adv.message(NodeId::new(3), NodeId::new(0), &ctx, &mut pool);
        let to_even2 = adv.message(NodeId::new(3), NodeId::new(2), &ctx, &mut pool);
        let to_odd = adv.message(NodeId::new(3), NodeId::new(1), &ctx, &mut pool);
        assert_eq!(to_even, to_even2);
        // Faces are broadcast echoes of honest donors: zero fabrications.
        assert!(matches!(to_even, MessageSource::Broadcast(_)));
        assert!(matches!(to_odd, MessageSource::Broadcast(_)));
        assert_eq!(pool.fabricated_total(), 0);
        assert!(round
            .honest()
            .contains(pool.resolve(round.honest(), to_even)));
        assert!(round
            .honest()
            .contains(pool.resolve(round.honest(), to_odd)));
    }

    #[test]
    fn replay_serves_stale_states_fabricated_once_per_donor() {
        let mut adv = replay::<u64>([0], 2);
        let mut pool = StatePool::new();
        let r0 = TestRound::new(vec![1u64, 2, 3, 4], [0]);
        adv.begin_round(&r0.ctx(0), &mut pool);
        // Warm-up: the serving snapshot is the current broadcast — pure echo.
        let src = adv.message(NodeId::new(0), NodeId::new(2), &r0.ctx(0), &mut pool);
        assert!(matches!(src, MessageSource::Broadcast(_)));
        assert_eq!(pool.fabricated_total(), 0);

        let r1 = TestRound::new(vec![5u64, 6, 7, 8], [0]);
        pool.begin_round();
        adv.begin_round(&r1.ctx(1), &mut pool);
        let r2 = TestRound::new(vec![9u64, 10, 11, 12], [0]);
        pool.begin_round();
        adv.begin_round(&r2.ctx(2), &mut pool);
        // Window is 2 rounds: at round 2 the retiring snapshot is r1.
        let ctx = r2.ctx(2);
        let sent = adv.message(NodeId::new(0), NodeId::new(2), &ctx, &mut pool);
        assert!(r1.honest().contains(pool.resolve(r2.honest(), sent)));
        // Re-asking for the same receiver reuses the leased slot.
        let again = adv.message(NodeId::new(0), NodeId::new(2), &ctx, &mut pool);
        assert_eq!(sent, again);
        // Exactly one materialisation per donor per steady round — all of
        // them moves out of the retired snapshot, not clones (3 donors for
        // the 3 correct nodes here: rounds 1 and 2 each lease a snapshot).
        assert_eq!(pool.fabricated_total(), 3 + 3);
    }

    #[test]
    fn fixed_sends_supplied_state() {
        let mut adv = fixed([1], 77u64);
        let round = TestRound::new(vec![0u64; 2], [1]);
        let mut pool = StatePool::new();
        let ctx = round.ctx(0);
        adv.begin_round(&ctx, &mut pool);
        let src = adv.message(NodeId::new(1), NodeId::new(0), &ctx, &mut pool);
        assert_eq!(*pool.resolve(round.honest(), src), 77);
        assert_eq!(pool.fabricated_total(), 0);
    }

    #[test]
    #[should_panic(expected = "no faulty nodes")]
    fn none_never_sends() {
        let mut adv = none();
        let round = TestRound::new(vec![0u64; 2], []);
        let mut pool = StatePool::new();
        let _ = adv.message(NodeId::new(0), NodeId::new(1), &round.ctx(0), &mut pool);
    }
}
