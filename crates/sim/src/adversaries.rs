//! A library of generic Byzantine fault strategies.
//!
//! Self-stabilisation is a worst-case property, so no strategy library can
//! *prove* an algorithm correct — that is what the proven bounds and the
//! [`sc_verifier`-style](https://arxiv.org/abs/1304.5719) exhaustive checking
//! of small instances are for. These strategies instead provide strong,
//! qualitatively different stress patterns used across the test suite and the
//! experiment harness:
//!
//! * [`none`] — fault-free executions (sanity baseline),
//! * [`crash`] — faulty nodes freeze an arbitrary state forever,
//! * [`random`] — fresh arbitrary state per (sender, receiver, round),
//! * [`two_faced`] — classic equivocation: plausible-but-different honest
//!   states presented to the two halves of the network, attacking majority
//!   votes,
//! * [`replay`] — lagged copies of honest states, attacking counters
//!   specifically (stale counter values are plausible values),
//! * [`fixed`] — a caller-chosen constant state (building block for tests).
//!
//! Counter-*structure-aware* attacks (king impersonation, pointer splitting)
//! live in `sc-core::adversaries`, next to the state types they inspect.

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_protocol::{NodeId, SyncProtocol};

use crate::adversary::{Adversary, RoundContext};

/// Sorts, deduplicates and wraps raw faulty indices.
fn normalize(faulty: impl IntoIterator<Item = usize>) -> Vec<NodeId> {
    let mut ids: Vec<NodeId> = faulty.into_iter().map(NodeId::new).collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

/// The empty adversary: no faulty nodes at all.
///
/// # Example
///
/// ```
/// use sc_sim::{adversaries, Adversary};
///
/// let adv = adversaries::none();
/// assert!(<_ as Adversary<u64>>::faulty(&adv).is_empty());
/// ```
pub fn none() -> NoFaults {
    NoFaults { _priv: () }
}

/// Adversary with no faulty nodes. See [`none`].
#[derive(Clone, Debug)]
pub struct NoFaults {
    _priv: (),
}

impl<S> Adversary<S> for NoFaults {
    fn faulty(&self) -> &[NodeId] {
        &[]
    }

    fn message(&mut self, from: NodeId, _to: NodeId, _ctx: &RoundContext<'_, S>) -> S {
        unreachable!("no faulty nodes, but a message was requested from {from}")
    }
}

/// Crash-style faults: each faulty node freezes an arbitrary state (sampled
/// once from the protocol's state space) and broadcasts it forever.
///
/// This is the *weakest* Byzantine behaviour — it cannot equivocate — and is
/// mainly useful to check that algorithms do not rely on faulty nodes
/// participating.
pub fn crash<P: SyncProtocol>(
    protocol: &P,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
) -> Crash<P::State> {
    let ids = normalize(faulty);
    let mut rng = SmallRng::seed_from_u64(seed);
    let frozen = ids
        .iter()
        .map(|&id| protocol.random_state(id, &mut rng))
        .collect();
    Crash {
        faulty: ids,
        frozen,
    }
}

/// Adversary produced by [`crash`].
#[derive(Clone, Debug)]
pub struct Crash<S> {
    faulty: Vec<NodeId>,
    frozen: Vec<S>,
}

impl<S: Clone + std::fmt::Debug> Adversary<S> for Crash<S> {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn message(&mut self, from: NodeId, _to: NodeId, _ctx: &RoundContext<'_, S>) -> S {
        let idx = self
            .faulty
            .binary_search(&from)
            .expect("message requested from a non-faulty node");
        self.frozen[idx].clone()
    }
}

/// Fully random Byzantine noise: a fresh arbitrary state for every
/// (sender, receiver, round) triple.
///
/// Because states are drawn from the protocol's own state space they are
/// always *well-formed*, unlike bit-level garbage; this exercises every
/// decoding path without tripping validation.
pub fn random<P: SyncProtocol>(
    protocol: &P,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
) -> FreshRandom<'_, P::State> {
    let sample: Sampler<'_, P::State> = Box::new(move |node, rng| protocol.random_state(node, rng));
    FreshRandom {
        faulty: normalize(faulty),
        rng: SmallRng::seed_from_u64(seed),
        sample,
    }
}

type Sampler<'a, S> = Box<dyn Fn(NodeId, &mut SmallRng) -> S + 'a>;

/// Like [`random`], but drawing fabricated states from an arbitrary sampler
/// instead of a [`SyncProtocol`] — for protocols of other communication
/// models (e.g. the pulling model).
pub fn random_from<'a, S>(
    sampler: impl Fn(NodeId, &mut SmallRng) -> S + 'a,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
) -> FreshRandom<'a, S> {
    FreshRandom {
        faulty: normalize(faulty),
        rng: SmallRng::seed_from_u64(seed),
        sample: Box::new(sampler),
    }
}

/// Like [`two_faced`], but drawing fallback states from an arbitrary sampler
/// instead of a [`SyncProtocol`].
pub fn two_faced_from<'a, S>(
    sampler: impl Fn(NodeId, &mut SmallRng) -> S + 'a,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
) -> TwoFaced<'a, S> {
    TwoFaced {
        faulty: normalize(faulty),
        rng: SmallRng::seed_from_u64(seed),
        sample: Box::new(sampler),
        faces: None,
    }
}

/// Adversary produced by [`random`].
pub struct FreshRandom<'a, S> {
    faulty: Vec<NodeId>,
    rng: SmallRng,
    sample: Sampler<'a, S>,
}

impl<S> std::fmt::Debug for FreshRandom<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FreshRandom")
            .field("faulty", &self.faulty)
            .finish_non_exhaustive()
    }
}

impl<S: Clone + std::fmt::Debug> Adversary<S> for FreshRandom<'_, S> {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn message(&mut self, from: NodeId, _to: NodeId, _ctx: &RoundContext<'_, S>) -> S {
        (self.sample)(from, &mut self.rng)
    }
}

/// Two-faced equivocation: each round the adversary picks two *honest donor
/// states* and presents one to even-indexed receivers and the other to
/// odd-indexed receivers.
///
/// Donor states are plausible in-protocol states, which is the strongest way
/// to attack majority votes: the faulty nodes appear to be correct members of
/// two different "camps", keeping the camps from converging.
pub fn two_faced<P: SyncProtocol>(
    protocol: &P,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
) -> TwoFaced<'_, P::State> {
    let sample: Sampler<'_, P::State> = Box::new(move |node, rng| protocol.random_state(node, rng));
    TwoFaced {
        faulty: normalize(faulty),
        rng: SmallRng::seed_from_u64(seed),
        sample,
        faces: None,
    }
}

/// Adversary produced by [`two_faced`].
pub struct TwoFaced<'a, S> {
    faulty: Vec<NodeId>,
    rng: SmallRng,
    sample: Sampler<'a, S>,
    faces: Option<(S, S)>,
}

impl<S> std::fmt::Debug for TwoFaced<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TwoFaced")
            .field("faulty", &self.faulty)
            .finish_non_exhaustive()
    }
}

impl<S: Clone + std::fmt::Debug> Adversary<S> for TwoFaced<'_, S> {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn begin_round(&mut self, ctx: &RoundContext<'_, S>) {
        let honest: Vec<NodeId> = ctx.honest_ids().collect();
        let pick = |rng: &mut SmallRng| -> usize { rng.random_range(0..honest.len().max(1)) };
        let (a, b) = if honest.is_empty() {
            // Degenerate all-faulty network: fall back to sampled states.
            (
                (self.sample)(NodeId::new(0), &mut self.rng),
                (self.sample)(NodeId::new(0), &mut self.rng),
            )
        } else {
            let ia = pick(&mut self.rng);
            let ib = pick(&mut self.rng);
            (
                ctx.honest[honest[ia].index()].clone(),
                ctx.honest[honest[ib].index()].clone(),
            )
        };
        self.faces = Some((a, b));
    }

    fn message(&mut self, _from: NodeId, to: NodeId, _ctx: &RoundContext<'_, S>) -> S {
        let (a, b) = self.faces.as_ref().expect("begin_round not called");
        if to.index().is_multiple_of(2) {
            a.clone()
        } else {
            b.clone()
        }
    }
}

/// Replay attack: faulty nodes echo honest states from `delay` rounds ago.
///
/// Stale counter states are plausible counter states, so this specifically
/// attacks the *increment* part of the counting specification.
pub fn replay<S: Clone>(faulty: impl IntoIterator<Item = usize>, delay: usize) -> Replay<S> {
    Replay {
        faulty: normalize(faulty),
        delay: delay.max(1),
        history: VecDeque::new(),
    }
}

/// Adversary produced by [`replay`].
#[derive(Clone, Debug)]
pub struct Replay<S> {
    faulty: Vec<NodeId>,
    delay: usize,
    history: VecDeque<Vec<S>>,
}

impl<S: Clone + std::fmt::Debug> Adversary<S> for Replay<S> {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn begin_round(&mut self, ctx: &RoundContext<'_, S>) {
        self.history.push_back(ctx.honest.to_vec());
        while self.history.len() > self.delay {
            self.history.pop_front();
        }
    }

    fn message(&mut self, _from: NodeId, to: NodeId, ctx: &RoundContext<'_, S>) -> S {
        let snapshot = self.history.front().expect("begin_round not called");
        // Echo a (possibly stale) honest state back at the receiver; pick the
        // donor deterministically so different receivers see different lags.
        let donor = ctx
            .honest_ids()
            .nth(to.index() % ctx.honest_ids().count().max(1))
            .unwrap_or(to);
        snapshot[donor.index()].clone()
    }
}

/// Sends the caller-supplied state to every receiver in every round.
///
/// # Example
///
/// ```
/// use sc_sim::adversaries;
///
/// let adv = adversaries::fixed([1usize, 3], 99u64);
/// ```
pub fn fixed<S: Clone>(faulty: impl IntoIterator<Item = usize>, state: S) -> Fixed<S> {
    Fixed {
        faulty: normalize(faulty),
        state,
    }
}

/// Adversary produced by [`fixed`].
#[derive(Clone, Debug)]
pub struct Fixed<S> {
    faulty: Vec<NodeId>,
    state: S,
}

impl<S: Clone + std::fmt::Debug> Adversary<S> for Fixed<S> {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn message(&mut self, _from: NodeId, _to: NodeId, _ctx: &RoundContext<'_, S>) -> S {
        self.state.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;
    use sc_protocol::{MessageView, StepContext, SyncProtocol};

    struct Toy;
    impl SyncProtocol for Toy {
        type State = u64;
        fn n(&self) -> usize {
            4
        }
        fn step(&self, _: NodeId, _: &MessageView<'_, u64>, _: &mut StepContext<'_>) -> u64 {
            0
        }
        fn output(&self, _: NodeId, s: &u64) -> u64 {
            *s
        }
        fn random_state(&self, _: NodeId, rng: &mut dyn RngCore) -> u64 {
            rng.next_u64() % 100
        }
    }

    fn ctx<'a>(honest: &'a [u64], faulty: &'a [NodeId]) -> RoundContext<'a, u64> {
        RoundContext {
            round: 0,
            honest,
            faulty,
        }
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        assert_eq!(
            normalize([3, 1, 3, 0]),
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(3)]
        );
    }

    #[test]
    fn crash_always_sends_the_same_state() {
        let mut adv = crash(&Toy, [2], 9);
        let honest = vec![0u64; 4];
        let faulty = vec![NodeId::new(2)];
        let c = ctx(&honest, &faulty);
        let first = adv.message(NodeId::new(2), NodeId::new(0), &c);
        for to in [0usize, 1, 3] {
            assert_eq!(adv.message(NodeId::new(2), NodeId::new(to), &c), first);
        }
    }

    #[test]
    fn two_faced_splits_receivers_by_parity() {
        let mut adv = two_faced(&Toy, [3], 5);
        let honest = vec![10u64, 20, 30, 40];
        let faulty = vec![NodeId::new(3)];
        let c = ctx(&honest, &faulty);
        adv.begin_round(&c);
        let to_even = adv.message(NodeId::new(3), NodeId::new(0), &c);
        let to_even2 = adv.message(NodeId::new(3), NodeId::new(2), &c);
        let to_odd = adv.message(NodeId::new(3), NodeId::new(1), &c);
        assert_eq!(to_even, to_even2);
        // Faces are honest donor states.
        assert!(honest.contains(&to_even));
        assert!(honest.contains(&to_odd));
    }

    #[test]
    fn replay_serves_stale_states() {
        let mut adv = replay::<u64>([0], 2);
        let faulty = vec![NodeId::new(0)];
        let r0 = vec![1u64, 2, 3, 4];
        adv.begin_round(&ctx(&r0, &faulty));
        let r1 = vec![5u64, 6, 7, 8];
        adv.begin_round(&ctx(&r1, &faulty));
        let r2 = vec![9u64, 10, 11, 12];
        adv.begin_round(&ctx(&r2, &faulty));
        // History window is 2 rounds: the oldest snapshot is r1.
        let c = ctx(&r2, &faulty);
        let sent = adv.message(NodeId::new(0), NodeId::new(2), &c);
        assert!(r1.contains(&sent));
    }

    #[test]
    fn fixed_sends_supplied_state() {
        let mut adv = fixed([1], 77u64);
        let honest = vec![0u64; 2];
        let faulty = vec![NodeId::new(1)];
        let c = ctx(&honest, &faulty);
        assert_eq!(adv.message(NodeId::new(1), NodeId::new(0), &c), 77);
    }

    #[test]
    #[should_panic(expected = "no faulty nodes")]
    fn none_never_sends() {
        let mut adv = none();
        let honest = vec![0u64; 2];
        let c = ctx(&honest, &[]);
        let _ = adv.message(NodeId::new(0), NodeId::new(1), &c);
    }
}
