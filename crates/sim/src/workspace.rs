//! Reusable per-round scratch storage for execution engines.
//!
//! The hot loop of a synchronous round needs short-lived buffers per correct
//! receiver: the adversary's per-receiver lease vector and (for layered or
//! exhaustive engines) a dense received-state vector. Allocating them per
//! receiver — as the first engine did — dominates the round cost for small
//! protocols; a [`RoundWorkspace`] owns the buffers once and is reused round
//! after round, scenario after scenario. The simulator, the batch engine,
//! and `sc-verifier`'s exhaustive checker all share this type.
//!
//! The workspace also hosts the [`StatePool`] of the borrow-based adversary
//! message plane: adversaries materialise fabricated states into the pool
//! (pinned once per execution or fresh per round) and hand the engine cheap
//! [`MessageSource`] leases instead of owned clones per receiver.

use sc_protocol::{MessageSource, NodeId};

/// The backing store of the borrow-based adversary message plane.
///
/// An [`Adversary`](crate::Adversary) never returns an owned state; it
/// returns a [`MessageSource`] lease that either echoes a broadcast state or
/// names a slot of this pool. The pool has two halves:
///
/// * **pinned** states live for the whole execution ([`StatePool::pin`]) —
///   a crash adversary's frozen states are materialised exactly once;
/// * **fabricated** states live for one round ([`StatePool::fabricate`]) —
///   the engine recycles their slots via [`StatePool::begin_round`], so a
///   two-faced adversary materialises each face once per round instead of
///   once per receiver.
///
/// The cumulative fabrication count is the message plane's cost ledger:
/// [`StatePool::fabricated_total`] is what the `throughput` bench reports as
/// the fabricated-state clone count of a sweep.
///
/// Leases are only meaningful for the execution whose pool produced them;
/// adversaries must not carry tokens from one simulation into another.
#[derive(Clone, Debug, Default)]
pub struct StatePool<S> {
    pinned: Vec<S>,
    round: Vec<S>,
    fabricated: u64,
}

impl<S> StatePool<S> {
    /// An empty pool.
    pub fn new() -> Self {
        StatePool {
            pinned: Vec::new(),
            round: Vec::new(),
            fabricated: 0,
        }
    }

    /// Stores `state` for the rest of the execution and leases it.
    ///
    /// The returned token stays valid across rounds — pin states that never
    /// change (frozen crash values, fixed attack states) and reuse the
    /// token forever.
    pub fn pin(&mut self, state: S) -> MessageSource {
        self.pinned.push(state);
        MessageSource::Pinned((self.pinned.len() - 1) as u32)
    }

    /// Stores `state` for the current round and leases it.
    ///
    /// The token is recycled when the next round begins; fabricate at most
    /// once per distinct state per round (e.g. in
    /// [`Adversary::begin_round`](crate::Adversary::begin_round)) and hand
    /// the same token to every receiver that should see it.
    pub fn fabricate(&mut self, state: S) -> MessageSource {
        self.fabricated += 1;
        self.round.push(state);
        MessageSource::Fabricated((self.round.len() - 1) as u32)
    }

    /// Engine hook: recycles the round half of the pool. Pinned states and
    /// the cumulative fabrication count survive.
    pub fn begin_round(&mut self) {
        self.round.clear();
    }

    /// The execution-pinned states, indexed by [`MessageSource::Pinned`].
    pub fn pinned(&self) -> &[S] {
        &self.pinned
    }

    /// This round's fabricated states, indexed by
    /// [`MessageSource::Fabricated`].
    pub fn round(&self) -> &[S] {
        &self.round
    }

    /// Total states fabricated over the execution so far (pinned states are
    /// not counted — they are materialised once, which is the point).
    pub fn fabricated_total(&self) -> u64 {
        self.fabricated
    }

    /// Resolves a lease against the round's broadcast `base` — the
    /// reference-engine path and the test helper; the hot path resolves
    /// through [`MessageView::from_sources`](sc_protocol::MessageView).
    ///
    /// # Panics
    ///
    /// Panics if the lease names a slot this pool never issued.
    pub fn resolve<'a>(&'a self, base: &'a [S], source: MessageSource) -> &'a S {
        match source {
            MessageSource::Broadcast(donor) => &base[donor.index()],
            MessageSource::Pinned(slot) => &self.pinned[slot as usize],
            MessageSource::Fabricated(slot) => &self.round[slot as usize],
        }
    }
}

/// Reusable scratch buffers for one executing engine.
///
/// The buffers are plain `Vec`s left public on purpose: a workspace is
/// *scratch*, with no invariants of its own — engines clear and refill the
/// parts they use. Capacity is retained across uses, which is the point.
#[derive(Clone, Debug, Default)]
pub struct RoundWorkspace<S> {
    /// Per-receiver adversary leases `(faulty sender, message source)`,
    /// cleared and refilled for every correct receiver. Plain `Copy` tokens
    /// — resolving them against `pool` is the zero-copy part of the plane.
    pub sources: Vec<(NodeId, MessageSource)>,
    /// The adversary state pool the leases in `sources` point into.
    pub pool: StatePool<S>,
    /// Dense received-state scratch for engines that materialise whole
    /// vectors (the exhaustive checker's Byzantine-combination sweep).
    pub scratch: Vec<S>,
}

impl<S> RoundWorkspace<S> {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        RoundWorkspace {
            sources: Vec::new(),
            pool: StatePool::new(),
            scratch: Vec::new(),
        }
    }

    /// A workspace pre-sized for `f` faulty senders and `n` nodes.
    pub fn with_capacity(f: usize, n: usize) -> Self {
        RoundWorkspace {
            sources: Vec::with_capacity(f),
            pool: StatePool::new(),
            scratch: Vec::with_capacity(n),
        }
    }

    /// Clears the lease and scratch buffers, keeping their capacity, and
    /// recycles the round half of the pool.
    pub fn clear(&mut self) {
        self.sources.clear();
        self.pool.begin_round();
        self.scratch.clear();
    }
}

/// A precomputed fault bitmap: O(1) "is this node faulty?" in the round
/// loop, replacing the per-node `binary_search` of the first engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultMask {
    words: Vec<u64>,
}

impl FaultMask {
    /// Builds the mask for a network of `n` nodes from the sorted fault set.
    pub fn from_sorted(faulty: &[NodeId], n: usize) -> Self {
        let mut words = vec![0u64; n.div_ceil(64)];
        for id in faulty {
            debug_assert!(id.index() < n, "faulty node outside the network");
            words[id.index() / 64] |= 1 << (id.index() % 64);
        }
        FaultMask { words }
    }

    /// Whether node `index` is faulty.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// Number of faulty nodes in the mask.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_matches_binary_search() {
        let faulty: Vec<NodeId> = [3usize, 64, 65, 129]
            .iter()
            .map(|&i| NodeId::new(i))
            .collect();
        let mask = FaultMask::from_sorted(&faulty, 130);
        for i in 0..130 {
            assert_eq!(
                mask.contains(i),
                faulty.binary_search(&NodeId::new(i)).is_ok(),
                "{i}"
            );
        }
        assert_eq!(mask.count(), 4);
    }

    #[test]
    fn empty_mask_contains_nothing() {
        let mask = FaultMask::from_sorted(&[], 10);
        assert!((0..10).all(|i| !mask.contains(i)));
        assert_eq!(mask.count(), 0);
    }

    #[test]
    fn workspace_retains_capacity_across_clears() {
        let mut ws: RoundWorkspace<u64> = RoundWorkspace::with_capacity(4, 16);
        ws.sources
            .extend((0..4).map(|i| (NodeId::new(i), MessageSource::Broadcast(NodeId::new(i)))));
        ws.scratch.extend(0..16u64);
        let (oc, sc) = (ws.sources.capacity(), ws.scratch.capacity());
        ws.clear();
        assert!(ws.sources.is_empty() && ws.scratch.is_empty());
        assert!(ws.sources.capacity() >= oc && ws.scratch.capacity() >= sc);
    }

    #[test]
    fn pool_recycles_round_slots_but_keeps_pins_and_ledger() {
        let mut pool: StatePool<u64> = StatePool::new();
        let frozen = pool.pin(7);
        let face = pool.fabricate(40);
        assert_eq!(pool.resolve(&[], frozen), &7);
        assert_eq!(pool.resolve(&[], face), &40);
        assert_eq!(pool.fabricated_total(), 1);

        pool.begin_round();
        assert!(pool.round().is_empty(), "round slots must be recycled");
        assert_eq!(pool.pinned(), &[7], "pins must survive rounds");
        assert_eq!(pool.fabricated_total(), 1, "ledger is cumulative");
        let face2 = pool.fabricate(41);
        assert_eq!(face2, MessageSource::Fabricated(0), "slot 0 is reused");
        assert_eq!(pool.fabricated_total(), 2);
    }

    #[test]
    fn pool_resolves_broadcast_leases_against_the_base() {
        let pool: StatePool<u64> = StatePool::new();
        let base = vec![5u64, 6, 7];
        let lease = MessageSource::Broadcast(NodeId::new(2));
        assert_eq!(pool.resolve(&base, lease), &7);
    }
}
