//! Reusable per-round scratch storage for execution engines.
//!
//! The hot loop of a synchronous round needs two short-lived buffers per
//! correct receiver: the adversary's override vector and (for layered or
//! exhaustive engines) a dense received-state vector. Allocating them per
//! receiver — as the first engine did — dominates the round cost for small
//! protocols; a [`RoundWorkspace`] owns both buffers once and is reused
//! round after round, scenario after scenario. The simulator, the batch
//! engine, and `sc-verifier`'s exhaustive checker all share this type.

use sc_protocol::NodeId;

/// Reusable scratch buffers for one executing engine.
///
/// The buffers are plain `Vec`s left public on purpose: a workspace is
/// *scratch*, with no invariants of its own — engines clear and refill the
/// parts they use. Capacity is retained across uses, which is the point.
#[derive(Clone, Debug, Default)]
pub struct RoundWorkspace<S> {
    /// Per-receiver adversary overrides `(faulty sender, fabricated state)`,
    /// cleared and refilled for every correct receiver.
    pub overrides: Vec<(NodeId, S)>,
    /// Dense received-state scratch for engines that materialise whole
    /// vectors (the exhaustive checker's Byzantine-combination sweep).
    pub scratch: Vec<S>,
}

impl<S> RoundWorkspace<S> {
    /// An empty workspace; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        RoundWorkspace {
            overrides: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// A workspace pre-sized for `f` faulty senders and `n` nodes.
    pub fn with_capacity(f: usize, n: usize) -> Self {
        RoundWorkspace {
            overrides: Vec::with_capacity(f),
            scratch: Vec::with_capacity(n),
        }
    }

    /// Clears both buffers, keeping their capacity.
    pub fn clear(&mut self) {
        self.overrides.clear();
        self.scratch.clear();
    }
}

/// A precomputed fault bitmap: O(1) "is this node faulty?" in the round
/// loop, replacing the per-node `binary_search` of the first engine.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultMask {
    words: Vec<u64>,
}

impl FaultMask {
    /// Builds the mask for a network of `n` nodes from the sorted fault set.
    pub fn from_sorted(faulty: &[NodeId], n: usize) -> Self {
        let mut words = vec![0u64; n.div_ceil(64)];
        for id in faulty {
            debug_assert!(id.index() < n, "faulty node outside the network");
            words[id.index() / 64] |= 1 << (id.index() % 64);
        }
        FaultMask { words }
    }

    /// Whether node `index` is faulty.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.words[index / 64] >> (index % 64) & 1 == 1
    }

    /// Number of faulty nodes in the mask.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_matches_binary_search() {
        let faulty: Vec<NodeId> = [3usize, 64, 65, 129]
            .iter()
            .map(|&i| NodeId::new(i))
            .collect();
        let mask = FaultMask::from_sorted(&faulty, 130);
        for i in 0..130 {
            assert_eq!(
                mask.contains(i),
                faulty.binary_search(&NodeId::new(i)).is_ok(),
                "{i}"
            );
        }
        assert_eq!(mask.count(), 4);
    }

    #[test]
    fn empty_mask_contains_nothing() {
        let mask = FaultMask::from_sorted(&[], 10);
        assert!((0..10).all(|i| !mask.contains(i)));
        assert_eq!(mask.count(), 0);
    }

    #[test]
    fn workspace_retains_capacity_across_clears() {
        let mut ws: RoundWorkspace<u64> = RoundWorkspace::with_capacity(4, 16);
        ws.overrides
            .extend((0..4).map(|i| (NodeId::new(i), i as u64)));
        ws.scratch.extend(0..16u64);
        let (oc, sc) = (ws.overrides.capacity(), ws.scratch.capacity());
        ws.clear();
        assert!(ws.overrides.is_empty() && ws.scratch.is_empty());
        assert!(ws.overrides.capacity() >= oc && ws.scratch.capacity() >= sc);
    }
}
