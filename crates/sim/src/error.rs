//! Simulator error types.

use std::error::Error;
use std::fmt;

/// Error raised when analysing an execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The execution did not exhibit a long-enough stable counting suffix
    /// within the simulated horizon.
    NotStabilized {
        /// Rounds simulated (number of recorded transitions).
        rounds: u64,
        /// The last round at which the counting specification was violated,
        /// if any violation was seen at all.
        last_violation: Option<u64>,
        /// Length of the violation-free suffix that was observed.
        confirmed: u64,
        /// Suffix length that was required for a stabilisation verdict.
        required: u64,
    },
    /// The trace contains no observations to analyse.
    EmptyTrace,
    /// The requested horizon cannot accommodate the confirmation suffix a
    /// stabilisation verdict needs, so a run would be inconclusive no
    /// matter what it observed.
    HorizonTooShort {
        /// Rounds the caller asked to simulate.
        horizon: u64,
        /// Violation-free suffix length a verdict requires.
        required: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NotStabilized { rounds, last_violation, confirmed, required } => write!(
                f,
                "execution not stabilised after {rounds} rounds \
                 (last violation {last_violation:?}, stable suffix {confirmed} < required {required})"
            ),
            SimError::EmptyTrace => write!(f, "output trace is empty"),
            SimError::HorizonTooShort { horizon, required } => write!(
                f,
                "horizon {horizon} cannot accommodate the required \
                 confirmation suffix of {required} transitions"
            ),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_numbers() {
        let e = SimError::NotStabilized {
            rounds: 100,
            last_violation: Some(99),
            confirmed: 0,
            required: 8,
        };
        let msg = e.to_string();
        assert!(msg.contains("100") && msg.contains("99") && msg.contains('8'));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: Error + Send + Sync + 'static>(_: E) {}
        check(SimError::EmptyTrace);
    }
}
