//! Bit-sliced scenario sweeps: 64 scenarios per machine word.
//!
//! [`crate::Batch`] steps one scenario at a time through the scalar engine.
//! This module is the transposed counterpart: scenario state lives in
//! [`PlaneBuf`] planes (one `u64` word per state bit, 64 scenarios per
//! "lane"), the protocol transition is compiled **once** into a
//! [`Program`] of word ops (see `sc-core`'s DAG builder), and
//! [`SlicedBatch`] advances whole lane groups per round — per-lane fault
//! content and adversary moves become word-wise selects, packed constants,
//! ring loads and gather tables.
//!
//! The scalar engine stays the oracle: for supported adversaries every
//! sliced sweep is asserted verdict-identical (seed and stabilisation
//! [`ScenarioOutcome::result`]) against [`crate::Batch`] in the test suites
//! and the throughput gate. Two ledger fields are engine-specific and
//! deliberately excluded from that comparison:
//! [`ScenarioOutcome::fabricated_states`] (the sliced engine has no message
//! pool; it reports 0) and [`ScenarioOutcome::exit_reason`] (always
//! [`ExitReason::FullHorizon`]; the sliced engine amortises rounds across
//! lanes instead of exiting early).
//!
//! The pieces:
//!
//! * [`SlicedProtocol`] — a counter that can lower its transition to round
//!   programs for a given fault set ([`RoundProgramSource`]).
//! * [`SlicedStrategy`] — the adversary interface of the sliced plane:
//!   instead of per-receiver message leases, a strategy names one
//!   [`FaceRef`] per (faulty sender, receiver) pair per round, plus packed
//!   constant bundles and per-lane gather donors.
//! * [`SlicedBatch`] — the sweep engine, mirroring [`crate::Batch`]'s
//!   verdict pipeline ([`OnlineDetector`] per lane).
//! * [`sliced_crash`] / [`sliced_replay`] / [`sliced_two_faced_periodic`] —
//!   sliced twins of the scalar strategies, bit-identical in effect.

use std::ops::Range;
use std::sync::{Arc, Mutex};

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_protocol::{
    BitVec, Counter, ExecSpaces, FaceRef, NodeId, PlaneBuf, Program, RoundFaces, SlicedLayout,
};

use crate::adversaries::normalize_faults;
use crate::batch::{BatchReport, Scenario, ScenarioOutcome};
use crate::early::ExitReason;
use crate::obs::SimObs;
use crate::simulation::required_confirmation;
use crate::stabilization::OnlineDetector;
use crate::SimError;

/// A compiled transition model for one (protocol, fault set) pair.
///
/// Produced by [`SlicedProtocol::sliced_model`] and driven by
/// [`SlicedBatch`]: the engine packs states through
/// [`extend_bundle`](RoundProgramSource::extend_bundle), registers the
/// strategy's packed bundles, and asks for one [`Program`] per distinct
/// (canonicalised) face pattern — implementations cache compiled programs,
/// so a lasso-periodic attack costs at most one compile per distinct round
/// pattern no matter how many sweeps reuse the model.
pub trait RoundProgramSource {
    /// The per-node bundle layout of the model's arenas.
    fn layout(&self) -> SlicedLayout;

    /// Extends a codec-encoded state of `node` (the first
    /// [`SlicedLayout::state_bits`] bits of `bundle`) into a full bundle by
    /// appending the derived ext planes and the output field. The node
    /// matters when outputs are node-dependent (per-node LUT tables).
    fn extend_bundle(&self, node: u32, bundle: &mut BitVec);

    /// Registers packed bundle `id`. `uniform` carries the full bundle bits
    /// when the content is lane-uniform (compiled to constants, enabling
    /// whole-subtree folding); `None` declares a per-lane bundle the engine
    /// materialises itself. Registration is idempotent; re-registering an
    /// id with different content is a caller bug and panics.
    fn register_packed(&mut self, id: u16, uniform: Option<&BitVec>);

    /// Whether `id` is already registered. The engine skips the (costly)
    /// re-encode + idempotence check for known ids, so hot objectives that
    /// sweep thousands of scripts against one model pay the vocabulary
    /// encoding once, not per evaluation.
    fn packed_registered(&self, id: u16) -> bool {
        let _ = id;
        false
    }

    /// The compiled program for one canonicalised face pattern.
    fn round_program(&mut self, faces: &RoundFaces) -> Arc<Program>;
}

/// A counter whose transition can be lowered to bit-sliced round programs.
///
/// Returning `None` (unsupported structure for `faulty`) makes callers fall
/// back to the scalar engine — slicing is an accelerator, never a semantic
/// fork.
pub trait SlicedProtocol: Counter {
    /// Builds the compiled model for a sorted fault set.
    fn sliced_model(&self, faulty: &[NodeId]) -> Option<Box<dyn RoundProgramSource + Send>>;
}

/// Initial content of one packed bundle slot.
#[derive(Clone, Debug)]
pub enum PackedInit<S> {
    /// The same state in every lane — compiled into constants.
    Uniform {
        /// Sender identity the state is encoded as.
        node: NodeId,
        /// The lane-uniform state.
        state: S,
    },
    /// One state per lane (indexed by global scenario index).
    PerLane {
        /// Sender identity the states are encoded as.
        node: NodeId,
        /// Per-lane states, one per scenario.
        states: Vec<S>,
    },
}

/// A Byzantine strategy on the sliced plane.
///
/// Where a scalar [`crate::Adversary`] returns per-receiver message leases
/// round by round, a sliced strategy declares, per round, a *face table*:
/// one [`FaceRef`] per (faulty sender, receiver) pair, all lane-uniform in
/// identity. Per-lane variation enters only through packed bundles
/// (constant per execution, e.g. crash freezes) and gather tables (per-lane
/// donor selection, e.g. seeded equivocation schedules).
pub trait SlicedStrategy<S> {
    /// Sorted, deduplicated fault set.
    fn faulty(&self) -> &[NodeId];

    /// Deepest replay-ring lag any face ever names (before the engine's
    /// per-round clamping).
    fn max_lag(&self) -> usize {
        0
    }

    /// Packed constant bundles, indexed by [`sc_protocol::Space::Packed`]
    /// id.
    fn packed_bundles(&self) -> Vec<PackedInit<S>> {
        Vec::new()
    }

    /// Number of gather tables the faces reference.
    fn gather_tables(&self) -> usize {
        0
    }

    /// Writes the face table for `round` into `faces` (pre-sized to
    /// `faulty × n` rows). Rows for faulty receivers are ignored (the
    /// engine canonicalises them away).
    fn faces(&self, round: u64, n: usize, faces: &mut RoundFaces);

    /// Writes the per-lane donor (global node index) of each gather table
    /// for `round`: `out[table][lane - lanes.start]`.
    fn gather_donors(&self, round: u64, lanes: Range<usize>, out: &mut [Vec<u32>]) {
        let _ = (round, lanes, out);
    }
}

/// Bit-sliced batched sweep runner: the transposed twin of
/// [`crate::Batch`].
///
/// Scenarios are packed 64-per-word into lane groups of
/// `64 × lane_words` lanes; each group advances through compiled round
/// programs, with per-lane stabilisation verdicts from the same
/// [`OnlineDetector`] the scalar engine uses — which is what makes verdict
/// equality structural rather than coincidental. Groups fan out across
/// threads (strided assignment, like the attack searcher's `fan_out`).
#[derive(Clone, Copy, Debug)]
pub struct SlicedBatch<'a, P> {
    protocol: &'a P,
    horizon: u64,
    threads: usize,
    lane_words: usize,
    obs: Option<&'a SimObs>,
}

impl<'a, P: SlicedProtocol> SlicedBatch<'a, P> {
    /// A sweep runner giving each scenario `horizon` rounds.
    pub fn new(protocol: &'a P, horizon: u64) -> Self {
        SlicedBatch {
            protocol,
            horizon,
            threads: sc_exec::threads(),
            lane_words: 4,
            obs: None,
        }
    }

    /// Meters every scenario of this sweep into `obs`, a lane group at a
    /// time (see [`crate::Batch::observed`]). Verdicts are bitwise
    /// unchanged.
    pub fn observed(mut self, obs: &'a SimObs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Caps the worker thread count (clamped to at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the lane-group width in 64-lane words (default 4, i.e. 256
    /// scenarios per group). Wider groups amortise op dispatch over more
    /// lanes; narrower groups expose more thread parallelism for short
    /// scenario lists. Verdicts are invariant under this knob.
    pub fn lane_words(mut self, lane_words: usize) -> Self {
        self.lane_words = lane_words.max(1);
        self
    }

    /// Runs every scenario under `strategy`, producing verdicts in input
    /// order, or `None` when the protocol cannot lower this fault set (the
    /// caller falls back to [`crate::Batch`]).
    pub fn run<S>(&self, scenarios: &[Scenario<P::State>], strategy: &S) -> Option<BatchReport>
    where
        S: SlicedStrategy<P::State> + Sync,
        P: Sync,
        P::State: Send + Sync,
    {
        let model = self.protocol.sliced_model(strategy.faulty())?;
        Some(self.run_with_model(scenarios, strategy, &Mutex::new(model)))
    }

    /// [`run`](SlicedBatch::run) against a caller-owned model, so hot loops
    /// (attack objectives) reuse one compiled model — and its program cache
    /// — across thousands of sweeps.
    pub fn run_with_model<S>(
        &self,
        scenarios: &[Scenario<P::State>],
        strategy: &S,
        model: &Mutex<Box<dyn RoundProgramSource + Send>>,
    ) -> BatchReport
    where
        S: SlicedStrategy<P::State> + Sync,
        P: Sync,
        P::State: Send + Sync,
    {
        let confirm = required_confirmation(self.protocol.modulus());
        if self.horizon < confirm {
            let outcomes: Vec<ScenarioOutcome> = scenarios
                .iter()
                .map(|s| ScenarioOutcome {
                    seed: s.seed,
                    result: Err(SimError::HorizonTooShort {
                        horizon: self.horizon,
                        required: confirm,
                    }),
                    fabricated_states: 0,
                    exit_reason: ExitReason::FullHorizon,
                })
                .collect();
            if let Some(obs) = self.obs {
                for outcome in &outcomes {
                    obs.scenario_done(outcome);
                }
            }
            return BatchReport { outcomes };
        }
        if scenarios.is_empty() {
            return BatchReport {
                outcomes: Vec::new(),
            };
        }

        let layout = model.lock().expect("model poisoned").layout();
        let n = layout.n as usize;
        let faulty: Vec<NodeId> = strategy.faulty().to_vec();
        let honest: Vec<u32> = (0..n as u32)
            .filter(|&i| faulty.binary_search(&NodeId::new(i as usize)).is_err())
            .collect();
        assert!(!honest.is_empty(), "sliced sweeps need a correct node");

        let packed_inits = strategy.packed_bundles();
        {
            let mut m = model.lock().expect("model poisoned");
            for (id, init) in packed_inits.iter().enumerate() {
                if m.packed_registered(id as u16) {
                    continue;
                }
                match init {
                    PackedInit::Uniform { node, state } => {
                        let mut bits = BitVec::new();
                        self.protocol.encode_state(*node, state, &mut bits);
                        m.extend_bundle(node.index() as u32, &mut bits);
                        m.register_packed(id as u16, Some(&bits));
                    }
                    PackedInit::PerLane { .. } => m.register_packed(id as u16, None),
                }
            }
        }

        let group_lanes = self.lane_words * 64;
        let group_count = scenarios.len().div_ceil(group_lanes);
        let run_group = |gi: usize| -> Vec<ScenarioOutcome> {
            let outcomes = self.run_group(
                gi,
                scenarios,
                strategy,
                model,
                &layout,
                &faulty,
                &honest,
                &packed_inits,
                confirm,
            );
            // Metered per lane group as workers finish, so a long sweep's
            // scenarios/s reads live rather than at the join.
            if let Some(obs) = self.obs {
                for outcome in &outcomes {
                    obs.scenario_done(outcome);
                }
            }
            outcomes
        };

        let outcomes = self.schedule_groups(group_count, &run_group);
        BatchReport { outcomes }
    }

    /// Fans group execution out over the persistent [`sc_exec`] pool
    /// (workers claim groups dynamically, so long and short tails
    /// load-balance) and restores input order.
    #[cfg(feature = "parallel")]
    fn schedule_groups(
        &self,
        group_count: usize,
        run_group: &(impl Fn(usize) -> Vec<ScenarioOutcome> + Sync),
    ) -> Vec<ScenarioOutcome> {
        sc_exec::map(group_count, self.threads, run_group)
            .into_iter()
            .flatten()
            .collect()
    }

    /// Single-threaded build: groups run in order.
    #[cfg(not(feature = "parallel"))]
    fn schedule_groups(
        &self,
        group_count: usize,
        run_group: &impl Fn(usize) -> Vec<ScenarioOutcome>,
    ) -> Vec<ScenarioOutcome> {
        (0..group_count).flat_map(run_group).collect()
    }

    /// Packs, advances and adjudicates one lane group, on the calling
    /// thread's warm [`GroupScratch`].
    #[allow(clippy::too_many_arguments)]
    fn run_group<S>(
        &self,
        gi: usize,
        scenarios: &[Scenario<P::State>],
        strategy: &S,
        model: &Mutex<Box<dyn RoundProgramSource + Send>>,
        layout: &SlicedLayout,
        faulty: &[NodeId],
        honest: &[u32],
        packed_inits: &[PackedInit<P::State>],
        confirm: u64,
    ) -> Vec<ScenarioOutcome>
    where
        S: SlicedStrategy<P::State>,
    {
        GROUP_SCRATCH.with(GroupScratch::new, |scr| {
            self.run_group_with(
                scr,
                gi,
                scenarios,
                strategy,
                model,
                layout,
                faulty,
                honest,
                packed_inits,
                confirm,
            )
        })
    }

    /// [`run_group`](SlicedBatch::run_group)'s body, against explicit
    /// scratch buffers.
    #[allow(clippy::too_many_arguments)]
    fn run_group_with<S>(
        &self,
        scr: &mut GroupScratch,
        gi: usize,
        scenarios: &[Scenario<P::State>],
        strategy: &S,
        model: &Mutex<Box<dyn RoundProgramSource + Send>>,
        layout: &SlicedLayout,
        faulty: &[NodeId],
        honest: &[u32],
        packed_inits: &[PackedInit<P::State>],
        confirm: u64,
    ) -> Vec<ScenarioOutcome>
    where
        S: SlicedStrategy<P::State>,
    {
        let group_lanes = self.lane_words * 64;
        let start = gi * group_lanes;
        let end = (start + group_lanes).min(scenarios.len());
        let active = end - start;
        let lw = self.lane_words;
        let n = layout.n as usize;
        let np = layout.node_planes() as usize;
        let tables = strategy.gather_tables();
        scr.reshape(
            layout.total_planes() as usize,
            np,
            lw,
            tables,
            faulty.len(),
            n,
        );

        {
            let m = model.lock().expect("model poisoned");
            let mut bits = BitVec::new();
            for (l, scenario) in scenarios[start..end].iter().enumerate() {
                let states: Vec<P::State> = match &scenario.init {
                    Some(states) => states.clone(),
                    None => {
                        // Mirror `Simulation::new`: one SmallRng per seed,
                        // nodes sampled in id order.
                        let mut rng = SmallRng::seed_from_u64(scenario.seed);
                        (0..n)
                            .map(|i| self.protocol.random_state(NodeId::new(i), &mut rng))
                            .collect()
                    }
                };
                for (i, state) in states.iter().enumerate() {
                    bits.clear();
                    self.protocol.encode_state(NodeId::new(i), state, &mut bits);
                    m.extend_bundle(i as u32, &mut bits);
                    scr.cur
                        .pack_lane(l, layout.node_base(i as u32) as usize, &bits);
                }
            }
            for init in packed_inits {
                match init {
                    PackedInit::Uniform { .. } => {
                        // Folded into constants at compile time; the slot is
                        // never loaded.
                        scr.packed.push(PlaneBuf::new(0, lw));
                    }
                    PackedInit::PerLane { node, states } => {
                        assert!(
                            states.len() >= end,
                            "per-lane packed bundle shorter than the scenario list"
                        );
                        let mut buf = scr.packed_arena(np, lw);
                        for l in 0..active {
                            bits.clear();
                            self.protocol
                                .encode_state(*node, &states[start + l], &mut bits);
                            m.extend_bundle(node.index() as u32, &mut bits);
                            buf.pack_lane(l, 0, &bits);
                        }
                        scr.packed.push(buf);
                    }
                }
            }
        }

        scr.detectors
            .extend((0..active).map(|_| OnlineDetector::new(self.protocol.modulus())));
        observe_group(
            &scr.cur,
            layout,
            honest,
            active,
            &mut scr.detectors,
            &mut scr.agree,
        );

        let max_lag = strategy.max_lag();
        for donor in &mut scr.donors {
            donor.clear();
            donor.resize(active, 0);
        }

        for round in 0..self.horizon {
            strategy.faces(round, n, &mut scr.faces);
            canonicalize_faces(&mut scr.faces, round, max_lag, faulty, n);
            let program = model
                .lock()
                .expect("model poisoned")
                .round_program(&scr.faces);
            if tables > 0 {
                strategy.gather_donors(round, start..end, &mut scr.donors);
                for (table, gather) in scr.gathers.iter_mut().enumerate() {
                    materialize_gather(
                        gather,
                        &scr.cur,
                        layout,
                        &scr.donors[table],
                        &mut scr.donor_masks,
                    );
                }
            }
            // Planes no Store covers (faulty bundles) carry over unchanged.
            scr.next.copy_from(&scr.cur);
            let spaces = ExecSpaces {
                cur: &scr.cur,
                ring: &scr.ring,
                packed: &scr.packed,
                gather: &scr.gathers,
            };
            program.exec(&spaces, &mut scr.next, &mut scr.exec);
            observe_group(
                &scr.next,
                layout,
                honest,
                active,
                &mut scr.detectors,
                &mut scr.agree,
            );
            if max_lag > 0 {
                if scr.ring.len() < max_lag {
                    let entry = match scr.spare.pop() {
                        Some(mut buf) => {
                            buf.copy_from(&scr.cur);
                            buf
                        }
                        None => scr.cur.clone(),
                    };
                    scr.ring.insert(0, entry);
                } else {
                    scr.ring.rotate_right(1);
                    scr.ring[0].copy_from(&scr.cur);
                }
            }
            std::mem::swap(&mut scr.cur, &mut scr.next);
        }

        scenarios[start..end]
            .iter()
            .zip(scr.detectors.drain(..))
            .map(|(scenario, detector)| ScenarioOutcome {
                seed: scenario.seed,
                result: detector.finish(confirm),
                fabricated_states: 0,
                exit_reason: ExitReason::FullHorizon,
            })
            .collect()
    }
}

/// Reusable per-worker buffers for [`SlicedBatch::run_group`] — the plane
/// arenas, replay ring, gather scratch and face table every group would
/// otherwise allocate from cold. Parked per OS thread in
/// [`GROUP_SCRATCH`], so hot callers (attack objectives sweep thousands
/// of scripts through one `SlicedBatch` shape) reuse warm allocations
/// across calls.
struct GroupScratch {
    /// Current / next state arenas (`total_planes × lane_words`).
    cur: PlaneBuf,
    next: PlaneBuf,
    /// Replay ring, rebuilt per group exactly as a cold run would (one
    /// entry per executed round up to `max_lag`, so clamped lags never
    /// read a stale buffer); `spare` parks its buffers between groups.
    ring: Vec<PlaneBuf>,
    spare: Vec<PlaneBuf>,
    /// Packed-bundle arenas of the current group and their pool.
    packed: Vec<PlaneBuf>,
    packed_pool: Vec<PlaneBuf>,
    gathers: Vec<PlaneBuf>,
    donors: Vec<Vec<u32>>,
    donor_masks: Vec<u64>,
    detectors: Vec<OnlineDetector>,
    agree: Vec<u64>,
    faces: RoundFaces,
    /// `Program::exec`'s op arena.
    exec: Vec<u64>,
}

impl GroupScratch {
    fn new() -> GroupScratch {
        GroupScratch {
            cur: PlaneBuf::new(0, 1),
            next: PlaneBuf::new(0, 1),
            ring: Vec::new(),
            spare: Vec::new(),
            packed: Vec::new(),
            packed_pool: Vec::new(),
            gathers: Vec::new(),
            donors: Vec::new(),
            donor_masks: Vec::new(),
            detectors: Vec::new(),
            agree: Vec::new(),
            faces: RoundFaces::default(),
            exec: Vec::new(),
        }
    }

    /// Re-shapes the buffers for one group: zeroes what survives a
    /// matching shape, drops and rebuilds what does not. After this the
    /// scratch is indistinguishable from freshly allocated buffers.
    fn reshape(
        &mut self,
        total_planes: usize,
        np: usize,
        lw: usize,
        tables: usize,
        faulty: usize,
        n: usize,
    ) {
        // Ring buffers share the state arenas' shape; park them first so
        // a matching reshape reuses them.
        self.spare.append(&mut self.ring);
        if self.cur.planes() != total_planes || self.cur.lane_words() != lw {
            self.cur = PlaneBuf::new(total_planes, lw);
            self.next = PlaneBuf::new(total_planes, lw);
            self.spare.clear();
        } else {
            // `next` is fully overwritten by `copy_from` each round and
            // ring entries on insertion; only `cur` is packed additively.
            self.cur.clear();
        }
        self.packed_pool.append(&mut self.packed);
        self.packed_pool
            .retain(|buf| buf.planes() == np && buf.lane_words() == lw);
        if self.gathers.len() != tables
            || self
                .gathers
                .iter()
                .any(|g| g.planes() != np || g.lane_words() != lw)
        {
            self.gathers = (0..tables).map(|_| PlaneBuf::new(np, lw)).collect();
        }
        self.donors.truncate(tables);
        self.donors.resize_with(tables, Vec::new);
        self.donor_masks.clear();
        self.donor_masks.resize(n * lw, 0);
        self.detectors.clear();
        self.faces = RoundFaces::new(faulty, n);
    }

    /// A zeroed `np × lw` packed arena, reusing a parked buffer when one
    /// fits (the pool was filtered to matching shapes by `reshape`).
    fn packed_arena(&mut self, np: usize, lw: usize) -> PlaneBuf {
        match self.packed_pool.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => PlaneBuf::new(np, lw),
        }
    }
}

/// Per-OS-thread [`GroupScratch`] slots, warm across `SlicedBatch` runs.
static GROUP_SCRATCH: sc_exec::WorkerScratch<GroupScratch> = sc_exec::WorkerScratch::new();

/// Clamps ring lags to what the execution has actually produced (the scalar
/// replay/stale semantics: effective lag `min(lag, round)`), rewrites
/// zero-lag rings to plain echoes, and blanks rows aimed at faulty
/// receivers — making equal-in-effect face tables equal as cache keys.
fn canonicalize_faces(
    faces: &mut RoundFaces,
    round: u64,
    max_lag: usize,
    faulty: &[NodeId],
    n: usize,
) {
    for g in 0..faulty.len() {
        for v in 0..n {
            let idx = g * n + v;
            if faulty.binary_search(&NodeId::new(v)).is_ok() {
                faces.rows[idx] = FaceRef::Honest(0);
                continue;
            }
            if let FaceRef::Ring { lag, donor } = faces.rows[idx] {
                let eff = (lag as u64).min(round).min(max_lag as u64) as u8;
                faces.rows[idx] = if eff == 0 {
                    FaceRef::Honest(donor)
                } else {
                    FaceRef::Ring { lag: eff, donor }
                };
            }
        }
    }
}

/// Word-parallel agreement check plus per-lane [`OnlineDetector`] feed —
/// the sliced equivalent of observing
/// [`Simulation::agreed_output_now`](crate::Simulation::agreed_output_now).
fn observe_group(
    arena: &PlaneBuf,
    layout: &SlicedLayout,
    honest: &[u32],
    active: usize,
    detectors: &mut [OnlineDetector],
    agree: &mut Vec<u64>,
) {
    let lw = arena.lane_words();
    let ow = layout.out_bits as usize;
    let out0 = layout.out_base(honest[0]) as usize;
    agree.clear();
    agree.resize(lw, u64::MAX);
    for &h in &honest[1..] {
        let out_h = layout.out_base(h) as usize;
        for (k, word) in agree.iter_mut().enumerate() {
            let mut eq = u64::MAX;
            for i in 0..ow {
                eq &= !(arena.word(out_h + i, k) ^ arena.word(out0 + i, k));
            }
            *word &= eq;
        }
    }
    for (lane, detector) in detectors.iter_mut().enumerate().take(active) {
        let agreed = if (agree[lane / 64] >> (lane % 64)) & 1 == 1 {
            Some(arena.read_value(lane, out0, ow))
        } else {
            None
        };
        detector.observe(agreed);
    }
}

/// Builds one gather table: per lane, a full copy of the donor node's
/// current bundle, assembled with one OR-mask pass per distinct donor.
fn materialize_gather(
    gather: &mut PlaneBuf,
    cur: &PlaneBuf,
    layout: &SlicedLayout,
    donors: &[u32],
    masks: &mut [u64],
) {
    let lw = cur.lane_words();
    masks.iter_mut().for_each(|w| *w = 0);
    for (lane, &d) in donors.iter().enumerate() {
        masks[d as usize * lw + lane / 64] |= 1u64 << (lane % 64);
    }
    gather.clear();
    let np = layout.node_planes() as usize;
    for d in 0..layout.n as usize {
        let mask = &masks[d * lw..(d + 1) * lw];
        if mask.iter().all(|&w| w == 0) {
            continue;
        }
        let base = layout.node_base(d as u32) as usize;
        for i in 0..np {
            for (k, &m) in mask.iter().enumerate() {
                if m != 0 {
                    *gather.word_mut(i, k) |= m & cur.word(base + i, k);
                }
            }
        }
    }
}

// ---- built-in strategies -------------------------------------------------

/// Sliced twin of [`crate::adversaries::crash`]: per lane, each faulty node
/// freezes the state the scalar strategy would have sampled from that
/// lane's seed, served as one per-lane packed bundle per faulty node.
pub fn sliced_crash<P: sc_protocol::SyncProtocol>(
    protocol: &P,
    faulty: impl IntoIterator<Item = usize>,
    seeds: &[u64],
) -> SlicedCrash<P::State> {
    let ids = normalize_faults(faulty);
    let mut frozen: Vec<Vec<P::State>> = vec![Vec::with_capacity(seeds.len()); ids.len()];
    for &seed in seeds {
        // Mirror `adversaries::crash`: one SmallRng per scenario seed,
        // faulty nodes sampled in id order.
        let mut rng = SmallRng::seed_from_u64(seed);
        for (g, &id) in ids.iter().enumerate() {
            frozen[g].push(protocol.random_state(id, &mut rng));
        }
    }
    SlicedCrash {
        faulty: ids,
        frozen,
    }
}

/// Strategy produced by [`sliced_crash`].
#[derive(Clone, Debug)]
pub struct SlicedCrash<S> {
    faulty: Vec<NodeId>,
    /// `frozen[g][lane]`: the `g`-th faulty node's frozen state per lane.
    frozen: Vec<Vec<S>>,
}

impl<S: Clone> SlicedStrategy<S> for SlicedCrash<S> {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn packed_bundles(&self) -> Vec<PackedInit<S>> {
        self.faulty
            .iter()
            .zip(&self.frozen)
            .map(|(&node, states)| PackedInit::PerLane {
                node,
                states: states.clone(),
            })
            .collect()
    }

    fn faces(&self, _round: u64, n: usize, faces: &mut RoundFaces) {
        for g in 0..self.faulty.len() {
            for v in 0..n {
                faces.set_face(g, n, v, FaceRef::Packed(g as u16));
            }
        }
    }
}

/// Sliced twin of [`crate::adversaries::replay`]: faulty nodes echo honest
/// states from `delay` rounds ago (donor `honest[receiver mod |honest|]`,
/// effective lag `min(delay − 1, round)` while the window warms up).
///
/// # Panics
///
/// Panics if every node is faulty or `delay` exceeds 256 (the ring depth
/// the face encoding carries).
pub fn sliced_replay(
    n: usize,
    faulty: impl IntoIterator<Item = usize>,
    delay: usize,
) -> SlicedReplay {
    let ids = normalize_faults(faulty);
    let delay = delay.max(1);
    assert!(delay <= 256, "sliced replay supports delays up to 256");
    let honest: Vec<u32> = (0..n as u32)
        .filter(|&i| ids.binary_search(&NodeId::new(i as usize)).is_err())
        .collect();
    assert!(!honest.is_empty(), "replay needs a correct donor");
    SlicedReplay {
        faulty: ids,
        honest,
        delay,
    }
}

/// Strategy produced by [`sliced_replay`].
#[derive(Clone, Debug)]
pub struct SlicedReplay {
    faulty: Vec<NodeId>,
    honest: Vec<u32>,
    delay: usize,
}

impl<S> SlicedStrategy<S> for SlicedReplay {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn max_lag(&self) -> usize {
        self.delay - 1
    }

    fn faces(&self, _round: u64, n: usize, faces: &mut RoundFaces) {
        let lag = (self.delay - 1) as u8;
        for g in 0..self.faulty.len() {
            for v in 0..n {
                let donor = self.honest[v % self.honest.len()];
                let face = if lag == 0 {
                    FaceRef::Honest(donor)
                } else {
                    FaceRef::Ring { lag, donor }
                };
                faces.set_face(g, n, v, face);
            }
        }
    }
}

/// Sliced twin of [`crate::two_faced_periodic`]: per lane, the donor-pair
/// schedule the scalar strategy derives from that lane's seed, served
/// through two gather tables (even-parity and odd-parity receivers).
///
/// # Panics
///
/// Panics if every node is faulty (equivocation needs a donor).
pub fn sliced_two_faced_periodic(
    n: usize,
    faulty: impl IntoIterator<Item = usize>,
    seeds: &[u64],
    period: usize,
) -> SlicedTwoFacedPeriodic {
    use rand::RngCore;
    let ids = normalize_faults(faulty);
    let honest: Vec<u32> = (0..n as u32)
        .filter(|&i| ids.binary_search(&NodeId::new(i as usize)).is_err())
        .collect();
    assert!(!honest.is_empty(), "equivocation needs a correct donor");
    let period = period.max(1);
    let schedules = seeds
        .iter()
        .map(|&seed| {
            // Mirror `two_faced_periodic`: one SmallRng per scenario seed,
            // `period` salt pairs.
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..period)
                .map(|_| (rng.next_u32(), rng.next_u32()))
                .collect()
        })
        .collect();
    SlicedTwoFacedPeriodic {
        faulty: ids,
        honest,
        schedules,
    }
}

/// Strategy produced by [`sliced_two_faced_periodic`].
#[derive(Clone, Debug)]
pub struct SlicedTwoFacedPeriodic {
    faulty: Vec<NodeId>,
    honest: Vec<u32>,
    /// Per-lane donor salt schedules, indexed by `round mod period`.
    schedules: Vec<Vec<(u32, u32)>>,
}

impl<S> SlicedStrategy<S> for SlicedTwoFacedPeriodic {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn gather_tables(&self) -> usize {
        2
    }

    fn faces(&self, _round: u64, n: usize, faces: &mut RoundFaces) {
        for g in 0..self.faulty.len() {
            for v in 0..n {
                let table = if v % 2 == 0 { 0 } else { 1 };
                faces.set_face(g, n, v, FaceRef::Gather(table));
            }
        }
    }

    fn gather_donors(&self, round: u64, lanes: Range<usize>, out: &mut [Vec<u32>]) {
        let count = self.honest.len();
        for (l, lane) in lanes.enumerate() {
            let schedule = &self.schedules[lane];
            let (even, odd) = schedule[round as usize % schedule.len()];
            out[0][l] = self.honest[even as usize % count];
            out[1][l] = self.honest[odd as usize % count];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    use sc_protocol::{Op, Space};

    use crate::adversaries;
    use crate::batch::Batch;
    use crate::testing::FollowMax;
    use crate::two_faced_periodic;

    /// Hand-lowered round-program source for [`FollowMax`]: per honest
    /// receiver, `max` over the n faces then `+1 mod c`. Exercises every
    /// face source (cur/ring/packed-uniform/packed-dynamic/gather) without
    /// depending on the `sc-core` compiler.
    struct MaxModel {
        n: usize,
        c: u64,
        sb: u16,
        faulty: Vec<NodeId>,
        uniform: HashMap<u16, u64>,
        cache: HashMap<RoundFaces, Arc<Program>>,
    }

    impl MaxModel {
        fn layout_of(&self) -> SlicedLayout {
            SlicedLayout {
                n: self.n as u32,
                state_bits: self.sb as u32,
                ext_bits: 0,
                out_bits: self.sb as u32,
            }
        }
    }

    impl RoundProgramSource for MaxModel {
        fn layout(&self) -> SlicedLayout {
            self.layout_of()
        }

        fn extend_bundle(&self, _node: u32, bundle: &mut BitVec) {
            // out field = the state value itself (FollowMax::output is id).
            let v = bundle.reader().read_bits(self.sb as u32).unwrap();
            bundle.push_bits(v, self.sb as u32);
        }

        fn register_packed(&mut self, id: u16, uniform: Option<&BitVec>) {
            if let Some(bits) = uniform {
                let v = bits.reader().read_bits(self.sb as u32).unwrap();
                let prev = self.uniform.insert(id, v);
                assert!(prev.is_none_or(|p| p == v), "packed slot re-registered");
            }
        }

        fn round_program(&mut self, faces: &RoundFaces) -> Arc<Program> {
            if let Some(p) = self.cache.get(faces) {
                return p.clone();
            }
            let layout = self.layout_of();
            let sb = self.sb;
            let mut ops = Vec::new();
            let mut top = 0u32;
            let mut alloc = |w: u16| {
                let at = top;
                top += w as u32;
                at
            };
            for v in 0..self.n {
                let g_of = |j: usize| self.faulty.binary_search(&NodeId::new(j)).ok();
                if g_of(v).is_some() {
                    continue;
                }
                let mut operands = Vec::new();
                for j in 0..self.n {
                    let dst = alloc(sb);
                    let op = match g_of(j) {
                        None => Op::Load {
                            dst,
                            space: Space::Cur,
                            off: layout.node_base(j as u32),
                            w: sb,
                        },
                        Some(g) => match faces.face(g, self.n, v) {
                            FaceRef::Honest(d) => Op::Load {
                                dst,
                                space: Space::Cur,
                                off: layout.node_base(d),
                                w: sb,
                            },
                            FaceRef::Ring { lag, donor } => Op::Load {
                                dst,
                                space: Space::Ring(lag),
                                off: layout.node_base(donor),
                                w: sb,
                            },
                            FaceRef::Packed(id) => match self.uniform.get(&id) {
                                Some(&value) => Op::Const { dst, value, w: sb },
                                None => Op::Load {
                                    dst,
                                    space: Space::Packed(id),
                                    off: 0,
                                    w: sb,
                                },
                            },
                            FaceRef::Gather(t) => Op::Load {
                                dst,
                                space: Space::Gather(t),
                                off: 0,
                                w: sb,
                            },
                        },
                    };
                    ops.push(op);
                    operands.push(dst);
                }
                let mut best = operands[0];
                for &x in &operands[1..] {
                    let lt = alloc(1);
                    ops.push(Op::Lt {
                        dst: lt,
                        a: best,
                        aw: sb,
                        b: x,
                        bw: sb,
                    });
                    let m = alloc(sb);
                    ops.push(Op::Mux {
                        dst: m,
                        c: lt,
                        a: x,
                        b: best,
                        w: sb,
                    });
                    best = m;
                }
                let one = alloc(1);
                ops.push(Op::Const {
                    dst: one,
                    value: 1,
                    w: 1,
                });
                let t = alloc(sb + 1);
                ops.push(Op::Add {
                    dst: t,
                    a: best,
                    aw: sb,
                    b: one,
                    bw: 1,
                    w: sb + 1,
                });
                let modulus = alloc(sb + 1);
                ops.push(Op::Const {
                    dst: modulus,
                    value: self.c,
                    w: sb + 1,
                });
                let wrap = alloc(1);
                ops.push(Op::Eq {
                    dst: wrap,
                    a: t,
                    aw: sb + 1,
                    b: modulus,
                    bw: sb + 1,
                });
                let zero = alloc(sb);
                ops.push(Op::Const {
                    dst: zero,
                    value: 0,
                    w: sb,
                });
                let res = alloc(sb);
                ops.push(Op::Mux {
                    dst: res,
                    c: wrap,
                    a: zero,
                    b: t + 1, // low sb planes of the (sb+1)-wide sum
                    w: sb,
                });
                ops.push(Op::Store {
                    src: res,
                    off: layout.node_base(v as u32),
                    w: sb,
                });
                ops.push(Op::Store {
                    src: res,
                    off: layout.out_base(v as u32),
                    w: sb,
                });
            }
            let program = Arc::new(Program {
                ops,
                arena_planes: top,
            });
            self.cache.insert(faces.clone(), program.clone());
            program
        }
    }

    impl SlicedProtocol for FollowMax {
        fn sliced_model(&self, faulty: &[NodeId]) -> Option<Box<dyn RoundProgramSource + Send>> {
            Some(Box::new(MaxModel {
                n: self.n,
                c: self.c,
                sb: sc_protocol::bits_for(self.c) as u16,
                faulty: faulty.to_vec(),
                uniform: HashMap::new(),
                cache: HashMap::new(),
            }))
        }
    }

    /// Seed + stabilisation verdict, the cross-engine comparable part of an
    /// outcome (the fabrication/exit ledgers are engine-specific).
    fn verdicts(report: &BatchReport) -> Vec<(u64, &Result<crate::StabilizationReport, SimError>)> {
        report
            .outcomes
            .iter()
            .map(|o| (o.seed, &o.result))
            .collect()
    }

    #[test]
    fn sliced_crash_matches_scalar_batch() {
        let p = FollowMax { n: 5, c: 8 };
        let scenarios = Scenario::seeds(0..150);
        let seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
        let scalar = Batch::new(&p, 64).run(&scenarios, |s: &Scenario<u64>| {
            adversaries::crash(&p, [1, 3], s.seed)
        });
        let strategy = sliced_crash(&p, [1, 3], &seeds);
        let sliced = SlicedBatch::new(&p, 64)
            .lane_words(1)
            .run(&scenarios, &strategy)
            .expect("FollowMax lowers");
        assert_eq!(verdicts(&scalar), verdicts(&sliced));
    }

    #[test]
    fn sliced_replay_matches_scalar_batch() {
        let p = FollowMax { n: 5, c: 8 };
        let scenarios = Scenario::seeds(0..100);
        for delay in [1usize, 2, 4] {
            let scalar =
                Batch::new(&p, 64).run(&scenarios, |_| adversaries::replay::<u64>([2], delay));
            let strategy = sliced_replay(p.n, [2], delay);
            let sliced = SlicedBatch::new(&p, 64)
                .lane_words(1)
                .run(&scenarios, &strategy)
                .unwrap();
            assert_eq!(verdicts(&scalar), verdicts(&sliced), "delay {delay}");
        }
    }

    #[test]
    fn sliced_two_faced_periodic_matches_scalar_batch() {
        let p = FollowMax { n: 6, c: 8 };
        let scenarios = Scenario::seeds(0..130);
        let seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
        for period in [1usize, 3] {
            let scalar = Batch::new(&p, 64).run(&scenarios, |s: &Scenario<u64>| {
                two_faced_periodic([0, 4], s.seed, period)
            });
            let strategy = sliced_two_faced_periodic(p.n, [0, 4], &seeds, period);
            let sliced = SlicedBatch::new(&p, 64)
                .lane_words(1)
                .run(&scenarios, &strategy)
                .unwrap();
            assert_eq!(verdicts(&scalar), verdicts(&sliced), "period {period}");
        }
    }

    #[test]
    fn explicit_initial_configurations_are_honoured() {
        let p = FollowMax { n: 4, c: 8 };
        let scenarios: Vec<Scenario<u64>> = (0..70)
            .map(|seed| Scenario::with_states(seed, vec![seed % 8, (seed + 1) % 8, 3, 5]))
            .collect();
        let scalar = Batch::new(&p, 64).run(&scenarios, |s: &Scenario<u64>| {
            adversaries::crash(&p, [0], s.seed)
        });
        let seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
        let strategy = sliced_crash(&p, [0], &seeds);
        let sliced = SlicedBatch::new(&p, 64)
            .lane_words(1)
            .run(&scenarios, &strategy)
            .unwrap();
        assert_eq!(verdicts(&scalar), verdicts(&sliced));
    }

    #[test]
    fn verdicts_invariant_under_threads_and_lane_words() {
        let p = FollowMax { n: 5, c: 8 };
        let scenarios = Scenario::seeds(0..200);
        let seeds: Vec<u64> = scenarios.iter().map(|s| s.seed).collect();
        let strategy = sliced_crash(&p, [4], &seeds);
        let base = SlicedBatch::new(&p, 64)
            .threads(1)
            .lane_words(1)
            .run(&scenarios, &strategy)
            .unwrap();
        for (threads, lane_words) in [(4, 1), (1, 2), (3, 2)] {
            let other = SlicedBatch::new(&p, 64)
                .threads(threads)
                .lane_words(lane_words)
                .run(&scenarios, &strategy)
                .unwrap();
            assert_eq!(
                verdicts(&base),
                verdicts(&other),
                "threads {threads}, lane_words {lane_words}"
            );
        }
    }

    #[test]
    fn short_horizon_fails_every_lane_up_front() {
        let p = FollowMax { n: 3, c: 4 };
        let scenarios = Scenario::seeds(0..5);
        let strategy = sliced_replay(p.n, [1], 2);
        let report = SlicedBatch::new(&p, 4).run(&scenarios, &strategy).unwrap();
        for outcome in &report.outcomes {
            assert!(matches!(
                outcome.result,
                Err(SimError::HorizonTooShort {
                    horizon: 4,
                    required: 8
                })
            ));
        }
    }
}
