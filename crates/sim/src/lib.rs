//! Synchronous full-information round simulator with Byzantine faults.
//!
//! This crate is the executable counterpart of the execution model in §2 of
//! *Towards Optimal Synchronous Counting*: an infinite sequence of
//! configurations where each round every correct node broadcasts its state,
//! receives a state vector, and applies its transition function, while up to
//! `f` Byzantine nodes send **arbitrary, receiver-specific** states chosen by
//! an omniscient, adaptive, rushing adversary.
//!
//! The pieces:
//!
//! * [`Simulation`] — drives any [`sc_protocol::SyncProtocol`] from an
//!   arbitrary (adversarially sampled) initial configuration, on a
//!   zero-copy double-buffered round engine ([`RoundWorkspace`],
//!   [`FaultMask`]).
//! * [`Batch`] — sweeps of many `(seed, adversary, initial-configuration)`
//!   [`Scenario`]s through one protocol, with streaming stabilisation
//!   detection ([`OnlineDetector`]) and optional thread fan-out.
//! * [`Adversary`] — the interface Byzantine strategies implement, built on
//!   the **borrow-based message plane**: strategies return [`MessageSource`]
//!   leases (echo a broadcast state, or name a slot of the engine's
//!   [`StatePool`]) instead of owned states, so equivocation and replay
//!   attacks deliver without per-receiver clones; the [`adversaries`] module
//!   ships a library of generic strategies (crash, fresh-random, two-faced
//!   equivocation, replay).
//! * [`StabilizationReport`] / [`OutputTrace`] — exact detection of the
//!   stabilisation time of a counter execution: the earliest round after
//!   which all correct outputs agree *and* increment modulo `c` every round.
//! * [`broadcast_metrics`] — message/bit accounting in the broadcast model
//!   (each node sends its `S(A)`-bit state over all `n−1` links per round).
//!
//! # Example
//!
//! ```
//! use rand::RngCore;
//! use sc_protocol::{Counter, MessageView, NodeId, StepContext, SyncProtocol};
//! use sc_sim::{adversaries, Simulation};
//!
//! // A toy 0-resilient 4-counter: follow the minimum received value + 1.
//! struct FollowMin;
//! impl SyncProtocol for FollowMin {
//!     type State = u64;
//!     fn n(&self) -> usize { 3 }
//!     fn step(&self, _: NodeId, view: &MessageView<'_, u64>, _: &mut StepContext<'_>) -> u64 {
//!         (view.iter().min().copied().unwrap() + 1) % 4
//!     }
//!     fn output(&self, _: NodeId, s: &u64) -> u64 { *s }
//!     fn random_state(&self, _: NodeId, rng: &mut dyn RngCore) -> u64 { rng.next_u64() % 4 }
//! }
//!
//! let p = FollowMin;
//! let mut sim = Simulation::new(&p, adversaries::none(), 1);
//! sim.run(5);
//! assert_eq!(sim.round(), 5);
//! // All correct (= all) nodes have converged to the minimum chain.
//! let outs = sim.outputs_now();
//! assert!(outs.iter().all(|&o| o == outs[0]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advanced;
pub mod adversaries;
mod adversary;
mod batch;
mod early;
mod error;
mod metrics;
mod obs;
mod seeded;
mod simulation;
mod sliced;
mod stabilization;
#[doc(hidden)]
pub mod testing;
mod workspace;

pub use advanced::{greedy, sleeper, Greedy, Sleeper};
pub use adversary::{Adversary, AdversarySnapshot, RoundContext, SnapshotSupport};
pub use batch::{Batch, BatchReport, BatchSummary, Scenario, ScenarioOutcome};
pub use early::ExitReason;
pub use error::SimError;
pub use metrics::{broadcast_metrics, BroadcastMetrics};
pub use obs::SimObs;
pub use seeded::{random_periodic, two_faced_periodic, RandomPeriodic, TwoFacedPeriodic};
pub use simulation::{required_confirmation, Simulation};
pub use sliced::{
    sliced_crash, sliced_replay, sliced_two_faced_periodic, PackedInit, RoundProgramSource,
    SlicedBatch, SlicedCrash, SlicedProtocol, SlicedReplay, SlicedStrategy, SlicedTwoFacedPeriodic,
};
pub use stabilization::{
    detect_stabilization, first_stable_window, violation_rate, OnlineDetector, OutputTrace,
    StabilizationReport,
};
pub use workspace::{FaultMask, RoundWorkspace, StatePool};

// The lease type of the borrowed message plane lives in `sc-protocol` (the
// view resolves it); re-exported here because adversaries mint the tokens.
pub use sc_protocol::MessageSource;

// The early-decision marker trait lives in `sc-protocol` next to the codec
// it defaults to; re-exported here because the engine consumes it.
pub use sc_protocol::Fingerprint;
