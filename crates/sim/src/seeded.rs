//! Derandomised variants of the RNG-driven strategies: the same qualitative
//! attacks, replayed from a fixed periodic schedule so they **snapshot**.
//!
//! [`adversaries::two_faced`](crate::adversaries::two_faced) and
//! [`adversaries::random`](crate::adversaries::random) draw from a live RNG
//! every round, so their internal state is not capturable and every sweep
//! under them opts out of the early-decision exit
//! ([`SnapshotSupport::Opaque`]). But the *randomness* is incidental — what
//! the attacks need is variety, not unpredictability. The variants here
//! pre-commit to a seed-derived **periodic schedule** (donor choices for
//! the equivocation attack, a pinned state palette for the noise attack):
//! behaviour in round `t` depends on `t` only through `t mod period`, the
//! schedule position is one snapshot word (folded like the replay ring's
//! contents), and the strategies report
//! [`SnapshotSupport::Deterministic`] — extending cycle-based early exits
//! to the equivocation regimes.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use sc_protocol::{MessageSource, NodeId, SyncProtocol};

use crate::adversaries::{donor_id, normalize_faults, FacePair};
use crate::adversary::{Adversary, AdversarySnapshot, RoundContext, SnapshotSupport};
use crate::workspace::StatePool;

/// Two-faced equivocation with a **periodic, seed-derived donor schedule**:
/// round `t` echoes the donor pair of schedule slot `t mod period`.
///
/// Qualitatively the same attack as
/// [`adversaries::two_faced`](crate::adversaries::two_faced) — two
/// plausible honest "camps" that majority votes cannot reconcile — but
/// fully deterministic, so sweeps under it keep the early-decision exit.
///
/// # Panics
///
/// The produced adversary panics if no node is correct (equivocation needs
/// a donor).
pub fn two_faced_periodic(
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
    period: usize,
) -> TwoFacedPeriodic {
    let period = period.max(1);
    let mut rng = SmallRng::seed_from_u64(seed);
    let schedule = (0..period)
        .map(|_| (rng.next_u32(), rng.next_u32()))
        .collect();
    TwoFacedPeriodic {
        faulty: normalize_faults(faulty),
        schedule,
        faces: None,
    }
}

/// Adversary produced by [`two_faced_periodic`].
#[derive(Clone, Debug)]
pub struct TwoFacedPeriodic {
    faulty: Vec<NodeId>,
    /// Seed-derived donor salt pairs, indexed by `round mod period`.
    schedule: Vec<(u32, u32)>,
    faces: Option<FacePair>,
}

impl<S> Adversary<S> for TwoFacedPeriodic {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn begin_round(&mut self, ctx: &RoundContext<'_, S>, _pool: &mut StatePool<S>) {
        let (even, odd) = self.schedule[ctx.round as usize % self.schedule.len()];
        self.faces = Some(FacePair {
            even: MessageSource::Broadcast(donor_id(ctx, even as usize)),
            odd: MessageSource::Broadcast(donor_id(ctx, odd as usize)),
        });
    }

    fn message(
        &mut self,
        _from: NodeId,
        to: NodeId,
        _ctx: &RoundContext<'_, S>,
        _pool: &mut StatePool<S>,
    ) -> MessageSource {
        self.faces
            .as_ref()
            .expect("begin_round not called")
            .for_receiver(to)
    }

    fn snapshot(&self, round: u64, out: &mut AdversarySnapshot<'_, S>) -> SnapshotSupport {
        // The schedule is execution-constant; the only evolving state is
        // the position in it, which round `t` determines as `t mod period`
        // — and the position at `t` determines every future position.
        out.word(round % self.schedule.len() as u64);
        SnapshotSupport::Deterministic
    }
}

/// Fresh-noise attack with a **periodic, seed-derived state palette**:
/// round `t` sends palette entry `(t mod period, sender, receiver)`.
///
/// Qualitatively the same attack as
/// [`adversaries::random`](crate::adversaries::random) — well-formed but
/// arbitrary states per (sender, receiver, round) — but the palette is
/// sampled once at construction and **pinned** into the execution's pool at
/// the first round (materialised exactly once, like a crash adversary's
/// frozen states), so the strategy is deterministic and snapshot-capable.
pub fn random_periodic<P: SyncProtocol>(
    protocol: &P,
    faulty: impl IntoIterator<Item = usize>,
    seed: u64,
    period: usize,
) -> RandomPeriodic<P::State> {
    let faulty = normalize_faults(faulty);
    let period = period.max(1);
    let n = protocol.n();
    let mut rng = SmallRng::seed_from_u64(seed);
    // Palette order: slot-major, then sender, then receiver — the lookup
    // in `message` mirrors it.
    let palette = (0..period)
        .flat_map(|_| {
            faulty
                .iter()
                .flat_map(|&from| (0..n).map(move |_to| from))
                .collect::<Vec<_>>()
        })
        .map(|from| protocol.random_state(from, &mut rng))
        .collect();
    RandomPeriodic {
        faulty,
        n,
        period,
        palette,
        leases: Vec::new(),
    }
}

/// Adversary produced by [`random_periodic`].
///
/// Deliberately not `Clone` (like `Crash`): after the first round the
/// palette has been drained into one execution's pool, and a copy would
/// hand out leases against a pool that never issued them.
#[derive(Debug)]
pub struct RandomPeriodic<S> {
    faulty: Vec<NodeId>,
    n: usize,
    period: usize,
    /// Sampled states, `[slot][sender][receiver]` flattened; drained into
    /// the pool at the first `begin_round`.
    palette: Vec<S>,
    /// Pinned leases, parallel to the palette, once issued.
    leases: Vec<MessageSource>,
}

impl<S: Clone + std::fmt::Debug> Adversary<S> for RandomPeriodic<S> {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn begin_round(&mut self, _ctx: &RoundContext<'_, S>, pool: &mut StatePool<S>) {
        if !self.palette.is_empty() {
            self.leases = self.palette.drain(..).map(|s| pool.pin(s)).collect();
        }
    }

    fn message(
        &mut self,
        from: NodeId,
        to: NodeId,
        ctx: &RoundContext<'_, S>,
        _pool: &mut StatePool<S>,
    ) -> MessageSource {
        let g = self
            .faulty
            .binary_search(&from)
            .expect("message requested from a non-faulty node");
        let slot = ctx.round as usize % self.period;
        self.leases[(slot * self.faulty.len() + g) * self.n + to.index()]
    }

    fn snapshot(&self, round: u64, out: &mut AdversarySnapshot<'_, S>) -> SnapshotSupport {
        // Before the first round the palette is still queued (written in
        // full, like the crash adversary's frozen states); after, it lives
        // in the immutable pinned pool and the schedule position is the
        // whole evolving state.
        out.word(round % self.period as u64);
        out.word(self.palette.len() as u64);
        for state in &self.palette {
            out.state(
                self.faulty.first().copied().unwrap_or(NodeId::new(0)),
                state,
            );
        }
        SnapshotSupport::Deterministic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::{FollowMax, TestRound};
    use crate::Simulation;

    #[test]
    fn periodic_two_faced_repeats_its_schedule() {
        let mut adv = two_faced_periodic([3], 5, 4);
        let round = TestRound::new(vec![10u64, 20, 30, 40], [3]);
        let mut pool = StatePool::new();
        // The faces of round t and round t + period are identical.
        let mut faces = Vec::new();
        for t in 0..8u64 {
            <TwoFacedPeriodic as Adversary<u64>>::begin_round(&mut adv, &round.ctx(t), &mut pool);
            let even = adv.message(NodeId::new(3), NodeId::new(0), &round.ctx(t), &mut pool);
            let odd = adv.message(NodeId::new(3), NodeId::new(1), &round.ctx(t), &mut pool);
            faces.push((even, odd));
        }
        for t in 0..4 {
            assert_eq!(faces[t], faces[t + 4], "slot {t} must repeat");
        }
        assert_eq!(pool.fabricated_total(), 0, "pure echo attack");
    }

    #[test]
    fn periodic_random_pins_its_palette_once() {
        let p = FollowMax { n: 4, c: 8 };
        let mut adv = random_periodic(&p, [1], 9, 2);
        let round = TestRound::new(vec![0u64; 4], [1]);
        let mut pool = StatePool::new();
        adv.begin_round(&round.ctx(0), &mut pool);
        // Palette = period × f × n = 2 × 1 × 4 pinned states, no
        // fabrications ever.
        assert_eq!(pool.pinned().len(), 8);
        assert_eq!(pool.fabricated_total(), 0);
        let r0 = adv.message(NodeId::new(1), NodeId::new(2), &round.ctx(0), &mut pool);
        let r2 = adv.message(NodeId::new(1), NodeId::new(2), &round.ctx(2), &mut pool);
        let r1 = adv.message(NodeId::new(1), NodeId::new(2), &round.ctx(1), &mut pool);
        assert_eq!(r0, r2, "period 2: rounds 0 and 2 share the lease");
        assert_ne!(r0, r1, "different slots use different palette entries");
    }

    #[test]
    fn periodic_variants_are_deterministic_replays() {
        let p = FollowMax { n: 5, c: 16 };
        let states: Vec<u64> = vec![7, 3, 11, 0, 5];
        let mut a = Simulation::with_states(&p, two_faced_periodic([2], 5, 8), states.clone(), 1);
        let mut b = Simulation::with_states(&p, two_faced_periodic([2], 5, 8), states, 1);
        for round in 0..40 {
            a.step();
            b.step();
            assert_eq!(a.states(), b.states(), "divergence at round {round}");
        }
    }

    #[test]
    fn periodic_regimes_take_the_early_exit() {
        use crate::ExitReason;
        // The whole point of derandomisation: under the periodic variants
        // the cycle detector arms and fires, with verdicts identical to the
        // full-horizon run — while the RNG-driven originals stay opaque.
        let p = FollowMax { n: 5, c: 4 };
        let horizon = 4096u64;
        for faulty in [vec![4usize], vec![2]] {
            let mut early = Simulation::new(&p, two_faced_periodic(faulty.clone(), 3, 4), 11);
            let (verdict, exit) = early.run_until_stable_early(horizon);
            assert!(
                matches!(exit, ExitReason::Cycle { .. }),
                "two-faced-periodic must cycle, got {exit:?}"
            );
            let mut full = Simulation::new(&p, two_faced_periodic(faulty.clone(), 3, 4), 11);
            assert_eq!(verdict, full.run_until_stable(horizon), "early ≡ full");

            let mut early = Simulation::new(&p, random_periodic(&p, faulty.clone(), 3, 4), 11);
            let (verdict, exit) = early.run_until_stable_early(horizon);
            assert!(
                matches!(exit, ExitReason::Cycle { .. }),
                "random-periodic must cycle, got {exit:?}"
            );
            let mut full = Simulation::new(&p, random_periodic(&p, faulty, 3, 4), 11);
            assert_eq!(verdict, full.run_until_stable(horizon), "early ≡ full");
        }

        // The RNG-driven original opts out (regression guard for the
        // contrast this module exists to fix).
        let mut opaque = Simulation::new(&p, crate::adversaries::two_faced(&p, [2], 3), 11);
        let (_, exit) = opaque.run_until_stable_early(256);
        assert_eq!(exit, ExitReason::Opaque);
    }
}
