//! Sound early-decision machinery: cycle/fixpoint detection on the joint
//! (states, adversary) configuration, plus the algebraic verdict replay.
//!
//! With a deterministic protocol ([`Fingerprint::deterministic_transition`])
//! and a snapshot-capable adversary
//! ([`Adversary::snapshot`](crate::Adversary::snapshot)), one round of the
//! engine is a pure function on a finite configuration space. An execution
//! is therefore a ρ-shaped walk: a transient prefix followed by a cycle.
//! Once the engine observes the same configuration twice — **bit-exact**,
//! compared on the full codec encoding, never on a hash alone — every
//! remaining round of the sweep horizon is determined, and the
//! stabilisation verdict can be computed arithmetically from the observed
//! output rows ([`periodic_verdict`]) instead of executing them. This is
//! the closed-execution argument `sc-verifier` uses to decide small
//! instances exhaustively, applied to a single execution.
//!
//! The detector is a **hash-map / Brent hybrid**: configurations are
//! interned into a flat word arena behind a 64-bit hash index until a
//! memory cap is reached, after which the detector degrades to Brent's
//! teleporting-anchor scheme — O(1) memory, still guaranteed to terminate
//! on any eventually-periodic execution, just later. Either way a reported
//! recurrence is verified word-for-word, so the verdict is sound under hash
//! collisions; a collision can only *delay* detection.
//!
//! [`Fingerprint::deterministic_transition`]: sc_protocol::Fingerprint::deterministic_transition

use std::collections::HashMap;

use sc_protocol::BitVec;

use crate::stabilization::{good_transition, StabilizationReport};
use crate::SimError;

/// How a `run_until_stable`-style sweep finished executing rounds.
///
/// [`Batch`](crate::Batch) records one per scenario
/// ([`ScenarioOutcome::exit_reason`](crate::ScenarioOutcome)) — the ledger
/// early-decision sweeps are benchmarked on, next to `fabricated_states`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ExitReason {
    /// Every horizon round was executed (no recurrence inside the horizon,
    /// or the run was rejected before it started).
    FullHorizon,
    /// The protocol's transition or the adversary's strategy is RNG-driven
    /// (opted out of fingerprinting), so the engine never armed the cycle
    /// detector and executed the full horizon.
    Opaque,
    /// The configuration after round `decided_at` matched the configuration
    /// after round `start` bit-exactly: rounds `start..decided_at` are a
    /// proven cycle of the given `length`, and the remaining
    /// `horizon − decided_at` rounds were replayed algebraically.
    Cycle {
        /// First round of the proven cycle.
        start: u64,
        /// Cycle length in rounds.
        length: u64,
        /// Round at which the recurrence closed and execution stopped.
        decided_at: u64,
    },
}

impl ExitReason {
    /// Rounds of a `horizon`-round sweep that were *not* executed thanks to
    /// the early exit (0 for full-horizon and opaque runs).
    pub fn rounds_saved(&self, horizon: u64) -> u64 {
        match self {
            ExitReason::Cycle { decided_at, .. } => horizon.saturating_sub(*decided_at),
            _ => 0,
        }
    }
}

/// Result of feeding one configuration to the detector.
#[derive(Debug)]
pub(crate) enum Feed {
    /// Stored; no recurrence yet.
    Recorded,
    /// Recurrence: the configuration equals the one recorded after the
    /// returned round (bit-exact).
    Cycle(u64),
    /// The adversary declined to be snapshotted; detection is off for good.
    Opaque,
}

/// Default cap on interned configuration words before the detector degrades
/// from the hash-map phase to Brent's O(1)-memory anchor scheme: 2²¹ words
/// = 16 MiB per executing scenario.
const DEFAULT_CAP_WORDS: usize = 1 << 21;

/// FNV-1a over the word representation, seeded with the bit length so
/// encodings of different lengths never alias trivially.
fn hash_config(len_bits: usize, words: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (len_bits as u64);
    for &w in words {
        h ^= w;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The bounded cycle detector: interning hash table first, Brent anchor
/// after the memory cap.
#[derive(Debug)]
pub(crate) struct CycleDetector {
    /// Reusable encoding scratch, lent out via [`CycleDetector::begin`].
    scratch: BitVec,
    /// Configurations committed so far (the next commit's round index).
    fed: u64,
    cap_words: usize,
    phase: Phase,
}

#[derive(Debug)]
enum Phase {
    Table {
        /// hash → *storage slot* (index into the parallel vectors below).
        /// On a hash collision with a *different* configuration the
        /// newcomer is not stored — sound (matches are verified), merely
        /// delays detection — so slots are NOT round numbers.
        seen: HashMap<u64, u32>,
        /// Round each stored slot was committed at.
        rounds: Vec<u64>,
        /// Word-arena start offset per stored slot.
        starts: Vec<u32>,
        /// Bit length per stored slot.
        lens: Vec<u32>,
        /// Flat arena of all stored configuration words.
        words: Vec<u64>,
    },
    Brent {
        anchor_round: u64,
        anchor_len: u32,
        anchor: Vec<u64>,
        /// Rounds the anchor stays put before teleporting to the current
        /// configuration (doubles on every teleport).
        power: u64,
    },
}

impl CycleDetector {
    pub(crate) fn new() -> Self {
        Self::with_cap_words(DEFAULT_CAP_WORDS)
    }

    pub(crate) fn with_cap_words(cap_words: usize) -> Self {
        CycleDetector {
            scratch: BitVec::new(),
            fed: 0,
            cap_words: cap_words.max(1),
            phase: Phase::Table {
                seen: HashMap::new(),
                rounds: Vec::new(),
                starts: Vec::new(),
                lens: Vec::new(),
                words: Vec::new(),
            },
        }
    }

    /// Lends out the (cleared) encoding scratch for the next configuration.
    pub(crate) fn begin(&mut self) -> BitVec {
        let mut bits = std::mem::take(&mut self.scratch);
        bits.clear();
        bits
    }

    /// Returns the scratch without committing (the opaque opt-out path).
    pub(crate) fn discard(&mut self, bits: BitVec) {
        self.scratch = bits;
    }

    /// Commits the configuration encoded in `bits` as the next round's and
    /// reports a verified recurrence, if any.
    pub(crate) fn commit(&mut self, bits: BitVec) -> Feed {
        let round = self.fed;
        self.fed += 1;
        let result = match &mut self.phase {
            Phase::Table {
                seen,
                rounds,
                starts,
                lens,
                words,
            } => {
                let h = hash_config(bits.len(), bits.words());
                match seen.get(&h) {
                    Some(&slot) => {
                        let slot = slot as usize;
                        let start = starts[slot] as usize;
                        let end = start + (lens[slot] as usize).div_ceil(64);
                        if lens[slot] as usize == bits.len() && words[start..end] == *bits.words() {
                            Some(Feed::Cycle(rounds[slot]))
                        } else {
                            // Verified collision: skip storing this round.
                            Some(Feed::Recorded)
                        }
                    }
                    None => {
                        if words.len() + bits.words().len() <= self.cap_words {
                            seen.insert(h, starts.len() as u32);
                            rounds.push(round);
                            starts.push(words.len() as u32);
                            lens.push(bits.len() as u32);
                            words.extend_from_slice(bits.words());
                            Some(Feed::Recorded)
                        } else {
                            None // fall through: degrade to Brent below
                        }
                    }
                }
            }
            Phase::Brent {
                anchor_round,
                anchor_len,
                anchor,
                power,
            } => {
                if *anchor_len as usize == bits.len() && anchor[..] == *bits.words() {
                    Some(Feed::Cycle(*anchor_round))
                } else {
                    if round - *anchor_round >= *power {
                        *anchor_round = round;
                        *anchor_len = bits.len() as u32;
                        anchor.clear();
                        anchor.extend_from_slice(bits.words());
                        *power *= 2;
                    }
                    Some(Feed::Recorded)
                }
            }
        };
        let result = result.unwrap_or_else(|| {
            // Memory cap hit: drop the table, anchor Brent on this round.
            self.phase = Phase::Brent {
                anchor_round: round,
                anchor_len: bits.len() as u32,
                anchor: bits.words().to_vec(),
                power: 1,
            };
            Feed::Recorded
        });
        self.scratch = bits;
        result
    }
}

/// Computes the exact `horizon`-round stabilisation verdict of an execution
/// whose configuration after round `outputs.len() − 1` equals the
/// configuration after round `cycle_start`.
///
/// `outputs[r]` is the agreed output at round `r` (`None` = disagreement);
/// rows `cycle_start..` repeat forever with period
/// `L = outputs.len() − 1 − cycle_start`, so the goodness of every
/// transition `j ≥ cycle_start` equals the observed goodness at
/// `cycle_start + (j − cycle_start) mod L`. The verdict is **bitwise
/// identical** to what [`OnlineDetector`](crate::OnlineDetector) would
/// report after executing all `horizon` rounds — the early-decision test
/// suites enforce this.
pub(crate) fn periodic_verdict(
    outputs: &[Option<u64>],
    cycle_start: u64,
    horizon: u64,
    modulus: u64,
    min_confirm: u64,
) -> Result<StabilizationReport, SimError> {
    let decided_at = outputs.len() as u64 - 1;
    let length = decided_at - cycle_start;
    debug_assert!(length >= 1, "a cycle has at least one round");
    debug_assert!(decided_at <= horizon);
    let good = |j: u64| good_transition(outputs[j as usize], outputs[j as usize + 1], modulus);

    // Last violated transition among the horizon's `0..horizon`: a bad
    // in-cycle transition at offset `o` recurs at `cycle_start + o + k·L`
    // for every k, so its last occurrence below the horizon dominates every
    // pre-cycle violation.
    let mut last_violation: Option<u64> = None;
    for o in 0..length {
        let j = cycle_start + o;
        if !good(j) {
            let j_last = j + length * ((horizon - 1 - j) / length);
            last_violation = last_violation.max(Some(j_last));
        }
    }
    if last_violation.is_none() {
        last_violation = (0..cycle_start).rev().find(|&j| !good(j));
    }

    let stabilization_round = last_violation.map_or(0, |j| j + 1);
    let confirmed = horizon - stabilization_round;
    if confirmed < min_confirm {
        return Err(SimError::NotStabilized {
            rounds: horizon,
            last_violation,
            confirmed,
            required: min_confirm,
        });
    }
    Ok(StabilizationReport {
        stabilization_round,
        rounds_recorded: horizon,
        confirmed_rounds: confirmed,
        modulus,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stabilization::OnlineDetector;

    /// Replays the truncated observation plus the algebraic extension and
    /// compares against an `OnlineDetector` fed the fully unrolled rows.
    fn check_against_unrolled(
        observed: &[Option<u64>],
        cycle_start: u64,
        horizon: u64,
        modulus: u64,
        confirm: u64,
    ) {
        let decided_at = observed.len() as u64 - 1;
        let length = decided_at - cycle_start;
        let mut online = OnlineDetector::new(modulus);
        for r in 0..=horizon {
            let row = if r <= decided_at {
                observed[r as usize]
            } else {
                observed[(cycle_start + (r - cycle_start) % length) as usize]
            };
            online.observe(row);
        }
        assert_eq!(
            periodic_verdict(observed, cycle_start, horizon, modulus, confirm),
            online.finish(confirm),
            "observed {observed:?} cycle_start {cycle_start} horizon {horizon}"
        );
    }

    #[test]
    fn verdict_replay_matches_unrolled_detection_exhaustively() {
        // All output patterns of 5 rows over {0, 1, 2=disagree} mod 2, all
        // cycle starts, several horizons: the algebra must match the
        // detector on every single one. A real recurrence implies the
        // closing row equals the cycle-start row (equal configurations have
        // equal outputs), so the generator enforces exactly that.
        for pattern in 0u32..3u32.pow(5) {
            let mut rows: Vec<Option<u64>> = (0..5)
                .map(|i| {
                    let digit = pattern / 3u32.pow(i) % 3;
                    (digit < 2).then_some(u64::from(digit))
                })
                .collect();
            for cycle_start in 0..4u64 {
                rows[4] = rows[cycle_start as usize];
                for horizon in [4u64, 9, 40] {
                    check_against_unrolled(&rows, cycle_start, horizon, 2, 2);
                    check_against_unrolled(&rows, cycle_start, horizon, 2, 8);
                }
            }
        }
    }

    #[test]
    fn fixpoint_of_perfect_counting_stabilises_at_zero() {
        // 0,1,0 with cycle_start 0: counting mod 2 forever.
        let rows = vec![Some(0), Some(1), Some(0)];
        let report = periodic_verdict(&rows, 0, 1_000_000, 2, 8).unwrap();
        assert_eq!(report.stabilization_round, 0);
        assert_eq!(report.rounds_recorded, 1_000_000);
        assert_eq!(report.confirmed_rounds, 1_000_000);
    }

    #[test]
    fn recurring_violation_is_projected_to_the_horizon_tail() {
        // Cycle 1,1 (frozen): every transition in the cycle is bad, so the
        // last violation is the horizon's final transition.
        let rows = vec![Some(0), Some(1), Some(1)];
        let err = periodic_verdict(&rows, 1, 100, 2, 4).unwrap_err();
        match err {
            SimError::NotStabilized {
                rounds,
                last_violation,
                confirmed,
                ..
            } => {
                assert_eq!(rounds, 100);
                assert_eq!(last_violation, Some(99));
                assert_eq!(confirmed, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn detector_finds_recurrence_in_table_phase() {
        let mut det = CycleDetector::new();
        let configs = [7u64, 8, 9, 8];
        let mut hits = Vec::new();
        for c in configs {
            let mut bits = det.begin();
            bits.push_bits(c, 64);
            if let Feed::Cycle(at) = det.commit(bits) {
                hits.push((det.fed - 1, at));
            }
        }
        assert_eq!(hits, vec![(3, 1)], "config 8 recurs at round 3 from 1");
    }

    #[test]
    fn detector_degrades_to_brent_and_still_terminates() {
        // Cap of 4 words: the table fills after 4 one-word configs and the
        // detector anchors. The sequence is 0,1,2,…,9,(6,7,8,9)*: Brent must
        // still catch the cycle, possibly a few laps later.
        let mut det = CycleDetector::with_cap_words(4);
        let mut caught = None;
        for r in 0..200u64 {
            let value = if r < 10 { r } else { 6 + (r - 6) % 4 };
            let mut bits = det.begin();
            bits.push_bits(value, 64);
            if let Feed::Cycle(at) = det.commit(bits) {
                caught = Some((at, r));
                break;
            }
        }
        let (at, r) = caught.expect("Brent phase must find the cycle");
        assert!(r > at);
        assert_eq!((r - at) % 4, 0, "distance must be a multiple of the period");
    }

    #[test]
    fn different_lengths_never_match() {
        let mut det = CycleDetector::new();
        let mut bits = det.begin();
        bits.push_bits(5, 32);
        assert!(matches!(det.commit(bits), Feed::Recorded));
        let mut bits = det.begin();
        bits.push_bits(5, 33);
        assert!(matches!(det.commit(bits), Feed::Recorded));
    }

    #[test]
    fn rounds_saved_accounting() {
        let cycle = ExitReason::Cycle {
            start: 10,
            length: 5,
            decided_at: 15,
        };
        assert_eq!(cycle.rounds_saved(100), 85);
        assert_eq!(ExitReason::FullHorizon.rounds_saved(100), 0);
        assert_eq!(ExitReason::Opaque.rounds_saved(100), 0);
    }
}
