//! Sweep-engine metering: scenario throughput, exit-reason tallies and
//! stabilisation-round histograms, wired through `sc-obs` when the
//! `trace` cargo feature is on and compiled to inlined no-ops when off.
//!
//! Both variants expose the same [`SimObs`] surface, so [`crate::Batch`]
//! and [`crate::SlicedBatch`] hook it unconditionally via
//! [`Batch::observed`](crate::Batch::observed) — a detached (default)
//! bundle costs one `None` check per scenario, a missing feature costs
//! nothing at all. Metering is observe-only: it reads each verdict after
//! the engine produced it, so reports stay bitwise identical.

#[cfg(feature = "trace")]
pub use real::SimObs;

#[cfg(not(feature = "trace"))]
pub use noop::SimObs;

#[cfg(feature = "trace")]
mod real {
    use std::fmt;
    use std::sync::Arc;
    use std::time::Instant;

    use sc_obs::{CounterCell, LogHistogram, MetricsSnapshot, Registry};

    use crate::batch::ScenarioOutcome;
    use crate::early::ExitReason;

    struct Inner {
        registry: Registry,
        scenarios: Arc<CounterCell>,
        stabilized: Arc<CounterCell>,
        full_horizon: Arc<CounterCell>,
        cycle_exits: Arc<CounterCell>,
        opaque_exits: Arc<CounterCell>,
        stab_round: Arc<LogHistogram>,
        started: Instant,
    }

    /// Sweep metering bundle (`trace` feature on). Default instances are
    /// *detached* — every call is a `None` check — and
    /// [`SimObs::recording`] attaches live counters shared by every sweep
    /// observing the same bundle.
    #[derive(Clone, Default)]
    pub struct SimObs {
        inner: Option<Arc<Inner>>,
    }

    impl SimObs {
        /// An attached bundle with live counters.
        pub fn recording() -> SimObs {
            let registry = Registry::new();
            SimObs {
                inner: Some(Arc::new(Inner {
                    scenarios: registry.counter("sim.scenarios"),
                    stabilized: registry.counter("sim.stabilized"),
                    full_horizon: registry.counter("sim.exit.full_horizon"),
                    cycle_exits: registry.counter("sim.exit.cycle"),
                    opaque_exits: registry.counter("sim.exit.opaque"),
                    stab_round: registry.histogram("sim.stabilization_round"),
                    registry,
                    started: Instant::now(),
                })),
            }
        }

        /// Whether this bundle records anything.
        pub fn is_recording(&self) -> bool {
            self.inner.is_some()
        }

        /// Folds one finished scenario into the meters.
        #[inline]
        pub(crate) fn scenario_done(&self, outcome: &ScenarioOutcome) {
            let Some(inner) = &self.inner else {
                return;
            };
            inner.scenarios.inc();
            match outcome.exit_reason {
                ExitReason::FullHorizon => inner.full_horizon.inc(),
                ExitReason::Opaque => inner.opaque_exits.inc(),
                ExitReason::Cycle { .. } => inner.cycle_exits.inc(),
            }
            if let Ok(report) = &outcome.result {
                inner.stabilized.inc();
                inner.stab_round.record(report.stabilization_round);
            }
        }

        /// Scenarios metered so far.
        pub fn scenarios_done(&self) -> u64 {
            self.inner.as_ref().map_or(0, |i| i.scenarios.get())
        }

        /// Metered scenario throughput since the bundle was created.
        pub fn scenarios_per_sec(&self) -> f64 {
            self.inner.as_ref().map_or(0.0, |i| {
                let secs = i.started.elapsed().as_secs_f64();
                if secs > 0.0 {
                    i.scenarios.get() as f64 / secs
                } else {
                    0.0
                }
            })
        }

        /// Snapshot of the meters, with the throughput folded in as the
        /// `sim.scenarios_per_sec` gauge.
        pub fn metrics(&self) -> Option<MetricsSnapshot> {
            self.inner.as_ref().map(|i| {
                i.registry
                    .gauge("sim.scenarios_per_sec")
                    .set(self.scenarios_per_sec() as i64);
                i.registry.snapshot()
            })
        }
    }

    impl fmt::Debug for SimObs {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match &self.inner {
                Some(i) => write!(f, "SimObs(recording, {} scenarios)", i.scenarios.get()),
                None => write!(f, "SimObs(detached)"),
            }
        }
    }
}

#[cfg(not(feature = "trace"))]
mod noop {
    use crate::batch::ScenarioOutcome;

    /// Sweep metering bundle (`trace` feature off): a ZST whose every
    /// method is an inlined empty body.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct SimObs;

    impl SimObs {
        /// A no-op bundle (the `trace` feature is off).
        pub fn recording() -> SimObs {
            SimObs
        }

        /// Always `false` without the `trace` feature.
        #[inline(always)]
        pub fn is_recording(&self) -> bool {
            false
        }

        /// No-op.
        #[inline(always)]
        pub(crate) fn scenario_done(&self, _outcome: &ScenarioOutcome) {}

        /// Always 0 without the `trace` feature.
        #[inline(always)]
        pub fn scenarios_done(&self) -> u64 {
            0
        }

        /// Always 0 without the `trace` feature.
        #[inline(always)]
        pub fn scenarios_per_sec(&self) -> f64 {
            0.0
        }
    }
}
