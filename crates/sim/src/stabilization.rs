//! Exact stabilisation detection on output traces.
//!
//! An execution of a synchronous `c`-counter *stabilises in time `t`* (§2)
//! when from round `t` on, all correct nodes output the same value and that
//! value increments by one modulo `c` every round. Given a recorded output
//! trace this module computes the exact earliest such `t` for the observed
//! execution, and demands a caller-chosen violation-free suffix before
//! declaring success (silent tails are not evidence of counting).

use sc_protocol::{inc_mod, NodeId};

use crate::SimError;

/// The one definition of a *good* transition, shared by every detector in
/// the crate (trace-based, streaming, and the early-decision verdict
/// replay): both rounds agree and the value increments modulo `modulus`.
#[inline]
pub(crate) fn good_transition(prev: Option<u64>, next: Option<u64>, modulus: u64) -> bool {
    match (prev, next) {
        (Some(now), Some(next)) => next == inc_mod(now % modulus, modulus),
        _ => false,
    }
}

/// Recorded outputs of the correct nodes, one row per round.
///
/// Row `r` holds the outputs computed from the configuration at the
/// *beginning* of round `r`; row 0 is the (arbitrary) initial configuration.
///
/// # Example
///
/// ```
/// use sc_protocol::NodeId;
/// use sc_sim::{detect_stabilization, OutputTrace};
///
/// let mut trace = OutputTrace::new(vec![NodeId::new(0), NodeId::new(1)]);
/// trace.push_row(vec![2, 0]); // disagreement: still stabilising
/// for r in 0..6 {
///     trace.push_row(vec![r % 3, r % 3]); // counting mod 3 in agreement
/// }
/// let report = detect_stabilization(&trace, 3, 4)?;
/// assert_eq!(report.stabilization_round, 1);
/// # Ok::<(), sc_sim::SimError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OutputTrace {
    honest: Vec<NodeId>,
    rows: Vec<Vec<u64>>,
}

impl OutputTrace {
    /// Creates an empty trace for the given correct nodes.
    ///
    /// # Panics
    ///
    /// Panics if `honest` is empty — a trace of no nodes is meaningless.
    pub fn new(honest: Vec<NodeId>) -> Self {
        assert!(
            !honest.is_empty(),
            "output trace needs at least one correct node"
        );
        OutputTrace {
            honest,
            rows: Vec::new(),
        }
    }

    /// Identifiers of the correct nodes, in row order.
    pub fn honest(&self) -> &[NodeId] {
        &self.honest
    }

    /// Number of recorded rows (rounds observed, including round 0).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether any rows have been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends the outputs for the next round.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the number of correct nodes.
    pub fn push_row(&mut self, outputs: Vec<u64>) {
        assert_eq!(outputs.len(), self.honest.len(), "row width mismatch");
        self.rows.push(outputs);
    }

    /// The outputs recorded for round `r`.
    pub fn row(&self, r: usize) -> &[u64] {
        &self.rows[r]
    }

    /// The common output at round `r`, if all correct nodes agreed.
    pub fn agreed_value(&self, r: usize) -> Option<u64> {
        let row = &self.rows[r];
        let first = row[0];
        row.iter().all(|&v| v == first).then_some(first)
    }
}

/// Verdict of [`detect_stabilization`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StabilizationReport {
    /// Earliest round from which the observed execution counts correctly.
    pub stabilization_round: u64,
    /// Total rounds recorded in the trace (rows − 1 transitions).
    pub rounds_recorded: u64,
    /// Length of the violation-free suffix backing the verdict.
    pub confirmed_rounds: u64,
    /// Counter modulus against which increments were checked.
    pub modulus: u64,
}

/// Streaming stabilisation detection: consumes one *agreed output* per
/// round (computed without materialising a row vector, see
/// [`Simulation::agreed_output_now`]) and maintains the exact same verdict
/// state as [`detect_stabilization`] — but with zero allocation and without
/// retaining the trace.
///
/// This is the detector the batch engine runs behind every scenario; the
/// trace-based path remains for callers that want the full trace.
///
/// [`Simulation::agreed_output_now`]: crate::Simulation::agreed_output_now
///
/// # Example
///
/// ```
/// use sc_sim::OnlineDetector;
///
/// let mut d = OnlineDetector::new(3);
/// d.observe(None); // initial disagreement
/// for r in 0..6 {
///     d.observe(Some(r % 3));
/// }
/// let report = d.finish(4)?;
/// assert_eq!(report.stabilization_round, 1);
/// # Ok::<(), sc_sim::SimError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct OnlineDetector {
    modulus: u64,
    /// Agreed output at the previously observed round, `None` before any
    /// observation; the inner `Option` is the row's agreement.
    prev: Option<Option<u64>>,
    transitions: u64,
    last_violation: Option<u64>,
}

impl OnlineDetector {
    /// A detector for a `modulus`-counter with no observations yet.
    pub fn new(modulus: u64) -> Self {
        OnlineDetector {
            modulus,
            prev: None,
            transitions: 0,
            last_violation: None,
        }
    }

    /// Records the agreed output of the next round (`None` = the correct
    /// nodes disagreed).
    pub fn observe(&mut self, agreed: Option<u64>) {
        if let Some(prev) = self.prev {
            if !good_transition(prev, agreed, self.modulus) {
                self.last_violation = Some(self.transitions);
            }
            self.transitions += 1;
        }
        self.prev = Some(agreed);
    }

    /// Transitions observed so far.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// The verdict over everything observed, requiring `min_confirm` good
    /// transitions at the tail.
    ///
    /// # Errors
    ///
    /// Same contract as [`detect_stabilization`].
    pub fn finish(&self, min_confirm: u64) -> Result<StabilizationReport, SimError> {
        if self.transitions == 0 {
            return Err(SimError::EmptyTrace);
        }
        let stabilization_round = self.last_violation.map_or(0, |r| r + 1);
        let confirmed = self.transitions - stabilization_round;
        if confirmed < min_confirm {
            return Err(SimError::NotStabilized {
                rounds: self.transitions,
                last_violation: self.last_violation,
                confirmed,
                required: min_confirm,
            });
        }
        Ok(StabilizationReport {
            stabilization_round,
            rounds_recorded: self.transitions,
            confirmed_rounds: confirmed,
            modulus: self.modulus,
        })
    }
}

/// Computes the exact stabilisation round of a recorded execution.
///
/// Scans every transition `r → r+1`; a transition is *good* when the outputs
/// at both rounds agree and the value increments by one modulo `modulus`.
/// The stabilisation round is one past the last bad transition. The verdict
/// requires at least `min_confirm` good transitions at the tail of the
/// trace.
///
/// # Errors
///
/// * [`SimError::EmptyTrace`] if fewer than two rows were recorded.
/// * [`SimError::NotStabilized`] if the violation-free suffix is shorter
///   than `min_confirm`.
pub fn detect_stabilization(
    trace: &OutputTrace,
    modulus: u64,
    min_confirm: u64,
) -> Result<StabilizationReport, SimError> {
    let mut detector = OnlineDetector::new(modulus);
    for r in 0..trace.len() {
        detector.observe(trace.agreed_value(r));
    }
    detector.finish(min_confirm)
}

/// Earliest round `t` such that transitions `t, …, t+window−1` all satisfy
/// the counting specification — the right notion of stabilisation for the
/// *probabilistic* counters of §5, which may glitch with small probability
/// in any round even after stabilising.
///
/// Returns `None` if no such window exists in the trace.
pub fn first_stable_window(trace: &OutputTrace, modulus: u64, window: u64) -> Option<u64> {
    if trace.len() < 2 || window == 0 {
        return None;
    }
    let transitions = trace.len() - 1;
    let mut run_start = 0u64;
    for r in 0..transitions {
        if !good_transition(trace.agreed_value(r), trace.agreed_value(r + 1), modulus) {
            run_start = r as u64 + 1;
        } else if r as u64 + 1 - run_start >= window {
            return Some(run_start);
        }
    }
    None
}

/// Fraction of transitions at index ≥ `from` violating the counting
/// specification — the per-round failure probability that Lemma 8 bounds by
/// `η^{−κ}` for the sampled counters.
pub fn violation_rate(trace: &OutputTrace, modulus: u64, from: u64) -> f64 {
    let transitions = trace.len().saturating_sub(1) as u64;
    if from >= transitions {
        return 0.0;
    }
    let mut bad = 0u64;
    for r in from..transitions {
        if !good_transition(
            trace.agreed_value(r as usize),
            trace.agreed_value(r as usize + 1),
            modulus,
        ) {
            bad += 1;
        }
    }
    bad as f64 / (transitions - from) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(rows: &[&[u64]]) -> OutputTrace {
        let width = rows[0].len();
        let mut t = OutputTrace::new((0..width).map(NodeId::new).collect());
        for row in rows {
            t.push_row(row.to_vec());
        }
        t
    }

    #[test]
    fn perfect_counting_stabilises_at_zero() {
        let t = trace_of(&[&[0, 0], &[1, 1], &[2, 2], &[0, 0], &[1, 1]]);
        let r = detect_stabilization(&t, 3, 4).unwrap();
        assert_eq!(r.stabilization_round, 0);
        assert_eq!(r.confirmed_rounds, 4);
    }

    #[test]
    fn disagreement_then_counting() {
        let t = trace_of(&[&[0, 2], &[2, 2], &[0, 0], &[1, 1], &[2, 2], &[0, 0]]);
        // Transition 0 is bad (disagreement at round 0); transition 1 is bad
        // (2 -> 0 requires modulus 3 agreement at both ends: rounds 1 and 2
        // agree and 2+1 mod 3 == 0 — actually good). Check carefully below.
        let r = detect_stabilization(&t, 3, 3).unwrap();
        assert_eq!(r.stabilization_round, 1);
    }

    #[test]
    fn agreement_without_increment_is_violation() {
        let t = trace_of(&[&[1, 1], &[1, 1], &[2, 2], &[0, 0], &[1, 1]]);
        let r = detect_stabilization(&t, 3, 3).unwrap();
        // The frozen 1 -> 1 transition violates counting.
        assert_eq!(r.stabilization_round, 1);
    }

    #[test]
    fn short_suffix_is_rejected() {
        let t = trace_of(&[&[0, 1], &[1, 1], &[2, 2]]);
        let err = detect_stabilization(&t, 3, 4).unwrap_err();
        match err {
            SimError::NotStabilized {
                confirmed,
                required,
                ..
            } => {
                assert_eq!(confirmed, 1);
                assert_eq!(required, 4);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn never_stabilising_trace_reports_violation() {
        let t = trace_of(&[&[0, 1], &[0, 1], &[0, 1]]);
        let err = detect_stabilization(&t, 2, 1).unwrap_err();
        assert!(matches!(
            err,
            SimError::NotStabilized {
                last_violation: Some(1),
                ..
            }
        ));
    }

    #[test]
    fn empty_trace_is_an_error() {
        let t = OutputTrace::new(vec![NodeId::new(0)]);
        assert_eq!(
            detect_stabilization(&t, 2, 1).unwrap_err(),
            SimError::EmptyTrace
        );
    }

    #[test]
    fn modulus_wrap_is_respected() {
        let t = trace_of(&[&[1, 1], &[0, 0], &[1, 1], &[0, 0]]);
        let r = detect_stabilization(&t, 2, 3).unwrap();
        assert_eq!(r.stabilization_round, 0);
    }

    #[test]
    fn agreed_value_detects_rows() {
        let t = trace_of(&[&[4, 4], &[4, 5]]);
        assert_eq!(t.agreed_value(0), Some(4));
        assert_eq!(t.agreed_value(1), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_width_panics() {
        let mut t = OutputTrace::new(vec![NodeId::new(0), NodeId::new(1)]);
        t.push_row(vec![1]);
    }

    #[test]
    fn first_stable_window_finds_interior_windows() {
        // Transitions: good, good, BAD (into disagreement), BAD (out of
        // disagreement), good, good, good.
        let t = trace_of(&[
            &[0, 0],
            &[1, 1],
            &[2, 2],
            &[0, 1],
            &[1, 1],
            &[2, 2],
            &[0, 0],
            &[1, 1],
        ]);
        assert_eq!(first_stable_window(&t, 3, 2), Some(0));
        assert_eq!(first_stable_window(&t, 3, 3), Some(4));
        assert_eq!(first_stable_window(&t, 3, 4), None);
    }

    #[test]
    fn online_detector_matches_trace_detection() {
        // Exhaustive small cases: every 4-round agreement pattern over
        // modulus 3, compared transition-for-transition.
        for pattern in 0u32..(4u32.pow(5)) {
            let rows: Vec<Option<u64>> = (0..5)
                .map(|i| {
                    let digit = pattern / 4u32.pow(i) % 4;
                    (digit < 3).then_some(u64::from(digit))
                })
                .collect();
            let mut trace = OutputTrace::new(vec![NodeId::new(0), NodeId::new(1)]);
            let mut online = OnlineDetector::new(3);
            for row in &rows {
                match row {
                    Some(v) => trace.push_row(vec![*v, *v]),
                    None => trace.push_row(vec![0, 1]),
                }
                online.observe(*row);
            }
            assert_eq!(
                detect_stabilization(&trace, 3, 2),
                online.finish(2),
                "pattern {pattern} rows {rows:?}"
            );
        }
    }

    #[test]
    fn online_detector_empty_and_single_row() {
        let d = OnlineDetector::new(2);
        assert_eq!(d.finish(1).unwrap_err(), SimError::EmptyTrace);
        let mut d = OnlineDetector::new(2);
        d.observe(Some(0));
        assert_eq!(d.finish(1).unwrap_err(), SimError::EmptyTrace);
    }

    #[test]
    fn violation_rate_counts_bad_transitions() {
        let t = trace_of(&[&[0, 0], &[1, 1], &[0, 0], &[1, 1], &[1, 1]]);
        // Transitions: good, bad (1→0 mod 3? modulus 2: 1→0 is good!) …
        // With modulus 2: 0→1 good, 1→0 good, 0→1 good, 1→1 bad.
        assert!((violation_rate(&t, 2, 0) - 0.25).abs() < 1e-9);
        assert!((violation_rate(&t, 2, 3) - 1.0).abs() < 1e-9);
        assert_eq!(violation_rate(&t, 2, 10), 0.0);
    }
}
