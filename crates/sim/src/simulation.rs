//! The synchronous execution engine.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_protocol::{
    BitVec, Counter, Fingerprint, MessageView, NodeId, PreparedProtocol, StepContext, SyncProtocol,
};

use crate::adversary::{Adversary, AdversarySnapshot, RoundContext, SnapshotSupport};
use crate::early::{periodic_verdict, CycleDetector, ExitReason, Feed};
use crate::stabilization::{
    detect_stabilization, OnlineDetector, OutputTrace, StabilizationReport,
};
use crate::workspace::{FaultMask, RoundWorkspace};
use crate::SimError;

/// A synchronous execution of a protocol under a Byzantine adversary.
///
/// Each [`step`](Simulation::step) performs one round of the model in §2:
///
/// 1. every node's state is (conceptually) broadcast,
/// 2. for every correct receiver the adversary overrides the entries of the
///    faulty senders — per receiver, enabling full equivocation,
/// 3. every correct node applies the protocol's transition function.
///
/// Faulty nodes have no state of their own: their behaviour is entirely the
/// adversary's, exactly like the `π_F` projection of the paper. Initial
/// states of correct nodes are *arbitrary* — drawn from the protocol's state
/// space by [`SyncProtocol::random_state`], or supplied explicitly via
/// [`Simulation::with_states`].
///
/// # Engine
///
/// The round loop is zero-copy: states live in a double buffer whose halves
/// are swapped after each round (no `Vec<State>` is rebuilt), faultiness is
/// looked up in a precomputed [`FaultMask`] bitmap, and adversary messages
/// travel the borrow-based plane — per (faulty sender, receiver) pair the
/// adversary returns a [`MessageSource`](sc_protocol::MessageSource) lease,
/// the lease vector lives in
/// the reusable scratch of a [`RoundWorkspace`], and genuinely fabricated
/// states are materialised at most once per round (or once per execution)
/// into the workspace's [`StatePool`](crate::StatePool). The
/// `engine_equivalence` integration tests gate the engine's paths against
/// each other: the [`PreparedProtocol`] fast path and the batched sweeps
/// must reproduce plain single-stepped executions bitwise.
///
/// For [`Fingerprint`] protocols under snapshot-capable adversaries,
/// [`run_until_stable_early`](Simulation::run_until_stable_early) adds the
/// sound early-decision mode: once the joint (states, adversary)
/// configuration recurs bit-exactly, the remaining horizon is replayed
/// algebraically instead of executed.
///
/// See the crate-level documentation for an end-to-end example.
pub struct Simulation<'a, P: SyncProtocol, A> {
    protocol: &'a P,
    adversary: A,
    states: Vec<P::State>,
    /// The second half of the double buffer. Holds the previous round's
    /// honest states (overwritten before being read) and, invariantly, the
    /// same placeholder states as `states` at faulty indices.
    back: Vec<P::State>,
    faulty: Vec<NodeId>,
    mask: FaultMask,
    honest: Vec<NodeId>,
    workspace: RoundWorkspace<P::State>,
    round: u64,
    rng: SmallRng,
}

impl<'a, P, A> Simulation<'a, P, A>
where
    P: SyncProtocol,
    A: Adversary<P::State>,
{
    /// Starts an execution from an adversarially random initial
    /// configuration derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the adversary names a node outside the network or corrupts
    /// every node.
    pub fn new(protocol: &'a P, adversary: A, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let states = (0..protocol.n())
            .map(|i| protocol.random_state(NodeId::new(i), &mut rng))
            .collect();
        Self::with_states(protocol, adversary, states, seed.wrapping_add(1))
    }

    /// Starts an execution from an explicit initial configuration.
    ///
    /// `seed` feeds only the protocol's own randomness (randomised
    /// protocols); deterministic protocols ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != protocol.n()`, if the adversary names a
    /// node outside the network, or if it corrupts every node.
    pub fn with_states(protocol: &'a P, adversary: A, states: Vec<P::State>, seed: u64) -> Self {
        assert_eq!(
            states.len(),
            protocol.n(),
            "initial configuration width mismatch"
        );
        let faulty: Vec<NodeId> = adversary.faulty().to_vec();
        assert!(
            faulty.windows(2).all(|w| w[0] < w[1]),
            "adversary fault set must be sorted and duplicate-free"
        );
        assert!(
            faulty.iter().all(|id| id.index() < protocol.n()),
            "adversary corrupts a node outside the network"
        );
        assert!(
            faulty.len() < protocol.n(),
            "at least one node must stay correct"
        );
        let mask = FaultMask::from_sorted(&faulty, protocol.n());
        let honest = (0..protocol.n())
            .map(NodeId::new)
            .filter(|id| !mask.contains(id.index()))
            .collect();
        let back = states.clone();
        let workspace = RoundWorkspace::with_capacity(faulty.len(), protocol.n());
        Simulation {
            protocol,
            adversary,
            states,
            back,
            faulty,
            mask,
            honest,
            workspace,
            round: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &'a P {
        self.protocol
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Sorted identifiers of faulty nodes.
    pub fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    /// Sorted identifiers of correct nodes.
    pub fn honest(&self) -> &[NodeId] {
        &self.honest
    }

    /// Current states of all nodes (faulty entries are meaningless
    /// placeholders).
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Outputs of the correct nodes, in [`Simulation::honest`] order.
    pub fn outputs_now(&self) -> Vec<u64> {
        self.honest
            .iter()
            .map(|&id| self.protocol.output(id, &self.states[id.index()]))
            .collect()
    }

    /// The common output of all correct nodes right now, if they agree —
    /// computed without allocating a row vector.
    pub fn agreed_output_now(&self) -> Option<u64> {
        let mut iter = self.honest.iter();
        let first = iter.next().expect("at least one correct node");
        let value = self.protocol.output(*first, &self.states[first.index()]);
        iter.all(|&id| self.protocol.output(id, &self.states[id.index()]) == value)
            .then_some(value)
    }

    /// Executes one synchronous round on the zero-copy engine.
    pub fn step(&mut self) {
        let ctx = RoundContext {
            round: self.round,
            honest: &self.states,
            faulty: &self.faulty,
            mask: &self.mask,
        };
        self.workspace.pool.begin_round();
        self.adversary.begin_round(&ctx, &mut self.workspace.pool);

        for i in 0..self.states.len() {
            if self.mask.contains(i) {
                // Faulty nodes keep their placeholder state; both buffer
                // halves already hold it, so there is nothing to write.
                continue;
            }
            let receiver = NodeId::new(i);
            self.workspace.sources.clear();
            for &from in &self.faulty {
                let source = self
                    .adversary
                    .message(from, receiver, &ctx, &mut self.workspace.pool);
                self.workspace.sources.push((from, source));
            }
            let view = MessageView::from_sources(
                &self.states,
                self.workspace.pool.pinned(),
                self.workspace.pool.round(),
                &self.workspace.sources,
            );
            let mut step_ctx = StepContext::new(&mut self.rng);
            self.back[i] = self.protocol.step(receiver, &view, &mut step_ctx);
        }
        std::mem::swap(&mut self.states, &mut self.back);
        self.round += 1;
    }

    /// Cumulative number of states the adversary has materialised through
    /// the message plane's pool — the fabrication-cost ledger of Byzantine
    /// sweeps (echoed broadcasts and pinned states do not count).
    pub fn fabricated_states(&self) -> u64 {
        self.workspace.pool.fabricated_total()
    }

    /// Executes `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Executes one synchronous round using the protocol's
    /// [`PreparedProtocol`] fast path: the receiver-independent share of the
    /// transition (majority-vote tallies over honest senders) is computed
    /// once, and each receiver only patches the ≤ `f` Byzantine overrides
    /// in. Bitwise-equivalent to [`step`](Simulation::step) — the
    /// `engine_equivalence` tests enforce it.
    pub fn step_prepared(&mut self)
    where
        P: PreparedProtocol,
    {
        let ctx = RoundContext {
            round: self.round,
            honest: &self.states,
            faulty: &self.faulty,
            mask: &self.mask,
        };
        self.workspace.pool.begin_round();
        self.adversary.begin_round(&ctx, &mut self.workspace.pool);

        let mut prep = self
            .protocol
            .prepare_round(sc_protocol::Broadcast::States(&self.states), &self.faulty);
        for i in 0..self.states.len() {
            if self.mask.contains(i) {
                continue;
            }
            let receiver = NodeId::new(i);
            self.workspace.sources.clear();
            for &from in &self.faulty {
                let source = self
                    .adversary
                    .message(from, receiver, &ctx, &mut self.workspace.pool);
                self.workspace.sources.push((from, source));
            }
            let view = MessageView::from_sources(
                &self.states,
                self.workspace.pool.pinned(),
                self.workspace.pool.round(),
                &self.workspace.sources,
            );
            let mut step_ctx = StepContext::new(&mut self.rng);
            self.back[i] = self
                .protocol
                .step_prepared(receiver, &view, &mut prep, &mut step_ctx);
        }
        std::mem::swap(&mut self.states, &mut self.back);
        self.round += 1;
    }

    /// Executes `rounds` rounds, recording the correct nodes' outputs before
    /// the first round and after every round (`rounds + 1` rows).
    pub fn run_trace(&mut self, rounds: u64) -> OutputTrace {
        let mut trace = OutputTrace::new(self.honest.clone());
        trace.push_row(self.outputs_now());
        for _ in 0..rounds {
            self.step();
            trace.push_row(self.outputs_now());
        }
        trace
    }

    /// Injects a **transient fault burst**: overwrites the states of `nodes`
    /// with arbitrary values drawn from the protocol's state space.
    ///
    /// This is the scenario self-stabilisation exists for — soft errors,
    /// power glitches, or partial resets may corrupt *every* register in the
    /// system, and the algorithm must recover within its stabilisation bound
    /// counted from the last burst. See `sc-bench`'s `transient` harness.
    pub fn corrupt<I: IntoIterator<Item = NodeId>>(&mut self, nodes: I, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for node in nodes {
            assert!(
                node.index() < self.states.len(),
                "corrupting node outside the network"
            );
            self.states[node.index()] = self.protocol.random_state(node, &mut rng);
            // Keep the double-buffer invariant: faulty placeholders must be
            // identical in both halves (honest entries are overwritten
            // before being read, but syncing unconditionally is cheapest).
            self.back[node.index()] = self.states[node.index()].clone();
        }
    }

    /// Injects a transient fault burst on *all* nodes (total state loss).
    pub fn corrupt_all(&mut self, seed: u64) {
        let all: Vec<NodeId> = (0..self.states.len()).map(NodeId::new).collect();
        self.corrupt(all, seed);
    }
}

/// The violation-free suffix a counter execution must exhibit before
/// [`Simulation::run_until_stable`] accepts it: `2·modulus` transitions,
/// clamped to `[8, 128]`.
pub fn required_confirmation(modulus: u64) -> u64 {
    (2 * modulus).clamp(8, 128)
}

impl<'a, P, A> Simulation<'a, P, A>
where
    P: Counter,
    A: Adversary<P::State>,
{
    /// Runs for `horizon` rounds and verifies that the execution stabilised:
    /// from some round `t ≤ horizon` on, all correct outputs agree and count
    /// modulo [`Counter::modulus`].
    ///
    /// A violation-free suffix of [`required_confirmation`] transitions is
    /// demanded as confirmation — the horizon must accommodate it in full;
    /// silently shrinking the requirement would let a 1-transition tail pass
    /// as "stable".
    ///
    /// # Errors
    ///
    /// * [`SimError::HorizonTooShort`] when `horizon` cannot fit the
    ///   required confirmation suffix — the run is not even attempted.
    /// * [`SimError::NotStabilized`] when the confirmation suffix is missing
    ///   — either the algorithm failed or `horizon` was too small.
    pub fn run_until_stable(&mut self, horizon: u64) -> Result<StabilizationReport, SimError> {
        let modulus = self.protocol.modulus();
        let confirm = required_confirmation(modulus);
        if horizon < confirm {
            return Err(SimError::HorizonTooShort {
                horizon,
                required: confirm,
            });
        }
        let trace = self.run_trace(horizon);
        detect_stabilization(&trace, modulus, confirm)
    }
}

impl<'a, P, A> Simulation<'a, P, A>
where
    P: Fingerprint,
    A: Adversary<P::State>,
{
    /// [`run_until_stable`](Simulation::run_until_stable) with the sound
    /// **early-decision mode**: the verdict is bitwise identical, but when
    /// the joint (states, adversary) configuration recurs within the
    /// horizon, the remaining rounds are replayed algebraically instead of
    /// executed — the structural win behind fast `T(f) ≪ bound` sweeps.
    ///
    /// Soundness is typed, not assumed: the cycle detector only arms when
    /// [`Fingerprint::deterministic_transition`] holds *and* the adversary's
    /// [`snapshot`](Adversary::snapshot) capability reports
    /// [`SnapshotSupport::Deterministic`]; RNG-driven strategies execute the
    /// full horizon and report [`ExitReason::Opaque`]. Every reported
    /// recurrence is verified on the full codec encoding, never on a hash.
    ///
    /// # Errors
    ///
    /// Exactly the contract of
    /// [`run_until_stable`](Simulation::run_until_stable); the error values
    /// are bitwise identical too.
    pub fn run_until_stable_early(
        &mut self,
        horizon: u64,
    ) -> (Result<StabilizationReport, SimError>, ExitReason) {
        self.run_early_with(horizon, Self::step)
    }

    /// [`run_until_stable_early`](Simulation::run_until_stable_early) on the
    /// [`PreparedProtocol`] fast path.
    pub fn run_until_stable_early_prepared(
        &mut self,
        horizon: u64,
    ) -> (Result<StabilizationReport, SimError>, ExitReason)
    where
        P: PreparedProtocol,
    {
        self.run_early_with(horizon, Self::step_prepared)
    }

    /// The early-decision driver: streams agreed outputs while feeding the
    /// configuration fingerprint of every round to a [`CycleDetector`];
    /// `step` selects the engine path.
    pub(crate) fn run_early_with<S: Fn(&mut Self)>(
        &mut self,
        horizon: u64,
        step: S,
    ) -> (Result<StabilizationReport, SimError>, ExitReason) {
        let modulus = self.protocol.modulus();
        let confirm = required_confirmation(modulus);
        if horizon < confirm {
            return (
                Err(SimError::HorizonTooShort {
                    horizon,
                    required: confirm,
                }),
                ExitReason::FullHorizon,
            );
        }
        // Capped reservation: an early exit typically pushes far fewer than
        // `horizon + 1` rows, and a soak horizon must not pre-allocate its
        // own defeat (the buffer grows organically past the cap).
        let mut outputs: Vec<Option<u64>> = Vec::with_capacity(horizon.min(4095) as usize + 1);
        outputs.push(self.agreed_output_now());
        let mut detector = self
            .protocol
            .deterministic_transition()
            .then(CycleDetector::new);
        if let Some(det) = detector.as_mut() {
            // The initial configuration can recur too (round 0 is a valid
            // cycle entry), so it is recorded before the first step.
            if matches!(self.record_config(det), Feed::Opaque) {
                detector = None;
            }
        }
        for round in 1..=horizon {
            step(self);
            outputs.push(self.agreed_output_now());
            if let Some(det) = detector.as_mut() {
                match self.record_config(det) {
                    Feed::Recorded => {}
                    Feed::Opaque => detector = None,
                    Feed::Cycle(start) => {
                        let verdict = periodic_verdict(&outputs, start, horizon, modulus, confirm);
                        return (
                            verdict,
                            ExitReason::Cycle {
                                start,
                                length: round - start,
                                decided_at: round,
                            },
                        );
                    }
                }
            }
        }
        let mut online = OnlineDetector::new(modulus);
        for &row in &outputs {
            online.observe(row);
        }
        let exit = if detector.is_some() {
            ExitReason::FullHorizon
        } else {
            ExitReason::Opaque
        };
        (online.finish(confirm), exit)
    }

    /// Encodes the current joint configuration — the correct nodes' states
    /// through the protocol's bit-exact digest, the pinned-pool watermark,
    /// and the adversary snapshot — and feeds it to the detector.
    fn record_config(&self, detector: &mut CycleDetector) -> Feed {
        let mut bits = detector.begin();
        for &id in &self.honest {
            self.protocol
                .fingerprint_state(id, &self.states[id.index()], &mut bits);
        }
        // Pinned pool slots are immutable once issued, so within one
        // execution only the watermark can change (a strategy pinning a new
        // state mid-run must not alias a pre-pin configuration).
        bits.push_bits(self.workspace.pool.pinned().len() as u64, 64);
        let support = {
            let mut encode = |node: NodeId, state: &P::State, out: &mut BitVec| {
                self.protocol.fingerprint_state(node, state, out);
            };
            let mut writer = AdversarySnapshot::new(&mut bits, &mut encode);
            self.adversary.snapshot(self.round, &mut writer)
        };
        match support {
            SnapshotSupport::Opaque => {
                detector.discard(bits);
                Feed::Opaque
            }
            SnapshotSupport::Deterministic => detector.commit(bits),
        }
    }
}

impl<'a, P: SyncProtocol, A> std::fmt::Debug for Simulation<'a, P, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.states.len())
            .field("round", &self.round)
            .field("faulty", &self.faulty)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversaries;

    use crate::testing::FollowMax;

    #[test]
    fn fault_free_followmax_stabilises_immediately() {
        let p = FollowMax { n: 5, c: 4 };
        let mut sim = Simulation::new(&p, adversaries::none(), 3);
        let report = sim.run_until_stable(40).unwrap();
        assert!(report.stabilization_round <= 1);
        assert_eq!(report.modulus, 4);
    }

    #[test]
    fn deterministic_protocols_replay_identically() {
        let p = FollowMax { n: 4, c: 8 };
        let states = vec![1u64, 5, 3, 0];
        let mut a = Simulation::with_states(&p, adversaries::none(), states.clone(), 1);
        let mut b = Simulation::with_states(&p, adversaries::none(), states, 999);
        a.run(20);
        b.run(20);
        assert_eq!(a.states(), b.states());
    }

    #[test]
    fn seeded_equivocation_replays_are_reproducible() {
        // Fixed seeds fully determine an execution — including the
        // adversary's RNG stream — so two independent instances must stay
        // identical round for round (no hidden global state anywhere).
        let p = FollowMax { n: 5, c: 1 << 20 };
        let states: Vec<u64> = vec![7, 99, 3, 12_345, 0];
        let mut a = Simulation::with_states(&p, adversaries::random(&p, [1], 5), states.clone(), 9);
        let mut b = Simulation::with_states(&p, adversaries::random(&p, [1], 5), states, 9);
        for round in 0..50 {
            a.step();
            b.step();
            assert_eq!(a.states(), b.states(), "divergence at round {round}");
        }
    }

    #[test]
    fn crash_adversary_cannot_stop_followmax_with_margin() {
        // FollowMax has zero resilience in general, but a frozen crash value
        // only delays convergence by at most one wrap: every honest node
        // still sees the same vector every round.
        let p = FollowMax { n: 5, c: 4 };
        let adv = adversaries::crash(&p, [4], 11);
        let mut sim = Simulation::new(&p, adv, 5);
        let report = sim.run_until_stable(64);
        // A frozen maximal value can pin the counter; accept either verdict
        // but require the run to be analysable.
        match report {
            Ok(r) => assert!(r.rounds_recorded == 64),
            Err(SimError::NotStabilized { rounds, .. }) => assert_eq!(rounds, 64),
            Err(other) => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn two_faced_adversary_splits_followmax() {
        // With an equivocating fault, FollowMax (resilience 0) must be
        // breakable: the adversary feeds different maxima to the two halves.
        // This guards against a vacuously-strong simulator that fails to
        // deliver per-receiver messages.
        let p = FollowMax { n: 4, c: 1 << 20 };
        let adv = adversaries::random(&p, [0], 17);
        let mut sim = Simulation::new(&p, adv, 7);
        let trace = sim.run_trace(50);
        let some_disagreement = (0..trace.len()).any(|r| trace.agreed_value(r).is_none());
        assert!(some_disagreement, "per-receiver equivocation had no effect");
    }

    #[test]
    fn outputs_now_skips_faulty_nodes() {
        let p = FollowMax { n: 3, c: 4 };
        let adv = adversaries::crash(&p, [1], 0);
        let sim = Simulation::with_states(&p, adv, vec![1, 2, 3], 0);
        assert_eq!(sim.honest().len(), 2);
        assert_eq!(sim.outputs_now().len(), 2);
    }

    #[test]
    fn agreed_output_matches_outputs_now() {
        let p = FollowMax { n: 3, c: 4 };
        let sim = Simulation::with_states(&p, adversaries::none(), vec![2, 2, 2], 0);
        assert_eq!(sim.agreed_output_now(), Some(2));
        let sim = Simulation::with_states(&p, adversaries::none(), vec![2, 3, 2], 0);
        assert_eq!(sim.agreed_output_now(), None);
    }

    #[test]
    fn corrupt_keeps_both_buffers_consistent() {
        let p = FollowMax { n: 4, c: 16 };
        let adv = adversaries::crash(&p, [2], 1);
        let mut sim = Simulation::new(&p, adv, 3);
        sim.run(3);
        sim.corrupt_all(99);
        // The faulty placeholder must survive identically through further
        // stepping on either engine (it is broadcast via RoundContext).
        let placeholder = sim.states()[2];
        sim.run(2);
        assert_eq!(sim.states()[2], placeholder);
    }

    #[test]
    fn short_horizon_is_rejected_up_front() {
        let p = FollowMax { n: 5, c: 4 };
        let mut sim = Simulation::new(&p, adversaries::none(), 3);
        // required_confirmation(4) = 8 > horizon 5.
        match sim.run_until_stable(5) {
            Err(SimError::HorizonTooShort {
                horizon: 5,
                required: 8,
            }) => {}
            other => panic!("expected HorizonTooShort, got {other:?}"),
        }
        // The rejected run must not have consumed any rounds.
        assert_eq!(sim.round(), 0);
    }

    #[test]
    fn confirmation_requirement_is_clamped() {
        assert_eq!(required_confirmation(2), 8);
        assert_eq!(required_confirmation(6), 12);
        assert_eq!(required_confirmation(1_000), 128);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_initial_width_panics() {
        let p = FollowMax { n: 3, c: 4 };
        let _ = Simulation::with_states(&p, adversaries::none(), vec![0, 1], 0);
    }

    #[test]
    #[should_panic(expected = "outside the network")]
    fn out_of_range_fault_panics() {
        let p = FollowMax { n: 3, c: 4 };
        let adv = adversaries::fixed([7], 0u64);
        let _ = Simulation::new(&p, adv, 0);
    }

    #[test]
    #[should_panic(expected = "stay correct")]
    fn all_faulty_panics() {
        let p = FollowMax { n: 2, c: 4 };
        let adv = adversaries::fixed([0, 1], 0u64);
        let _ = Simulation::new(&p, adv, 0);
    }
}
