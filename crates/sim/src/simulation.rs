//! The synchronous execution engine.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sc_protocol::{Counter, MessageView, NodeId, StepContext, SyncProtocol};

use crate::adversary::{Adversary, RoundContext};
use crate::stabilization::{detect_stabilization, OutputTrace, StabilizationReport};
use crate::SimError;

/// A synchronous execution of a protocol under a Byzantine adversary.
///
/// Each [`step`](Simulation::step) performs one round of the model in §2:
///
/// 1. every node's state is (conceptually) broadcast,
/// 2. for every correct receiver the adversary overrides the entries of the
///    faulty senders — per receiver, enabling full equivocation,
/// 3. every correct node applies the protocol's transition function.
///
/// Faulty nodes have no state of their own: their behaviour is entirely the
/// adversary's, exactly like the `π_F` projection of the paper. Initial
/// states of correct nodes are *arbitrary* — drawn from the protocol's state
/// space by [`SyncProtocol::random_state`], or supplied explicitly via
/// [`Simulation::with_states`].
///
/// See the crate-level documentation for an end-to-end example.
pub struct Simulation<'a, P: SyncProtocol, A> {
    protocol: &'a P,
    adversary: A,
    states: Vec<P::State>,
    faulty: Vec<NodeId>,
    honest: Vec<NodeId>,
    round: u64,
    rng: SmallRng,
}

impl<'a, P, A> Simulation<'a, P, A>
where
    P: SyncProtocol,
    A: Adversary<P::State>,
{
    /// Starts an execution from an adversarially random initial
    /// configuration derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the adversary names a node outside the network or corrupts
    /// every node.
    pub fn new(protocol: &'a P, adversary: A, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let states = (0..protocol.n())
            .map(|i| protocol.random_state(NodeId::new(i), &mut rng))
            .collect();
        Self::with_states(protocol, adversary, states, seed.wrapping_add(1))
    }

    /// Starts an execution from an explicit initial configuration.
    ///
    /// `seed` feeds only the protocol's own randomness (randomised
    /// protocols); deterministic protocols ignore it.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != protocol.n()`, if the adversary names a
    /// node outside the network, or if it corrupts every node.
    pub fn with_states(
        protocol: &'a P,
        adversary: A,
        states: Vec<P::State>,
        seed: u64,
    ) -> Self {
        assert_eq!(states.len(), protocol.n(), "initial configuration width mismatch");
        let faulty: Vec<NodeId> = adversary.faulty().to_vec();
        assert!(
            faulty.windows(2).all(|w| w[0] < w[1]),
            "adversary fault set must be sorted and duplicate-free"
        );
        assert!(
            faulty.iter().all(|id| id.index() < protocol.n()),
            "adversary corrupts a node outside the network"
        );
        assert!(faulty.len() < protocol.n(), "at least one node must stay correct");
        let honest = (0..protocol.n())
            .map(NodeId::new)
            .filter(|id| faulty.binary_search(id).is_err())
            .collect();
        Simulation {
            protocol,
            adversary,
            states,
            faulty,
            honest,
            round: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The protocol being executed.
    pub fn protocol(&self) -> &'a P {
        self.protocol
    }

    /// Rounds executed so far.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Sorted identifiers of faulty nodes.
    pub fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    /// Sorted identifiers of correct nodes.
    pub fn honest(&self) -> &[NodeId] {
        &self.honest
    }

    /// Current states of all nodes (faulty entries are meaningless
    /// placeholders).
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Outputs of the correct nodes, in [`Simulation::honest`] order.
    pub fn outputs_now(&self) -> Vec<u64> {
        self.honest
            .iter()
            .map(|&id| self.protocol.output(id, &self.states[id.index()]))
            .collect()
    }

    /// Executes one synchronous round.
    pub fn step(&mut self) {
        let ctx = RoundContext {
            round: self.round,
            honest: &self.states,
            faulty: &self.faulty,
        };
        self.adversary.begin_round(&ctx);

        let mut next: Vec<P::State> = Vec::with_capacity(self.states.len());
        let mut overrides: Vec<(NodeId, P::State)> = Vec::with_capacity(self.faulty.len());
        for i in 0..self.states.len() {
            let receiver = NodeId::new(i);
            if self.faulty.binary_search(&receiver).is_ok() {
                // Faulty nodes keep their placeholder state; it is never read.
                next.push(self.states[i].clone());
                continue;
            }
            overrides.clear();
            for &from in &self.faulty {
                overrides.push((from, self.adversary.message(from, receiver, &ctx)));
            }
            let view = MessageView::new(&self.states, &overrides);
            let mut step_ctx = StepContext::new(&mut self.rng);
            next.push(self.protocol.step(receiver, &view, &mut step_ctx));
        }
        self.states = next;
        self.round += 1;
    }

    /// Executes `rounds` rounds.
    pub fn run(&mut self, rounds: u64) {
        for _ in 0..rounds {
            self.step();
        }
    }

    /// Executes `rounds` rounds, recording the correct nodes' outputs before
    /// the first round and after every round (`rounds + 1` rows).
    pub fn run_trace(&mut self, rounds: u64) -> OutputTrace {
        let mut trace = OutputTrace::new(self.honest.clone());
        trace.push_row(self.outputs_now());
        for _ in 0..rounds {
            self.step();
            trace.push_row(self.outputs_now());
        }
        trace
    }

    /// Injects a **transient fault burst**: overwrites the states of `nodes`
    /// with arbitrary values drawn from the protocol's state space.
    ///
    /// This is the scenario self-stabilisation exists for — soft errors,
    /// power glitches, or partial resets may corrupt *every* register in the
    /// system, and the algorithm must recover within its stabilisation bound
    /// counted from the last burst. See `sc-bench`'s `transient` harness.
    pub fn corrupt<I: IntoIterator<Item = NodeId>>(&mut self, nodes: I, seed: u64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for node in nodes {
            assert!(node.index() < self.states.len(), "corrupting node outside the network");
            self.states[node.index()] = self.protocol.random_state(node, &mut rng);
        }
    }

    /// Injects a transient fault burst on *all* nodes (total state loss).
    pub fn corrupt_all(&mut self, seed: u64) {
        let all: Vec<NodeId> = (0..self.states.len()).map(NodeId::new).collect();
        self.corrupt(all, seed);
    }
}

impl<'a, P, A> Simulation<'a, P, A>
where
    P: Counter,
    A: Adversary<P::State>,
{
    /// Runs for `horizon` rounds and verifies that the execution stabilised:
    /// from some round `t ≤ horizon` on, all correct outputs agree and count
    /// modulo [`Counter::modulus`].
    ///
    /// A violation-free suffix of `min(2c, 128)`, at least 8, transitions is
    /// required as confirmation.
    ///
    /// # Errors
    ///
    /// [`SimError::NotStabilized`] when the confirmation suffix is missing —
    /// either the algorithm failed or `horizon` was too small.
    pub fn run_until_stable(&mut self, horizon: u64) -> Result<StabilizationReport, SimError> {
        let modulus = self.protocol.modulus();
        let confirm = (2 * modulus).clamp(8, 128);
        let trace = self.run_trace(horizon);
        detect_stabilization(&trace, modulus, confirm.min(horizon / 2).max(1))
    }
}

impl<'a, P: SyncProtocol, A> std::fmt::Debug for Simulation<'a, P, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("n", &self.states.len())
            .field("round", &self.round)
            .field("faulty", &self.faulty)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversaries;
    use rand::RngCore;

    /// All correct nodes adopt `max(received) + 1 mod c`: converges in one
    /// round without faults because everyone sees the same vector.
    struct FollowMax {
        n: usize,
        c: u64,
    }

    impl SyncProtocol for FollowMax {
        type State = u64;
        fn n(&self) -> usize {
            self.n
        }
        fn step(&self, _: NodeId, view: &MessageView<'_, u64>, _: &mut StepContext<'_>) -> u64 {
            let max = view.iter().max().copied().unwrap();
            (max + 1) % self.c
        }
        fn output(&self, _: NodeId, s: &u64) -> u64 {
            *s
        }
        fn random_state(&self, _: NodeId, rng: &mut dyn RngCore) -> u64 {
            rng.next_u64() % self.c
        }
    }

    impl Counter for FollowMax {
        fn modulus(&self) -> u64 {
            self.c
        }
        fn resilience(&self) -> usize {
            0
        }
        fn state_bits(&self) -> u32 {
            sc_protocol::bits_for(self.c)
        }
        fn stabilization_bound(&self) -> u64 {
            1
        }
        fn encode_state(&self, _: NodeId, s: &u64, out: &mut sc_protocol::BitVec) {
            out.push_bits(*s, self.state_bits());
        }
        fn decode_state(
            &self,
            _: NodeId,
            input: &mut sc_protocol::BitReader<'_>,
        ) -> Result<u64, sc_protocol::CodecError> {
            input.read_bits(self.state_bits())
        }
    }

    #[test]
    fn fault_free_followmax_stabilises_immediately() {
        let p = FollowMax { n: 5, c: 4 };
        let mut sim = Simulation::new(&p, adversaries::none(), 3);
        let report = sim.run_until_stable(40).unwrap();
        assert!(report.stabilization_round <= 1);
        assert_eq!(report.modulus, 4);
    }

    #[test]
    fn deterministic_protocols_replay_identically() {
        let p = FollowMax { n: 4, c: 8 };
        let states = vec![1u64, 5, 3, 0];
        let mut a = Simulation::with_states(&p, adversaries::none(), states.clone(), 1);
        let mut b = Simulation::with_states(&p, adversaries::none(), states, 999);
        a.run(20);
        b.run(20);
        assert_eq!(a.states(), b.states());
    }

    #[test]
    fn crash_adversary_cannot_stop_followmax_with_margin() {
        // FollowMax has zero resilience in general, but a frozen crash value
        // only delays convergence by at most one wrap: every honest node
        // still sees the same vector every round.
        let p = FollowMax { n: 5, c: 4 };
        let adv = adversaries::crash(&p, [4], 11);
        let mut sim = Simulation::new(&p, adv, 5);
        let report = sim.run_until_stable(64);
        // A frozen maximal value can pin the counter; accept either verdict
        // but require the run to be analysable.
        match report {
            Ok(r) => assert!(r.rounds_recorded == 64),
            Err(SimError::NotStabilized { rounds, .. }) => assert_eq!(rounds, 64),
            Err(other) => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn two_faced_adversary_splits_followmax() {
        // With an equivocating fault, FollowMax (resilience 0) must be
        // breakable: the adversary feeds different maxima to the two halves.
        // This guards against a vacuously-strong simulator that fails to
        // deliver per-receiver messages.
        let p = FollowMax { n: 4, c: 1 << 20 };
        let adv = adversaries::random(&p, [0], 17);
        let mut sim = Simulation::new(&p, adv, 7);
        let trace = sim.run_trace(50);
        let some_disagreement = (0..trace.len()).any(|r| trace.agreed_value(r).is_none());
        assert!(some_disagreement, "per-receiver equivocation had no effect");
    }

    #[test]
    fn outputs_now_skips_faulty_nodes() {
        let p = FollowMax { n: 3, c: 4 };
        let adv = adversaries::crash(&p, [1], 0);
        let sim = Simulation::with_states(&p, adv, vec![1, 2, 3], 0);
        assert_eq!(sim.honest().len(), 2);
        assert_eq!(sim.outputs_now().len(), 2);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_initial_width_panics() {
        let p = FollowMax { n: 3, c: 4 };
        let _ = Simulation::with_states(&p, adversaries::none(), vec![0, 1], 0);
    }

    #[test]
    #[should_panic(expected = "outside the network")]
    fn out_of_range_fault_panics() {
        let p = FollowMax { n: 3, c: 4 };
        let adv = adversaries::fixed([7], 0u64);
        let _ = Simulation::new(&p, adv, 0);
    }

    #[test]
    #[should_panic(expected = "stay correct")]
    fn all_faulty_panics() {
        let p = FollowMax { n: 2, c: 4 };
        let adv = adversaries::fixed([0, 1], 0u64);
        let _ = Simulation::new(&p, adv, 0);
    }
}
