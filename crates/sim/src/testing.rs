//! Shared test fixtures (not part of the public API; see `#[doc(hidden)]`
//! on the module re-export).

use rand::RngCore;
use sc_protocol::{
    bits_for, BitReader, BitVec, CodecError, Counter, Fingerprint, MessageView, NodeId,
    StepContext, SyncProtocol,
};

use crate::adversary::RoundContext;
use crate::workspace::FaultMask;

/// Owns everything a [`RoundContext`] borrows — broadcast states, the sorted
/// fault set and its [`FaultMask`] — so adversary unit tests can mint
/// contexts without hand-wiring the bitmap. The [`StatePool`] deliberately
/// stays outside (tests hold it mutably while a context is alive).
///
/// [`StatePool`]: crate::StatePool
#[derive(Clone, Debug)]
pub struct TestRound<S> {
    honest: Vec<S>,
    faulty: Vec<NodeId>,
    mask: FaultMask,
}

impl<S> TestRound<S> {
    /// A round broadcasting `honest` with the given faulty indices.
    pub fn new(honest: Vec<S>, faulty: impl IntoIterator<Item = usize>) -> Self {
        let faulty = crate::adversaries::normalize_faults(faulty);
        let mask = FaultMask::from_sorted(&faulty, honest.len());
        TestRound {
            honest,
            faulty,
            mask,
        }
    }

    /// The broadcast state vector.
    pub fn honest(&self) -> &[S] {
        &self.honest
    }

    /// A context for round number `round`.
    pub fn ctx(&self, round: u64) -> RoundContext<'_, S> {
        RoundContext {
            round,
            honest: &self.honest,
            faulty: &self.faulty,
            mask: &self.mask,
        }
    }
}

/// Zero-resilience max-follower counter: every correct node adopts
/// `max(received) + 1 mod c`.
///
/// The workhorse fixture of the engine test suites — every received value
/// influences the next state, so any divergence in message delivery,
/// override handling, or buffer management shows up in the states
/// immediately; and with an equivocating fault it *must* be breakable,
/// guarding against vacuously-strong simulators.
pub struct FollowMax {
    /// Network size.
    pub n: usize,
    /// Counter modulus.
    pub c: u64,
}

impl SyncProtocol for FollowMax {
    type State = u64;

    fn n(&self) -> usize {
        self.n
    }

    fn step(&self, _: NodeId, view: &MessageView<'_, u64>, _: &mut StepContext<'_>) -> u64 {
        let max = view.iter().max().copied().unwrap();
        (max + 1) % self.c
    }

    fn output(&self, _: NodeId, s: &u64) -> u64 {
        *s
    }

    fn random_state(&self, _: NodeId, rng: &mut dyn RngCore) -> u64 {
        rng.next_u64() % self.c
    }
}

impl Counter for FollowMax {
    fn modulus(&self) -> u64 {
        self.c
    }

    fn resilience(&self) -> usize {
        0
    }

    fn state_bits(&self) -> u32 {
        bits_for(self.c)
    }

    fn stabilization_bound(&self) -> u64 {
        1
    }

    fn encode_state(&self, _: NodeId, s: &u64, out: &mut BitVec) {
        out.push_bits(*s, self.state_bits());
    }

    fn decode_state(&self, _: NodeId, input: &mut BitReader<'_>) -> Result<u64, CodecError> {
        input.read_bits(self.state_bits())
    }
}

impl Fingerprint for FollowMax {
    fn deterministic_transition(&self) -> bool {
        // `step` is max+1 over the view: pure, no randomness consumed.
        true
    }
}
