//! The Byzantine adversary interface: the borrow-based message plane.

use sc_protocol::{BitVec, MessageSource, NodeId};

use crate::workspace::{FaultMask, StatePool};

/// Whether an adversary's internal state can be captured for configuration
/// fingerprinting (see [`Adversary::snapshot`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotSupport {
    /// The strategy is a deterministic function of the written snapshot and
    /// the observable round state: two rounds with equal snapshots and equal
    /// correct-node configurations behave identically forever after.
    Deterministic,
    /// The strategy is RNG-driven (or otherwise not capturable); engines
    /// must not take cycle-based early exits under it.
    Opaque,
}

/// Write-side of [`Adversary::snapshot`]: a bit-exact sink for the
/// adversary's round-relevant internal state.
///
/// The engine backs the writer with the protocol's state digest
/// ([`Fingerprint::fingerprint_state`](sc_protocol::Fingerprint)), so
/// snapshots that contain protocol states (a replay ring, a sleeper's
/// honestly simulated states) are encoded with the same injective codec as
/// the configuration itself.
pub struct AdversarySnapshot<'a, S> {
    bits: &'a mut BitVec,
    encode: &'a mut dyn FnMut(NodeId, &S, &mut BitVec),
}

impl<S> std::fmt::Debug for AdversarySnapshot<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdversarySnapshot")
            .field("bits", &self.bits.len())
            .finish_non_exhaustive()
    }
}

impl<'a, S> AdversarySnapshot<'a, S> {
    /// A writer appending to `bits`, digesting states through `encode`.
    pub fn new(bits: &'a mut BitVec, encode: &'a mut dyn FnMut(NodeId, &S, &mut BitVec)) -> Self {
        AdversarySnapshot { bits, encode }
    }

    /// Appends a raw 64-bit word (counters, flags, lease tokens).
    pub fn word(&mut self, value: u64) {
        self.bits.push_bits(value, 64);
    }

    /// Appends the digest of a protocol state held by the adversary,
    /// encoded as belonging to `node` (the codec may be node-dependent).
    pub fn state(&mut self, node: NodeId, state: &S) {
        (self.encode)(node, state, self.bits);
    }

    /// Appends a [`MessageSource`] lease token. Leases name immutable slots
    /// of one execution's pool, so the token is a faithful stand-in for the
    /// state it resolves to within that execution.
    pub fn source(&mut self, source: MessageSource) {
        let (tag, payload) = match source {
            MessageSource::Broadcast(donor) => (0u64, donor.index() as u64),
            MessageSource::Pinned(slot) => (1, u64::from(slot)),
            MessageSource::Fabricated(slot) => (2, u64::from(slot)),
        };
        self.bits.push_bits(tag, 2);
        self.bits.push_bits(payload, 64);
    }
}

/// Everything the adversary can observe about one round.
///
/// The adversary of the paper is *omniscient* (it sees the full state of all
/// correct nodes), *adaptive* (it may choose messages based on that state)
/// and *rushing* (it acts after seeing the honest broadcasts of the current
/// round — which is what `honest` contains).
#[derive(Debug)]
pub struct RoundContext<'a, S> {
    /// Round number, counted from the (arbitrary) initial configuration.
    /// Only for bookkeeping: protocols never see it.
    pub round: u64,
    /// States broadcast by all nodes this round. Entries of faulty nodes are
    /// stale placeholders and carry no meaning.
    pub honest: &'a [S],
    /// Sorted identifiers of the faulty nodes.
    pub faulty: &'a [NodeId],
    /// Bitmap over the network with exactly the nodes of `faulty` set —
    /// engines precompute it once per execution so
    /// [`RoundContext::is_faulty`] is an O(1) word lookup instead of a
    /// per-call `binary_search`.
    pub mask: &'a FaultMask,
}

impl<'a, S> RoundContext<'a, S> {
    /// Whether `node` is faulty in this execution (O(1) bitmap lookup).
    #[inline]
    pub fn is_faulty(&self, node: NodeId) -> bool {
        self.mask.contains(node.index())
    }

    /// Iterates over the identifiers of correct nodes, filtering through the
    /// precomputed fault bitmap — no per-item search.
    pub fn honest_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.honest.len())
            .map(NodeId::new)
            .filter(move |id| !self.mask.contains(id.index()))
    }

    /// Number of correct nodes this round.
    pub fn honest_count(&self) -> usize {
        self.honest.len() - self.faulty.len()
    }
}

/// A Byzantine fault strategy: decides, for every round, which state each
/// faulty node presents to each receiver.
///
/// Implementations may keep history (for replay attacks) and use their own
/// randomness. The simulator calls [`Adversary::begin_round`] once per round
/// before delivering messages, then [`Adversary::message`] once per
/// (faulty sender, correct receiver) pair.
///
/// # The borrow-based message plane
///
/// [`Adversary::message`] does **not** return an owned state; it returns a
/// [`MessageSource`] lease the engine resolves zero-copy when building the
/// receiver's view:
///
/// * [`MessageSource::Broadcast`] echoes a state broadcast this round —
///   equivocation and echo attacks permute *existing* honest states without
///   a single clone;
/// * [`MessageSource::Pinned`] / [`MessageSource::Fabricated`] name slots of
///   the engine's [`StatePool`], where genuinely fabricated states are
///   materialised once per execution ([`StatePool::pin`]) or once per round
///   ([`StatePool::fabricate`]) — never once per receiver.
///
/// Leases are pool-specific: an adversary instance drives exactly one
/// execution, and tokens must not be carried across executions.
///
/// The set of faulty nodes is fixed for an execution — the paper's fault
/// model is static (`F ⊆ [n]`, `|F| ≤ f`), and self-stabilisation covers
/// "recovery after the last transient fault" by the arbitrary initial state.
pub trait Adversary<S> {
    /// The sorted, duplicate-free set of faulty nodes.
    fn faulty(&self) -> &[NodeId];

    /// Hook invoked once at the start of every round, before any
    /// [`Adversary::message`] call for that round. The engine has already
    /// recycled the round half of `pool`; states this round's messages
    /// share should be fabricated here, once.
    fn begin_round(&mut self, ctx: &RoundContext<'_, S>, pool: &mut StatePool<S>) {
        let _ = (ctx, pool);
    }

    /// The lease for the state faulty node `from` sends to correct node
    /// `to` this round.
    fn message(
        &mut self,
        from: NodeId,
        to: NodeId,
        ctx: &RoundContext<'_, S>,
        pool: &mut StatePool<S>,
    ) -> MessageSource;

    /// The **snapshot capability** of the early-decision engine: writes the
    /// strategy's round-relevant internal state into `out` and says whether
    /// that capture is faithful.
    ///
    /// `round` is the number of completed rounds — the index the *next*
    /// [`Adversary::begin_round`] will observe. Time-dependent strategies
    /// (a sleeper waking at a fixed round) must fold the remaining distance
    /// to their trigger into the snapshot, so that configurations at
    /// different absolute times never alias.
    ///
    /// Returning [`SnapshotSupport::Deterministic`] asserts: given equal
    /// snapshots and equal correct-node configurations (plus the execution's
    /// immutable pinned pool), the strategy makes identical decisions in all
    /// future rounds. RNG-driven strategies keep the default
    /// [`SnapshotSupport::Opaque`], which soundly disables cycle-based early
    /// exits for the execution.
    fn snapshot(&self, round: u64, out: &mut AdversarySnapshot<'_, S>) -> SnapshotSupport {
        let _ = (round, out);
        SnapshotSupport::Opaque
    }
}

impl<S, A: Adversary<S> + ?Sized> Adversary<S> for Box<A> {
    fn faulty(&self) -> &[NodeId] {
        (**self).faulty()
    }

    fn begin_round(&mut self, ctx: &RoundContext<'_, S>, pool: &mut StatePool<S>) {
        (**self).begin_round(ctx, pool);
    }

    fn message(
        &mut self,
        from: NodeId,
        to: NodeId,
        ctx: &RoundContext<'_, S>,
        pool: &mut StatePool<S>,
    ) -> MessageSource {
        (**self).message(from, to, ctx, pool)
    }

    fn snapshot(&self, round: u64, out: &mut AdversarySnapshot<'_, S>) -> SnapshotSupport {
        (**self).snapshot(round, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_context_classifies_nodes() {
        let honest = vec![0u64; 4];
        let faulty = vec![NodeId::new(2)];
        let mask = FaultMask::from_sorted(&faulty, honest.len());
        let ctx = RoundContext {
            round: 0,
            honest: &honest,
            faulty: &faulty,
            mask: &mask,
        };
        assert!(ctx.is_faulty(NodeId::new(2)));
        assert!(!ctx.is_faulty(NodeId::new(0)));
        assert_eq!(ctx.honest_count(), 3);
        let ids: Vec<usize> = ctx.honest_ids().map(NodeId::index).collect();
        assert_eq!(ids, vec![0, 1, 3]);
    }
}
