//! The Byzantine adversary interface.

use sc_protocol::NodeId;

/// Everything the adversary can observe about one round.
///
/// The adversary of the paper is *omniscient* (it sees the full state of all
/// correct nodes), *adaptive* (it may choose messages based on that state)
/// and *rushing* (it acts after seeing the honest broadcasts of the current
/// round — which is what `honest` contains).
#[derive(Debug)]
pub struct RoundContext<'a, S> {
    /// Round number, counted from the (arbitrary) initial configuration.
    /// Only for bookkeeping: protocols never see it.
    pub round: u64,
    /// States broadcast by all nodes this round. Entries of faulty nodes are
    /// stale placeholders and carry no meaning.
    pub honest: &'a [S],
    /// Sorted identifiers of the faulty nodes.
    pub faulty: &'a [NodeId],
}

impl<'a, S> RoundContext<'a, S> {
    /// Whether `node` is faulty in this execution.
    pub fn is_faulty(&self, node: NodeId) -> bool {
        self.faulty.binary_search(&node).is_ok()
    }

    /// Iterates over the identifiers of correct nodes.
    pub fn honest_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.honest.len())
            .map(NodeId::new)
            .filter(move |id| !self.is_faulty(*id))
    }
}

/// A Byzantine fault strategy: decides, for every round, which state each
/// faulty node presents to each receiver.
///
/// Implementations may keep history (for replay attacks) and use their own
/// randomness. The simulator calls [`Adversary::begin_round`] once per round
/// before delivering messages, then [`Adversary::message`] once per
/// (faulty sender, correct receiver) pair.
///
/// The set of faulty nodes is fixed for an execution — the paper's fault
/// model is static (`F ⊆ [n]`, `|F| ≤ f`), and self-stabilisation covers
/// "recovery after the last transient fault" by the arbitrary initial state.
pub trait Adversary<S> {
    /// The sorted, duplicate-free set of faulty nodes.
    fn faulty(&self) -> &[NodeId];

    /// Hook invoked once at the start of every round, before any
    /// [`Adversary::message`] call for that round.
    fn begin_round(&mut self, ctx: &RoundContext<'_, S>) {
        let _ = ctx;
    }

    /// The state that faulty node `from` sends to correct node `to`.
    fn message(&mut self, from: NodeId, to: NodeId, ctx: &RoundContext<'_, S>) -> S;
}

impl<S, A: Adversary<S> + ?Sized> Adversary<S> for Box<A> {
    fn faulty(&self) -> &[NodeId] {
        (**self).faulty()
    }

    fn begin_round(&mut self, ctx: &RoundContext<'_, S>) {
        (**self).begin_round(ctx);
    }

    fn message(&mut self, from: NodeId, to: NodeId, ctx: &RoundContext<'_, S>) -> S {
        (**self).message(from, to, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_context_classifies_nodes() {
        let honest = vec![0u64; 4];
        let faulty = vec![NodeId::new(2)];
        let ctx = RoundContext {
            round: 0,
            honest: &honest,
            faulty: &faulty,
        };
        assert!(ctx.is_faulty(NodeId::new(2)));
        assert!(!ctx.is_faulty(NodeId::new(0)));
        let ids: Vec<usize> = ctx.honest_ids().map(NodeId::index).collect();
        assert_eq!(ids, vec![0, 1, 3]);
    }
}
