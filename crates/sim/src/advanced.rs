//! Advanced adversary strategies: protocol-simulating sleepers and greedy
//! lookahead attackers.
//!
//! Unlike the stateless strategies in [`crate::adversaries`], these run the
//! protocol themselves: the [`sleeper`] executes it honestly on behalf of
//! the faulty nodes until a wake round (so stabilisation happens with the
//! faults invisible, and the attack starts *after* agreement — the exact
//! scenario of Lemma 5), and the [`greedy`] attacker simulates every correct
//! node one round ahead under a set of candidate scripts and plays whichever
//! maximises disagreement. Both speak the borrowed message plane: donor
//! faces are leased as broadcast echoes, and only protocol-simulated or
//! freshly sampled states are fabricated — once per round, not per receiver.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sc_protocol::{MessageSource, MessageView, NodeId, StepContext, SyncProtocol};

use crate::adversaries::{normalize_faults, FacePair};
use crate::adversary::{Adversary, AdversarySnapshot, RoundContext, SnapshotSupport};
use crate::workspace::StatePool;

/// Faulty nodes execute the protocol *honestly* until `wake_round`, then
/// switch to the strategy produced by `attack`.
///
/// A self-stabilising counter will stabilise long before a late wake round
/// — the faults are literally invisible — so this strategy tests the other
/// half of the specification: once counting has begun, the sudden onset of
/// Byzantine behaviour must not break it (closure / Lemma 5).
pub fn sleeper<'a, P, A>(
    protocol: &'a P,
    faulty: impl IntoIterator<Item = usize>,
    wake_round: u64,
    attack: A,
    seed: u64,
) -> Sleeper<'a, P, A>
where
    P: SyncProtocol,
    A: Adversary<P::State>,
{
    let faulty = normalize_faults(faulty);
    let mut rng = SmallRng::seed_from_u64(seed);
    let states = faulty
        .iter()
        .map(|&id| protocol.random_state(id, &mut rng))
        .collect();
    Sleeper {
        protocol,
        faulty,
        wake_round,
        attack,
        states,
        next: None,
        leases: Vec::new(),
        rng,
    }
}

/// Adversary produced by [`sleeper`].
pub struct Sleeper<'a, P: SyncProtocol, A> {
    protocol: &'a P,
    faulty: Vec<NodeId>,
    wake_round: u64,
    attack: A,
    /// The honest-execution states of the sleeping nodes (parallel to
    /// `faulty`) at the *start* of the current round — these are what gets
    /// broadcast; the post-step states are staged in `next` until the
    /// following round so the sleeper is never a round ahead of the network.
    states: Vec<P::State>,
    next: Option<Vec<P::State>>,
    /// This round's pool leases for `states`, parallel to `faulty`.
    leases: Vec<MessageSource>,
    rng: SmallRng,
}

impl<'a, P: SyncProtocol, A> std::fmt::Debug for Sleeper<'a, P, A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sleeper")
            .field("faulty", &self.faulty)
            .field("wake_round", &self.wake_round)
            .finish_non_exhaustive()
    }
}

impl<'a, P, A> Adversary<P::State> for Sleeper<'a, P, A>
where
    P: SyncProtocol,
    A: Adversary<P::State>,
{
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn begin_round(&mut self, ctx: &RoundContext<'_, P::State>, pool: &mut StatePool<P::State>) {
        // Promote last round's staged step to the broadcast state.
        if let Some(next) = self.next.take() {
            self.states = next;
        }
        if ctx.round >= self.wake_round {
            self.attack.begin_round(ctx, pool);
            return;
        }
        // Lease this round's honestly-maintained states: one fabrication per
        // sleeping node per round, shared by every receiver.
        self.leases.clear();
        self.leases
            .extend(self.states.iter().map(|s| pool.fabricate(s.clone())));
        // Execute the protocol honestly for every sleeping node: its view
        // is the honest broadcast with the sleepers' entries replaced by
        // their own (honestly maintained) start-of-round states — borrowed
        // straight out of `self.states`, no clone per round.
        let overrides: Vec<(NodeId, &P::State)> = self
            .faulty
            .iter()
            .zip(&self.states)
            .map(|(&id, s)| (id, s))
            .collect();
        let view = MessageView::with_borrowed(ctx.honest, &overrides);
        let mut next = Vec::with_capacity(self.states.len());
        for &id in &self.faulty {
            let mut step_ctx = StepContext::new(&mut self.rng);
            next.push(self.protocol.step(id, &view, &mut step_ctx));
        }
        self.next = Some(next);
    }

    fn message(
        &mut self,
        from: NodeId,
        to: NodeId,
        ctx: &RoundContext<'_, P::State>,
        pool: &mut StatePool<P::State>,
    ) -> MessageSource {
        if ctx.round >= self.wake_round {
            return self.attack.message(from, to, ctx, pool);
        }
        let idx = self
            .faulty
            .binary_search(&from)
            .expect("message from non-faulty node");
        self.leases[idx]
    }

    fn snapshot(&self, round: u64, out: &mut AdversarySnapshot<'_, P::State>) -> SnapshotSupport {
        // The sleeper's behaviour depends on absolute time only through the
        // distance to the wake round: folding the countdown in keeps
        // still-sleeping configurations from aliasing across rounds (it
        // strictly decreases until the attack starts), after which it is a
        // constant 0 and the attack's own snapshot carries the state.
        //
        // Caveat: the honest simulation draws from this adversary's private
        // RNG only if the protocol does — and the early-decision engine
        // already requires a deterministic transition to fingerprint at all.
        out.word(self.wake_round.saturating_sub(round));
        out.word(self.states.len() as u64);
        for (id, state) in self.faulty.iter().zip(&self.states) {
            out.state(*id, state);
        }
        match &self.next {
            Some(next) => {
                out.word(1);
                for (id, state) in self.faulty.iter().zip(next) {
                    out.state(*id, state);
                }
            }
            None => out.word(0),
        }
        self.attack.snapshot(round, out)
    }
}

/// One-step greedy lookahead: each round the adversary considers a set of
/// candidate scripts (two-faced splits of donor/random states), simulates
/// every correct node one round ahead under each script, and commits to the
/// script producing the most output disagreement.
///
/// This is the strongest *generic* strategy in the workspace — it uses full
/// knowledge of the protocol's transition function, like the adversary in
/// the model — at a cost of `candidates × n` extra protocol steps per round.
pub fn greedy<'a, P: SyncProtocol>(
    protocol: &'a P,
    faulty: impl IntoIterator<Item = usize>,
    candidates: usize,
    seed: u64,
) -> Greedy<'a, P> {
    Greedy {
        protocol,
        faulty: normalize_faults(faulty),
        candidates: candidates.max(1),
        rng: SmallRng::seed_from_u64(seed),
        faces: None,
    }
}

/// A candidate face: an honest donor (leased as a broadcast echo when it
/// wins) or a freshly sampled state (fabricated into the pool when it wins).
enum Candidate<S> {
    Donor(NodeId),
    Fresh(S),
}

impl<S> Candidate<S> {
    /// The concrete state this face shows, for lookahead scoring.
    fn state<'a>(&'a self, honest: &'a [S]) -> &'a S {
        match self {
            Candidate::Donor(id) => &honest[id.index()],
            Candidate::Fresh(s) => s,
        }
    }

    /// Commits the winning face to the pool as a lease.
    fn lease(self, pool: &mut StatePool<S>) -> MessageSource {
        match self {
            Candidate::Donor(id) => MessageSource::Broadcast(id),
            Candidate::Fresh(s) => pool.fabricate(s),
        }
    }
}

/// A candidate equivocation script (the two faces) with its lookahead
/// score.
type ScoredFaces<S> = ((Candidate<S>, Candidate<S>), usize);

/// Adversary produced by [`greedy`].
pub struct Greedy<'a, P: SyncProtocol> {
    protocol: &'a P,
    faulty: Vec<NodeId>,
    candidates: usize,
    rng: SmallRng,
    faces: Option<FacePair>,
}

impl<'a, P: SyncProtocol> std::fmt::Debug for Greedy<'a, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Greedy")
            .field("faulty", &self.faulty)
            .field("candidates", &self.candidates)
            .finish_non_exhaustive()
    }
}

impl<'a, P: SyncProtocol> Greedy<'a, P> {
    /// Scores a candidate script: simulate every correct node one round
    /// ahead and count distinct outputs (more = better for the adversary),
    /// breaking ties towards *non-incrementing* behaviour.
    fn score(
        &mut self,
        ctx: &RoundContext<'_, P::State>,
        faces: &(Candidate<P::State>, Candidate<P::State>),
    ) -> usize {
        let mut outputs = Vec::new();
        let mut overrides: Vec<(NodeId, &P::State)> = Vec::with_capacity(self.faulty.len());
        for id in ctx.honest_ids() {
            let face = if id.index() % 2 == 0 {
                faces.0.state(ctx.honest)
            } else {
                faces.1.state(ctx.honest)
            };
            overrides.clear();
            overrides.extend(self.faulty.iter().map(|&from| (from, face)));
            let view = MessageView::with_borrowed(ctx.honest, &overrides);
            let mut step_ctx = StepContext::new(&mut self.rng);
            let next = self.protocol.step(id, &view, &mut step_ctx);
            outputs.push(self.protocol.output(id, &next));
        }
        outputs.sort_unstable();
        outputs.dedup();
        outputs.len()
    }
}

impl<'a, P: SyncProtocol> Adversary<P::State> for Greedy<'a, P> {
    fn faulty(&self) -> &[NodeId] {
        &self.faulty
    }

    fn begin_round(&mut self, ctx: &RoundContext<'_, P::State>, pool: &mut StatePool<P::State>) {
        let honest: Vec<NodeId> = ctx.honest_ids().collect();
        let mut best: Option<ScoredFaces<P::State>> = None;
        for _ in 0..self.candidates {
            // Candidate faces: a mix of honest donors and random states.
            let pick = |rng: &mut SmallRng, protocol: &P| -> Candidate<P::State> {
                if rng.random_bool(0.5) && !honest.is_empty() {
                    Candidate::Donor(honest[rng.random_range(0..honest.len())])
                } else {
                    Candidate::Fresh(protocol.random_state(NodeId::new(0), rng))
                }
            };
            let faces = (
                pick(&mut self.rng, self.protocol),
                pick(&mut self.rng, self.protocol),
            );
            let score = self.score(ctx, &faces);
            if best.as_ref().is_none_or(|(_, s)| score > *s) {
                best = Some((faces, score));
            }
        }
        self.faces = best.map(|((even, odd), _)| FacePair {
            even: even.lease(pool),
            odd: odd.lease(pool),
        });
    }

    fn message(
        &mut self,
        _from: NodeId,
        to: NodeId,
        _ctx: &RoundContext<'_, P::State>,
        _pool: &mut StatePool<P::State>,
    ) -> MessageSource {
        self.faces
            .as_ref()
            .expect("begin_round not called")
            .for_receiver(to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversaries;
    use rand::RngCore;
    use sc_protocol::Counter;

    /// Fault-free self-stabilising counter used as the subject.
    #[derive(Clone, Debug)]
    struct FollowMin {
        n: usize,
        c: u64,
    }

    impl SyncProtocol for FollowMin {
        type State = u64;
        fn n(&self) -> usize {
            self.n
        }
        fn step(&self, _: NodeId, view: &MessageView<'_, u64>, _: &mut StepContext<'_>) -> u64 {
            (view.iter().min().copied().unwrap() + 1) % self.c
        }
        fn output(&self, _: NodeId, s: &u64) -> u64 {
            *s
        }
        fn random_state(&self, _: NodeId, rng: &mut dyn RngCore) -> u64 {
            rng.next_u64() % self.c
        }
    }

    impl Counter for FollowMin {
        fn modulus(&self) -> u64 {
            self.c
        }
        fn resilience(&self) -> usize {
            0
        }
        fn state_bits(&self) -> u32 {
            sc_protocol::bits_for(self.c)
        }
        fn stabilization_bound(&self) -> u64 {
            1
        }
        fn encode_state(&self, _: NodeId, s: &u64, out: &mut sc_protocol::BitVec) {
            out.push_bits(*s, self.state_bits());
        }
        fn decode_state(
            &self,
            _: NodeId,
            r: &mut sc_protocol::BitReader<'_>,
        ) -> Result<u64, sc_protocol::CodecError> {
            r.read_bits(self.state_bits())
        }
    }

    #[test]
    fn sleeper_behaves_honestly_before_waking() {
        // FollowMin has resilience 0, so a *sleeping* fault must not disturb
        // it at all: the system stabilises as if fault-free.
        let p = FollowMin { n: 4, c: 8 };
        let attack = adversaries::fixed([2], 0u64);
        let adv = sleeper(&p, [2], 1_000, attack, 5);
        let mut sim = crate::Simulation::new(&p, adv, 9);
        let report = sim.run_until_stable(64).unwrap();
        assert!(report.stabilization_round <= 2);
    }

    #[test]
    fn sleeper_attacks_after_waking() {
        // After the wake round the fixed-0 attack pins FollowMin's minimum,
        // freezing the counter — detectable as a counting violation.
        let p = FollowMin { n: 4, c: 8 };
        let attack = adversaries::fixed([2], 0u64);
        let adv = sleeper(&p, [2], 20, attack, 5);
        let mut sim = crate::Simulation::new(&p, adv, 9);
        sim.run(20);
        let trace = sim.run_trace(30);
        let frozen = (0..trace.len())
            .filter(|&r| trace.agreed_value(r) == Some(1))
            .count();
        assert!(
            frozen >= 25,
            "attack after waking should pin the counter near 1"
        );
    }

    /// Zero-resilience max-follower: splittable by sending different large
    /// values to the two receiver parities.
    #[derive(Clone, Debug)]
    struct FollowMax {
        n: usize,
        c: u64,
    }

    impl SyncProtocol for FollowMax {
        type State = u64;
        fn n(&self) -> usize {
            self.n
        }
        fn step(&self, _: NodeId, view: &MessageView<'_, u64>, _: &mut StepContext<'_>) -> u64 {
            (view.iter().max().copied().unwrap() + 1) % self.c
        }
        fn output(&self, _: NodeId, s: &u64) -> u64 {
            *s
        }
        fn random_state(&self, _: NodeId, rng: &mut dyn RngCore) -> u64 {
            rng.next_u64() % self.c
        }
    }

    #[test]
    fn greedy_splits_zero_resilience_counters() {
        // Greedy lookahead must keep FollowMax (resilience 0) from counting:
        // a pair of distinct faces above the honest maximum splits the
        // parities, and the lookahead score selects such pairs whenever the
        // candidate pool contains one. A small modulus keeps the honest
        // maximum wrapping into range so split opportunities keep recurring.
        let p = FollowMax { n: 4, c: 64 };
        let adv = greedy(&p, [1], 8, 3);
        let mut sim = crate::Simulation::new(&p, adv, 11);
        let trace = sim.run_trace(80);
        let disagreements = (0..trace.len())
            .filter(|&r| trace.agreed_value(r).is_none())
            .count();
        assert!(
            disagreements > 15,
            "greedy adversary failed to split: {disagreements}"
        );

        // Sanity: the same protocol with no faults counts from round 1 on.
        let mut clean = crate::Simulation::new(&p, adversaries::none(), 11);
        let trace = clean.run_trace(64);
        let report = crate::detect_stabilization(&trace, 64, 8).unwrap();
        assert!(report.stabilization_round <= 1);
    }
}
