//! Property-based tests for the protocol substrate.

use proptest::prelude::*;
use sc_protocol::{bits_for, inc_mod, majority, majority_or, BitVec, Interval, Tally};

proptest! {
    /// Round trip: any sequence of (value, width) fields written to a
    /// `BitVec` reads back identically, and the length is the sum of widths.
    #[test]
    fn bitvec_round_trips_any_field_sequence(
        fields in proptest::collection::vec((any::<u64>(), 0u32..=64), 0..20)
    ) {
        let mut bits = BitVec::new();
        let mut expect_len = 0usize;
        let mut written = Vec::new();
        for (value, width) in &fields {
            let masked = if *width == 64 { *value } else { value & ((1u64 << width) - 1) };
            bits.push_bits(masked, *width);
            written.push((masked, *width));
            expect_len += *width as usize;
        }
        prop_assert_eq!(bits.len(), expect_len);
        let mut reader = bits.reader();
        for (value, width) in written {
            prop_assert_eq!(reader.read_bits(width).unwrap(), value);
        }
        prop_assert_eq!(reader.remaining(), 0);
    }

    /// A strict majority, when it exists, occurs more than half the time;
    /// and any value occurring more than half the time is returned.
    #[test]
    fn majority_is_sound_and_complete(values in proptest::collection::vec(0u64..5, 1..30)) {
        let total = values.len();
        match majority(values.iter().copied()) {
            Some(winner) => {
                let count = values.iter().filter(|&&v| v == winner).count();
                prop_assert!(2 * count > total);
            }
            None => {
                for candidate in 0..5u64 {
                    let count = values.iter().filter(|&&v| v == candidate).count();
                    prop_assert!(2 * count <= total);
                }
            }
        }
    }

    /// `majority_or` equals `majority` with a default.
    #[test]
    fn majority_or_matches_majority(values in proptest::collection::vec(0u64..4, 0..20)) {
        let expected = majority(values.iter().copied()).unwrap_or(99);
        prop_assert_eq!(majority_or(values.iter().copied(), 99), expected);
    }

    /// Tally counts match naive counting, and the min-over-threshold query
    /// returns the smallest qualifying value.
    #[test]
    fn tally_matches_naive_counting(
        values in proptest::collection::vec(0u64..6, 0..40),
        threshold in 0usize..10,
    ) {
        let tally: Tally = values.iter().copied().collect();
        prop_assert_eq!(tally.total(), values.len());
        for candidate in 0..6u64 {
            let naive = values.iter().filter(|&&v| v == candidate).count();
            prop_assert_eq!(tally.count(candidate), naive);
        }
        let naive_min = (0..6u64)
            .find(|&c| values.iter().filter(|&&v| v == c).count() > threshold);
        prop_assert_eq!(tally.min_value_with_count_over(threshold), naive_min);
    }

    /// `inc_mod` is a bijection on `[m]` with a single wrap point.
    #[test]
    fn inc_mod_is_cyclic(m in 1u64..1000, v in 0u64..1000) {
        let v = v % m;
        let next = inc_mod(v, m);
        prop_assert!(next < m);
        prop_assert_eq!(next, (v + 1) % m);
    }

    /// `bits_for` is the minimal width: `values - 1` fits, `2^(bits) ≥ values`.
    #[test]
    fn bits_for_is_minimal(values in 1u64..u64::MAX) {
        let w = bits_for(values);
        if w < 64 {
            prop_assert!(1u128 << w >= values as u128);
        }
        if w > 0 {
            prop_assert!((1u128 << (w - 1)) < values as u128);
        }
    }

    /// Interval intersection is commutative, contained in both operands,
    /// and exact on lengths for nested intervals.
    #[test]
    fn interval_intersection_laws(a in 0u64..100, b in 0u64..100, c in 0u64..100, d in 0u64..100) {
        let x = Interval::new(a.min(b), a.max(b));
        let y = Interval::new(c.min(d), c.max(d));
        let xy = x.intersect(y);
        let yx = y.intersect(x);
        prop_assert_eq!(xy, yx);
        for t in xy.start..xy.end {
            prop_assert!(x.contains(t) && y.contains(t));
        }
        prop_assert!(xy.len() <= x.len() && xy.len() <= y.len());
    }
}
