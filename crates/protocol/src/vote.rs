//! Majority votes and tallies.
//!
//! The boosting construction (§3.3) repeatedly takes majority votes over
//! received values. The paper's `majority` evaluates to a value `a` only if
//! `a` occurs *strictly more* than half the time, and is otherwise
//! unconstrained (`∗`) — implementations then default to an arbitrary fixed
//! value. We surface the unconstrained case as `None` so call sites choose
//! their default explicitly.

use std::collections::BTreeMap;

/// Returns the strict-majority value of `values`, if one exists.
///
/// A value wins only when it occurs more than `len/2` times; with no such
/// value the paper's majority function is unconstrained and we return
/// `None`.
///
/// # Example
///
/// ```
/// use sc_protocol::majority;
///
/// assert_eq!(majority([2u64, 2, 2, 1]), Some(2));
/// assert_eq!(majority([2u64, 2, 1, 1]), None); // exactly half is not enough
/// assert_eq!(majority(Vec::<u64>::new()), None);
/// ```
pub fn majority<I, T>(values: I) -> Option<T>
where
    I: IntoIterator<Item = T>,
    T: Ord,
{
    let mut counts: BTreeMap<T, usize> = BTreeMap::new();
    let mut total = 0usize;
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
        total += 1;
    }
    counts
        .into_iter()
        .find(|(_, count)| 2 * count > total)
        .map(|(value, _)| value)
}

/// Returns the strict-majority value of `values`, or `default` when no
/// strict majority exists.
///
/// This matches the paper's advice of "defaulting to, e.g., 0, when no such
/// majority is found".
///
/// # Example
///
/// ```
/// use sc_protocol::majority_or;
///
/// assert_eq!(majority_or([5u64, 5, 1], 0), 5);
/// assert_eq!(majority_or([5u64, 1], 0), 0);
/// ```
pub fn majority_or<I>(values: I, default: u64) -> u64
where
    I: IntoIterator<Item = u64>,
{
    majority(values).unwrap_or(default)
}

/// An ordered tally of `u64` values.
///
/// Drives the phase-king instruction sets of Table 2, which need the count
/// `z_j` of each received value `j`, the threshold tests `z_j ≥ N − F` and
/// `z_j > F`, and `min{j : z_j > F}`. Values are kept in increasing order so
/// the minimum query is a scan; the reset state `∞` is encoded by callers as
/// `u64::MAX` and therefore naturally sorts last.
///
/// # Example
///
/// ```
/// use sc_protocol::Tally;
///
/// let mut z = Tally::new();
/// for v in [4u64, 4, 9, u64::MAX] {
///     z.add(v);
/// }
/// assert_eq!(z.total(), 4);
/// assert_eq!(z.count(4), 2);
/// assert_eq!(z.min_value_with_count_over(1), Some(4));
/// assert_eq!(z.min_value_with_count_over(2), None);
/// assert_eq!(z.majority(), None);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    counts: BTreeMap<u64, usize>,
    total: usize,
}

impl Tally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Tally::default()
    }

    /// Builds a tally from an iterator of values.
    pub fn from_values<I: IntoIterator<Item = u64>>(values: I) -> Self {
        let mut tally = Tally::new();
        for v in values {
            tally.add(v);
        }
        tally
    }

    /// Records one occurrence of `value`.
    pub fn add(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of occurrences of `value` (the paper's `z_value`).
    pub fn count(&self, value: u64) -> usize {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Total number of recorded values.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The smallest value occurring strictly more than `threshold` times:
    /// `min{j : z_j > threshold}`.
    pub fn min_value_with_count_over(&self, threshold: usize) -> Option<u64> {
        self.counts
            .iter()
            .find(|(_, &count)| count > threshold)
            .map(|(&value, _)| value)
    }

    /// The strict-majority value, if any.
    pub fn majority(&self) -> Option<u64> {
        self.counts
            .iter()
            .find(|(_, &count)| 2 * count > self.total)
            .map(|(&value, _)| value)
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }
}

impl FromIterator<u64> for Tally {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Tally::from_values(iter)
    }
}

impl Extend<u64> for Tally {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_requires_strict_majority() {
        assert_eq!(majority([1u64, 1, 2, 2]), None);
        assert_eq!(majority([1u64, 1, 1, 2]), Some(1));
        assert_eq!(majority([7u64]), Some(7));
    }

    #[test]
    fn majority_on_non_numeric_ord_types() {
        assert_eq!(majority(["a", "b", "a"]), Some("a"));
    }

    #[test]
    fn majority_or_defaults() {
        assert_eq!(majority_or([], 42), 42);
        assert_eq!(majority_or([3, 3, 3, 1, 2], 42), 3);
    }

    #[test]
    fn tally_counts_and_thresholds() {
        let z: Tally = [5u64, 5, 5, 8, 8, u64::MAX].into_iter().collect();
        assert_eq!(z.total(), 6);
        assert_eq!(z.count(5), 3);
        assert_eq!(z.count(8), 2);
        assert_eq!(z.count(0), 0);
        assert_eq!(z.min_value_with_count_over(2), Some(5));
        assert_eq!(z.min_value_with_count_over(1), Some(5));
        // Only the reset state (u64::MAX) would win here with threshold 0 for
        // large values; the scan returns the smallest qualifying value.
        assert_eq!(z.min_value_with_count_over(0), Some(5));
        assert_eq!(z.min_value_with_count_over(5), None);
    }

    #[test]
    fn tally_majority_matches_free_function() {
        let values = [9u64, 9, 9, 1, 2];
        let z = Tally::from_values(values);
        assert_eq!(z.majority(), majority(values));
    }

    #[test]
    fn infinity_sorts_last() {
        let z = Tally::from_values([u64::MAX, u64::MAX, 3]);
        // min over values with count > 1 is ∞ since only ∞ qualifies.
        assert_eq!(z.min_value_with_count_over(1), Some(u64::MAX));
        // 3 is found first when the threshold admits it.
        assert_eq!(z.min_value_with_count_over(0), Some(3));
    }

    #[test]
    fn extend_accumulates() {
        let mut z = Tally::new();
        z.extend([1u64, 1]);
        z.extend([2u64]);
        assert_eq!(z.total(), 3);
        assert_eq!(z.iter().collect::<Vec<_>>(), vec![(1, 2), (2, 1)]);
    }
}
