//! Majority votes and tallies.
//!
//! The boosting construction (§3.3) repeatedly takes majority votes over
//! received values. The paper's `majority` evaluates to a value `a` only if
//! `a` occurs *strictly more* than half the time, and is otherwise
//! unconstrained (`∗`) — implementations then default to an arbitrary fixed
//! value. We surface the unconstrained case as `None` so call sites choose
//! their default explicitly.

use std::collections::BTreeMap;

/// Returns the strict-majority value of `values`, if one exists.
///
/// A value wins only when it occurs more than `len/2` times; with no such
/// value the paper's majority function is unconstrained and we return
/// `None`.
///
/// # Example
///
/// ```
/// use sc_protocol::majority;
///
/// assert_eq!(majority([2u64, 2, 2, 1]), Some(2));
/// assert_eq!(majority([2u64, 2, 1, 1]), None); // exactly half is not enough
/// assert_eq!(majority(Vec::<u64>::new()), None);
/// ```
pub fn majority<I, T>(values: I) -> Option<T>
where
    I: IntoIterator<Item = T>,
    T: Ord,
{
    let mut counts: BTreeMap<T, usize> = BTreeMap::new();
    let mut total = 0usize;
    for v in values {
        *counts.entry(v).or_insert(0) += 1;
        total += 1;
    }
    counts
        .into_iter()
        .find(|(_, count)| 2 * count > total)
        .map(|(value, _)| value)
}

/// Returns the strict-majority value of `values`, or `default` when no
/// strict majority exists.
///
/// This matches the paper's advice of "defaulting to, e.g., 0, when no such
/// majority is found".
///
/// # Example
///
/// ```
/// use sc_protocol::majority_or;
///
/// assert_eq!(majority_or([5u64, 5, 1], 0), 5);
/// assert_eq!(majority_or([5u64, 1], 0), 0);
/// ```
pub fn majority_or<I>(values: I, default: u64) -> u64
where
    I: IntoIterator<Item = u64>,
{
    majority(values).unwrap_or(default)
}

/// An ordered tally of `u64` values.
///
/// Drives the phase-king instruction sets of Table 2, which need the count
/// `z_j` of each received value `j`, the threshold tests `z_j ≥ N − F` and
/// `z_j > F`, and `min{j : z_j > F}`. Values are kept in increasing order so
/// the minimum query is a scan; the reset state `∞` is encoded by callers as
/// `u64::MAX` and therefore naturally sorts last.
///
/// # Example
///
/// ```
/// use sc_protocol::Tally;
///
/// let mut z = Tally::new();
/// for v in [4u64, 4, 9, u64::MAX] {
///     z.add(v);
/// }
/// assert_eq!(z.total(), 4);
/// assert_eq!(z.count(4), 2);
/// assert_eq!(z.min_value_with_count_over(1), Some(4));
/// assert_eq!(z.min_value_with_count_over(2), None);
/// assert_eq!(z.majority(), None);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Tally {
    counts: BTreeMap<u64, usize>,
    total: usize,
}

impl Tally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Tally::default()
    }

    /// Builds a tally from an iterator of values.
    pub fn from_values<I: IntoIterator<Item = u64>>(values: I) -> Self {
        let mut tally = Tally::new();
        for v in values {
            tally.add(v);
        }
        tally
    }

    /// Records one occurrence of `value`.
    pub fn add(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
    }

    /// Number of occurrences of `value` (the paper's `z_value`).
    pub fn count(&self, value: u64) -> usize {
        self.counts.get(&value).copied().unwrap_or(0)
    }

    /// Total number of recorded values.
    pub fn total(&self) -> usize {
        self.total
    }

    /// The smallest value occurring strictly more than `threshold` times:
    /// `min{j : z_j > threshold}`.
    pub fn min_value_with_count_over(&self, threshold: usize) -> Option<u64> {
        self.counts
            .iter()
            .find(|(_, &count)| count > threshold)
            .map(|(&value, _)| value)
    }

    /// The strict-majority value, if any.
    pub fn majority(&self) -> Option<u64> {
        self.counts
            .iter()
            .find(|(_, &count)| 2 * count > self.total)
            .map(|(&value, _)| value)
    }

    /// Iterates over `(value, count)` pairs in increasing value order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, usize)> + '_ {
        self.counts.iter().map(|(&v, &c)| (v, c))
    }
}

impl FromIterator<u64> for Tally {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Tally::from_values(iter)
    }
}

impl Extend<u64> for Tally {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.add(v);
        }
    }
}

/// The vote-count queries the phase-king instruction sets consume.
///
/// Abstracting the queries lets the instruction executor run off either a
/// freshly built [`Tally`] (the reference path) or a shared-and-patched
/// [`DeltaTally`] (the prepared batch path) with identical semantics.
pub trait VoteCounts {
    /// Number of occurrences of `value` (the paper's `z_value`).
    fn count(&self, value: u64) -> usize;
    /// Total number of recorded values.
    fn total(&self) -> usize;
    /// `min{j : z_j > threshold}`.
    fn min_value_with_count_over(&self, threshold: usize) -> Option<u64>;
    /// The strict-majority value, if any.
    fn majority(&self) -> Option<u64> {
        self.min_value_with_count_over(self.total() / 2)
    }
}

impl VoteCounts for Tally {
    fn count(&self, value: u64) -> usize {
        Tally::count(self, value)
    }
    fn total(&self) -> usize {
        Tally::total(self)
    }
    fn min_value_with_count_over(&self, threshold: usize) -> Option<u64> {
        Tally::min_value_with_count_over(self, threshold)
    }
    fn majority(&self) -> Option<u64> {
        Tally::majority(self)
    }
}

/// A tally supporting cheap *add → query → undo* patching.
///
/// The boosting construction's majority votes are taken per receiver, but
/// the votes of honest senders are identical for every receiver — only the
/// ≤ `f` Byzantine overrides differ. A `DeltaTally` holds the shared honest
/// part, and each receiver temporarily [`add`](DeltaTally::add)s the faulty
/// votes, queries, then [`remove`](DeltaTally::remove)s them: `O(f)` work
/// per receiver instead of `O(n)`, with no allocation in the steady state.
///
/// Backed by a sorted `Vec` — for the tally sizes of a round (≤ `n`
/// entries) this is far faster than a tree map, and `min` queries are the
/// same ascending scan.
///
/// # Example
///
/// ```
/// use sc_protocol::{DeltaTally, VoteCounts as _};
///
/// let mut z = DeltaTally::from_values([4u64, 4, 9, 1]);
/// assert_eq!(z.majority(), None); // 2 of 4 is not strict
/// z.add(4);
/// assert_eq!(z.count(4), 3);
/// assert_eq!(z.majority(), Some(4)); // 3 of 5
/// z.remove(4); // undo: back to the shared honest part
/// assert_eq!(z.count(4), 2);
/// assert_eq!(z.majority(), None);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaTally {
    /// `(value, count)`, sorted by value, counts ≥ 1.
    counts: Vec<(u64, u32)>,
    total: usize,
}

impl DeltaTally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        DeltaTally::default()
    }

    /// Builds a tally from an iterator of values.
    pub fn from_values<I: IntoIterator<Item = u64>>(values: I) -> Self {
        let mut tally = DeltaTally::new();
        for v in values {
            tally.add(v);
        }
        tally
    }

    /// Records one occurrence of `value`.
    pub fn add(&mut self, value: u64) {
        match self.counts.binary_search_by_key(&value, |&(v, _)| v) {
            Ok(i) => self.counts[i].1 += 1,
            Err(i) => self.counts.insert(i, (value, 1)),
        }
        self.total += 1;
    }

    /// Removes one occurrence of `value` previously recorded with
    /// [`add`](DeltaTally::add).
    ///
    /// # Panics
    ///
    /// Panics if `value` is not currently in the tally — an unmatched undo
    /// is always a caller bug.
    pub fn remove(&mut self, value: u64) {
        let i = self
            .counts
            .binary_search_by_key(&value, |&(v, _)| v)
            .unwrap_or_else(|_| panic!("removing value {value} not in tally"));
        if self.counts[i].1 == 1 {
            self.counts.remove(i);
        } else {
            self.counts[i].1 -= 1;
        }
        self.total -= 1;
    }
}

impl VoteCounts for DeltaTally {
    fn count(&self, value: u64) -> usize {
        match self.counts.binary_search_by_key(&value, |&(v, _)| v) {
            Ok(i) => self.counts[i].1 as usize,
            Err(_) => 0,
        }
    }

    fn total(&self) -> usize {
        self.total
    }

    fn min_value_with_count_over(&self, threshold: usize) -> Option<u64> {
        self.counts
            .iter()
            .find(|&&(_, count)| count as usize > threshold)
            .map(|&(value, _)| value)
    }

    fn majority(&self) -> Option<u64> {
        self.counts
            .iter()
            .find(|&&(_, count)| 2 * count as usize > self.total)
            .map(|&(value, _)| value)
    }
}

impl FromIterator<u64> for DeltaTally {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        DeltaTally::from_values(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_requires_strict_majority() {
        assert_eq!(majority([1u64, 1, 2, 2]), None);
        assert_eq!(majority([1u64, 1, 1, 2]), Some(1));
        assert_eq!(majority([7u64]), Some(7));
    }

    #[test]
    fn majority_on_non_numeric_ord_types() {
        assert_eq!(majority(["a", "b", "a"]), Some("a"));
    }

    #[test]
    fn majority_or_defaults() {
        assert_eq!(majority_or([], 42), 42);
        assert_eq!(majority_or([3, 3, 3, 1, 2], 42), 3);
    }

    #[test]
    fn tally_counts_and_thresholds() {
        let z: Tally = [5u64, 5, 5, 8, 8, u64::MAX].into_iter().collect();
        assert_eq!(z.total(), 6);
        assert_eq!(z.count(5), 3);
        assert_eq!(z.count(8), 2);
        assert_eq!(z.count(0), 0);
        assert_eq!(z.min_value_with_count_over(2), Some(5));
        assert_eq!(z.min_value_with_count_over(1), Some(5));
        // Only the reset state (u64::MAX) would win here with threshold 0 for
        // large values; the scan returns the smallest qualifying value.
        assert_eq!(z.min_value_with_count_over(0), Some(5));
        assert_eq!(z.min_value_with_count_over(5), None);
    }

    #[test]
    fn tally_majority_matches_free_function() {
        let values = [9u64, 9, 9, 1, 2];
        let z = Tally::from_values(values);
        assert_eq!(z.majority(), majority(values));
    }

    #[test]
    fn infinity_sorts_last() {
        let z = Tally::from_values([u64::MAX, u64::MAX, 3]);
        // min over values with count > 1 is ∞ since only ∞ qualifies.
        assert_eq!(z.min_value_with_count_over(1), Some(u64::MAX));
        // 3 is found first when the threshold admits it.
        assert_eq!(z.min_value_with_count_over(0), Some(3));
    }

    #[test]
    fn extend_accumulates() {
        let mut z = Tally::new();
        z.extend([1u64, 1]);
        z.extend([2u64]);
        assert_eq!(z.total(), 3);
        assert_eq!(z.iter().collect::<Vec<_>>(), vec![(1, 2), (2, 1)]);
    }

    /// Every `VoteCounts` query must agree between `Tally` and `DeltaTally`
    /// for identical multisets, including after add/remove patching.
    #[test]
    fn delta_tally_agrees_with_tally() {
        let multisets: &[&[u64]] = &[
            &[],
            &[7],
            &[4, 4, 9, u64::MAX],
            &[5, 5, 5, 8, 8, u64::MAX],
            &[0, 1, 2, 3, 4, 5, 6],
            &[2, 2, 1, 1],
        ];
        for values in multisets {
            let tree: Tally = values.iter().copied().collect();
            let flat: DeltaTally = values.iter().copied().collect();
            for probe in [0u64, 1, 2, 4, 5, 8, 9, u64::MAX] {
                assert_eq!(
                    VoteCounts::count(&tree, probe),
                    VoteCounts::count(&flat, probe)
                );
            }
            assert_eq!(VoteCounts::total(&tree), VoteCounts::total(&flat));
            for threshold in 0..values.len() + 1 {
                assert_eq!(
                    VoteCounts::min_value_with_count_over(&tree, threshold),
                    VoteCounts::min_value_with_count_over(&flat, threshold),
                    "{values:?} over {threshold}"
                );
            }
            assert_eq!(VoteCounts::majority(&tree), VoteCounts::majority(&flat));
        }
    }

    #[test]
    fn delta_tally_add_remove_round_trips() {
        let base = [3u64, 3, 7, u64::MAX];
        let mut t = DeltaTally::from_values(base);
        let snapshot = t.clone();
        for patch in [[1u64, 3], [9, 9], [u64::MAX, 0]] {
            for v in patch {
                t.add(v);
            }
            for v in patch {
                t.remove(v);
            }
            assert_eq!(t, snapshot, "patch {patch:?} did not undo cleanly");
        }
    }

    #[test]
    #[should_panic(expected = "not in tally")]
    fn delta_tally_rejects_unmatched_remove() {
        let mut t = DeltaTally::from_values([1u64]);
        t.remove(2);
    }
}
