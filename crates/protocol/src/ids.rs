//! Identifier newtypes.

use std::fmt;

/// Identifier of a node in a fully connected network of `n` nodes.
///
/// Node identifiers are the set `[n] = {0, 1, …, n−1}` of the paper. The
/// newtype keeps node indices from being confused with block indices, counts,
/// or counter values in the heavily index-based construction code.
///
/// # Example
///
/// ```
/// use sc_protocol::NodeId;
///
/// let v = NodeId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(v.to_string(), "3");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// Wraps a raw index as a node identifier.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// Returns the raw index of this node.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId(index)
    }
}

impl From<NodeId> for usize {
    fn from(id: NodeId) -> usize {
        id.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Identifier of a block in the resilience-boosting construction (§3).
///
/// The boosted network of `N = k·n` nodes is divided into `k` blocks of `n`
/// nodes; node `v = (i, j)` is the `j`-th node of block `i`. Blocks are the
/// unit of fault accounting: a block with more than `f` faulty nodes is a
/// *faulty block*.
///
/// # Example
///
/// ```
/// use sc_protocol::{BlockId, NodeId};
///
/// let block = BlockId::new(2);
/// // With blocks of n = 4 nodes, block 2 owns flat node ids 8..12.
/// assert_eq!(block.member(1, 4), NodeId::new(9));
/// assert_eq!(BlockId::of(NodeId::new(9), 4), block);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(usize);

impl BlockId {
    /// Wraps a raw index as a block identifier.
    pub const fn new(index: usize) -> Self {
        BlockId(index)
    }

    /// Returns the raw index of this block.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Returns the block containing `node` when blocks have `n` members.
    pub const fn of(node: NodeId, n: usize) -> Self {
        BlockId(node.index() / n)
    }

    /// Returns the flat identifier of the `j`-th member of this block when
    /// blocks have `n` members.
    pub const fn member(self, j: usize, n: usize) -> NodeId {
        NodeId::new(self.0 * n + j)
    }

    /// Returns the within-block index of `node`, which must belong to this
    /// block when blocks have `n` members.
    pub const fn local_index(node: NodeId, n: usize) -> usize {
        node.index() % n
    }
}

impl From<usize> for BlockId {
    fn from(index: usize) -> Self {
        BlockId(index)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trips_through_usize() {
        let id = NodeId::from(7usize);
        assert_eq!(usize::from(id), 7);
        assert_eq!(id, NodeId::new(7));
    }

    #[test]
    fn node_id_orders_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::default(), NodeId::new(0));
    }

    #[test]
    fn block_membership_is_consistent() {
        let n = 5;
        for raw in 0..20 {
            let node = NodeId::new(raw);
            let block = BlockId::of(node, n);
            let local = BlockId::local_index(node, n);
            assert_eq!(block.member(local, n), node);
            assert!(local < n);
        }
    }

    #[test]
    fn block_display_and_conversion() {
        assert_eq!(BlockId::from(3usize).to_string(), "3");
        assert_eq!(BlockId::new(3).index(), 3);
    }
}
