//! Error types for parameter validation.

use std::error::Error;
use std::fmt;

/// Error raised when construction parameters are inconsistent or overflow.
///
/// The resilience-boosting construction (Theorem 1) is only defined when its
/// preconditions hold — `k ≥ 3`, `F < (f+1)·⌈k/2⌉`, `C > 1`, and the inner
/// counter's modulus is a multiple of `3(F+2)(2m)^k`. All parameter
/// arithmetic is checked; quantities like `(2m)^k` grow quickly and must not
/// silently wrap.
///
/// # Example
///
/// ```
/// use sc_protocol::ParamError;
///
/// let err = ParamError::constraint("k must be at least 3");
/// assert_eq!(err.to_string(), "invalid parameters: k must be at least 3");
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// A derived quantity does not fit in the arithmetic width used.
    Overflow {
        /// Which quantity overflowed, e.g. `"3(F+2)(2m)^k"`.
        what: String,
    },
    /// A precondition of the construction is violated.
    Constraint {
        /// Human-readable description of the violated precondition.
        what: String,
    },
}

impl ParamError {
    /// Convenience constructor for [`ParamError::Overflow`].
    pub fn overflow(what: impl Into<String>) -> Self {
        ParamError::Overflow { what: what.into() }
    }

    /// Convenience constructor for [`ParamError::Constraint`].
    pub fn constraint(what: impl Into<String>) -> Self {
        ParamError::Constraint { what: what.into() }
    }
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::Overflow { what } => {
                write!(f, "parameter arithmetic overflowed: {what}")
            }
            ParamError::Constraint { what } => write!(f, "invalid parameters: {what}"),
        }
    }
}

impl Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let o = ParamError::overflow("(2m)^k");
        assert_eq!(o.to_string(), "parameter arithmetic overflowed: (2m)^k");
        let c = ParamError::constraint("C > 1 required");
        assert!(c.to_string().contains("C > 1"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn is_error<E: Error + Send + Sync + 'static>(_: E) {}
        is_error(ParamError::constraint("x"));
    }

    #[test]
    fn variants_compare_by_content() {
        assert_eq!(ParamError::overflow("a"), ParamError::overflow("a"));
        assert_ne!(ParamError::overflow("a"), ParamError::constraint("a"));
    }
}
