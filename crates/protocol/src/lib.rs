//! Shared model types for self-stabilising Byzantine synchronous protocols.
//!
//! This crate defines the computational model of
//! *Towards Optimal Synchronous Counting* (Lenzen, Rybicki, Suomela;
//! PODC 2015), §2:
//!
//! * a fully connected network of `n` nodes with identifiers `0..n`,
//! * synchronous rounds in which every node broadcasts its state, receives a
//!   vector of states, and updates its own state,
//! * up to `f` Byzantine nodes that may send *different* states to different
//!   receivers,
//! * **arbitrary initial states** (self-stabilisation).
//!
//! The two central abstractions are:
//!
//! * [`SyncProtocol`] — a pure, round-free state machine
//!   `(X, g, h)`: state set `X`, transition `g`, output `h`. Protocols never
//!   see a round number; the simulator owns time.
//! * [`MessageView`] — the state vector received by one node in one round,
//!   with per-receiver Byzantine overrides layered over the honest broadcast
//!   (the `π_F` projection of the paper, seen from the receiving side).
//!
//! On top of these, [`Counter`] captures *synchronous `c`-counters*: the
//! output must eventually count rounds modulo `c` in agreement at all correct
//! nodes. Counters additionally expose their proven stabilisation-time bound
//! and a bit-exact state codec, so the paper's space accounting
//! (`S(A) = ⌈log |X|⌉`) is machine-checked rather than merely documented.
//!
//! # Example
//!
//! ```
//! use sc_protocol::{majority, NodeId, Tally};
//!
//! // The paper's majority vote: a value wins only with > half the votes;
//! // otherwise the result is unconstrained (we surface `None`).
//! assert_eq!(majority([1u64, 1, 2]), Some(1));
//! assert_eq!(majority([1u64, 2, 3]), None);
//!
//! // Tallies drive the phase-king thresholds (N-F and F+1).
//! let mut t = Tally::new();
//! for v in [3u64, 3, 7] {
//!     t.add(v);
//! }
//! assert_eq!(t.count(3), 2);
//! assert_eq!(t.min_value_with_count_over(1), Some(3));
//! assert_eq!(NodeId::new(5).index(), 5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bits;
mod error;
mod ids;
mod math;
mod plane;
mod traits;
mod view;
mod vote;

pub use bits::{BitReader, BitVec, CodecError, IterOnes};
pub use error::ParamError;
pub use ids::{BlockId, NodeId};
pub use math::{bits_for, checked_pow_u64, inc_mod, Interval};
pub use plane::{ExecSpaces, FaceRef, Op, PlaneBuf, Program, RoundFaces, SlicedLayout, Space};
pub use traits::{Counter, Fingerprint, PreparedProtocol, StepContext, SyncProtocol};
pub use view::{Broadcast, MessageSource, MessageView};
pub use vote::{majority, majority_or, DeltaTally, Tally, VoteCounts};
