//! Checked modular and combinatorial arithmetic used by the constructions.

use crate::ParamError;

/// Returns the number of bits needed to store any value in `0..values`.
///
/// This is the paper's space measure `⌈log₂ |X|⌉`. By convention a
/// single-valued state needs `0` bits.
///
/// # Example
///
/// ```
/// use sc_protocol::bits_for;
///
/// assert_eq!(bits_for(1), 0);
/// assert_eq!(bits_for(2), 1);
/// assert_eq!(bits_for(3), 2);
/// assert_eq!(bits_for(2304), 12);
/// ```
///
/// # Panics
///
/// Panics if `values == 0` (an empty state space has no representation).
pub fn bits_for(values: u64) -> u32 {
    assert!(values > 0, "state space must be non-empty");
    if values == 1 {
        0
    } else {
        u64::BITS - (values - 1).leading_zeros()
    }
}

/// Computes `base^exp` in `u64`, failing instead of wrapping.
///
/// # Errors
///
/// Returns [`ParamError::Overflow`] when the result exceeds `u64::MAX`.
///
/// # Example
///
/// ```
/// use sc_protocol::checked_pow_u64;
///
/// assert_eq!(checked_pow_u64(4, 4, "(2m)^k")?, 256);
/// assert!(checked_pow_u64(10, 30, "(2m)^k").is_err());
/// # Ok::<(), sc_protocol::ParamError>(())
/// ```
pub fn checked_pow_u64(base: u64, exp: u32, what: &str) -> Result<u64, ParamError> {
    base.checked_pow(exp)
        .ok_or_else(|| ParamError::overflow(format!("{what} = {base}^{exp}")))
}

/// Increments `value` modulo `modulus`.
///
/// This is the paper's `increment` operation on counter registers (without
/// the `∞` reset state, which callers handle separately).
///
/// # Example
///
/// ```
/// use sc_protocol::inc_mod;
///
/// assert_eq!(inc_mod(2, 3), 0);
/// assert_eq!(inc_mod(0, 3), 1);
/// ```
///
/// # Panics
///
/// Panics if `modulus == 0` or `value >= modulus`.
pub fn inc_mod(value: u64, modulus: u64) -> u64 {
    assert!(modulus > 0, "modulus must be positive");
    assert!(
        value < modulus,
        "value {value} out of range for modulus {modulus}"
    );
    if value + 1 == modulus {
        0
    } else {
        value + 1
    }
}

/// A half-open interval of round numbers `[start, end)`.
///
/// Used to reason about the leader-pointer windows of Lemmas 1–2: within one
/// counter period each block points to every candidate leader for an interval
/// of rounds, and the lemmas assert those intervals share a sufficiently long
/// intersection.
///
/// # Example
///
/// ```
/// use sc_protocol::Interval;
///
/// let a = Interval::new(10, 20);
/// let b = Interval::new(15, 40);
/// assert_eq!(a.intersect(b), Interval::new(15, 20));
/// assert_eq!(a.intersect(b).len(), 5);
/// assert!(a.contains(12) && !a.contains(20));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Interval {
    /// First round in the interval.
    pub start: u64,
    /// First round past the interval.
    pub end: u64,
}

impl Interval {
    /// Creates the interval `[start, end)`; an inverted pair denotes the
    /// empty interval.
    pub fn new(start: u64, end: u64) -> Self {
        Interval { start, end }
    }

    /// Number of rounds covered.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the interval covers no rounds.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }

    /// Whether `round` lies inside the interval.
    pub fn contains(&self, round: u64) -> bool {
        self.start <= round && round < self.end
    }

    /// The common sub-interval of `self` and `other` (possibly empty).
    pub fn intersect(&self, other: Interval) -> Interval {
        Interval {
            start: self.start.max(other.start),
            end: self.end.min(other.end),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_powers_of_two() {
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(256), 8);
        assert_eq!(bits_for(257), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn bits_for_rejects_zero() {
        bits_for(0);
    }

    #[test]
    fn checked_pow_boundaries() {
        assert_eq!(checked_pow_u64(2, 63, "x").unwrap(), 1 << 63);
        assert!(checked_pow_u64(2, 64, "x").is_err());
        assert_eq!(checked_pow_u64(7, 0, "x").unwrap(), 1);
    }

    #[test]
    fn inc_mod_wraps() {
        assert_eq!(inc_mod(0, 1), 0);
        assert_eq!(inc_mod(6, 7), 0);
        assert_eq!(inc_mod(5, 7), 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn inc_mod_rejects_out_of_range() {
        inc_mod(7, 7);
    }

    #[test]
    fn interval_edge_cases() {
        let empty = Interval::new(5, 5);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
        assert!(!empty.contains(5));
        let inverted = Interval::new(9, 3);
        assert!(inverted.is_empty());
        let a = Interval::new(0, 10);
        assert!(a.intersect(Interval::new(10, 20)).is_empty());
    }
}
