//! Protocol and counter traits.

use std::fmt;

use rand::RngCore;

use crate::{BitReader, BitVec, Broadcast, CodecError, MessageView, NodeId};

/// Per-step execution context handed to a protocol by the simulator.
///
/// Carries the entropy source used by *randomised* protocols (e.g. the
/// baseline counters of Table 1 rows \[6,7\]). Deterministic algorithms — in
/// particular every counter built by the constructions of §3–§4 — must not
/// consume randomness; tests enforce this by replaying executions with
/// different seeds.
pub struct StepContext<'a> {
    /// Entropy source for randomised protocols.
    pub rng: &'a mut dyn RngCore,
}

impl<'a> StepContext<'a> {
    /// Creates a context drawing randomness from `rng`.
    pub fn new(rng: &'a mut dyn RngCore) -> Self {
        StepContext { rng }
    }
}

impl fmt::Debug for StepContext<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StepContext").finish_non_exhaustive()
    }
}

/// A synchronous full-information protocol `A = (X, g, h)` (§2).
///
/// One instance describes the behaviour of *all* `n` nodes; per-node
/// behaviour is selected by the [`NodeId`] argument (the paper's transition
/// function `g : [n] × Xⁿ → X` and output function `h : [n] × X → [c]`).
///
/// Implementations must be **round-oblivious**: `step` receives no round
/// number, because self-stabilising algorithms cannot assume a shared notion
/// of time — that is precisely what a synchronous counter constructs.
///
/// # Example
///
/// A one-node modulo-`c` counter (the trivial base case of Corollary 1):
///
/// ```
/// use rand::RngCore;
/// use sc_protocol::{MessageView, NodeId, StepContext, SyncProtocol};
///
/// struct Trivial {
///     c: u64,
/// }
///
/// impl SyncProtocol for Trivial {
///     type State = u64;
///
///     fn n(&self) -> usize {
///         1
///     }
///
///     fn step(&self, node: NodeId, view: &MessageView<'_, u64>, _: &mut StepContext<'_>) -> u64 {
///         (view.get(node) + 1) % self.c
///     }
///
///     fn output(&self, _: NodeId, state: &u64) -> u64 {
///         *state
///     }
///
///     fn random_state(&self, _: NodeId, rng: &mut dyn RngCore) -> u64 {
///         rng.next_u64() % self.c
///     }
/// }
///
/// let t = Trivial { c: 3 };
/// assert_eq!(t.output(NodeId::new(0), &2), 2);
/// ```
pub trait SyncProtocol {
    /// Local node state (the paper's `X`).
    type State: Clone + fmt::Debug;

    /// Number of nodes the protocol is defined for.
    fn n(&self) -> usize;

    /// The transition function `g(node, x)`: computes the next state of
    /// `node` from the received state vector `view`.
    fn step(
        &self,
        node: NodeId,
        view: &MessageView<'_, Self::State>,
        ctx: &mut StepContext<'_>,
    ) -> Self::State;

    /// The output function `h(node, state)`.
    fn output(&self, node: NodeId, state: &Self::State) -> u64;

    /// Samples an arbitrary (adversarially chosen) state for `node`.
    ///
    /// Self-stabilisation quantifies over *all* initial states; simulators
    /// and adversaries use this to draw them. Implementations must be able to
    /// return every reachable state with positive probability, and may return
    /// unreachable-but-representable states too (the adversary controls raw
    /// memory contents at start-up).
    fn random_state(&self, node: NodeId, rng: &mut dyn RngCore) -> Self::State;
}

/// A self-stabilising synchronous `c`-counter with resilience `f` (§2).
///
/// Beyond the raw protocol this exposes the quantities the paper analyses:
/// the counter modulus `c`, the resilience `f`, the proven stabilisation-time
/// bound `T(A)`, the space bound `S(A)` in bits, and a bit-exact state codec
/// whose width must equal `S(A)` — tests across the workspace assert this.
pub trait Counter: SyncProtocol {
    /// Counter modulus `c`: outputs eventually count `0, 1, …, c−1, 0, …`.
    fn modulus(&self) -> u64;

    /// Resilience `f`: the maximum number of Byzantine nodes tolerated.
    fn resilience(&self) -> usize;

    /// Proven space bound `S(A)` in bits per node.
    fn state_bits(&self) -> u32;

    /// Proven stabilisation-time bound `T(A)` in rounds, valid for every
    /// initial configuration and every admissible adversary.
    fn stabilization_bound(&self) -> u64;

    /// Encodes `state` into exactly [`Counter::state_bits`] bits.
    fn encode_state(&self, node: NodeId, state: &Self::State, out: &mut BitVec);

    /// Decodes a state previously produced by [`Counter::encode_state`].
    ///
    /// # Errors
    ///
    /// Returns a [`CodecError`] when the bit string is too short or a field
    /// is outside its domain.
    fn decode_state(
        &self,
        node: NodeId,
        input: &mut BitReader<'_>,
    ) -> Result<Self::State, CodecError>;
}

/// A counter whose executions can be **fingerprinted** for sound
/// early-decision sweeps.
///
/// `run_until_stable`-style sweeps execute a full `bound + margin` horizon
/// even though the execution typically stabilises two orders of magnitude
/// earlier. When the protocol's transition is *deterministic* (and the
/// adversary's strategy is too — see `sc-sim`'s `AdversarySnapshot`), the
/// joint (states, adversary) configuration evolves on a finite graph: once
/// a configuration recurs, the suffix is a proven cycle and the remaining
/// rounds can be replayed algebraically instead of executed — the same
/// closed-execution argument the exhaustive verifier exploits on small
/// instances.
///
/// This trait provides the two ingredients an engine needs to do that
/// soundly:
///
/// * [`Fingerprint::deterministic_transition`] — a **typed marker** that
///   [`SyncProtocol::step`] is a pure function of the received view and
///   consumes no randomness from its [`StepContext`]. Randomised protocols
///   (and deterministic adapters over randomised plans, e.g. the pulling
///   model's fresh-sampling mode) must return `false`, which disables the
///   early exit — soundness is typed, not assumed.
/// * [`Fingerprint::fingerprint_state`] — a bit-exact digest of one node's
///   state, by default the counter's own codec: two states of the same node
///   digest equally **iff** they are equal. Engines compare full encodings
///   on every hash hit, so a configuration match is exact, never
///   probabilistic.
///
/// # Contract
///
/// If `deterministic_transition` returns `true`, then for every node and
/// every view, `step` must return the same state on every invocation and
/// must leave the [`StepContext`] entropy source untouched. Violating this
/// makes cycle-based early exits unsound; the `early_decision` test suites
/// replay early verdicts against full-horizon verdicts bitwise to guard the
/// implementations in this workspace.
pub trait Fingerprint: Counter {
    /// Whether [`SyncProtocol::step`] is deterministic (consumes no
    /// randomness), making configuration recurrence a proof of periodicity.
    fn deterministic_transition(&self) -> bool;

    /// Appends a bit-exact digest of `node`'s `state` to `out`.
    ///
    /// The default digest is the counter codec ([`Counter::encode_state`]),
    /// which round-trips by contract and is therefore injective on
    /// representable states. Override only with another injective encoding
    /// (e.g. to fingerprint auxiliary fields the codec deliberately omits).
    fn fingerprint_state(&self, node: NodeId, state: &Self::State, out: &mut BitVec) {
        self.encode_state(node, state, out);
    }
}

/// A protocol whose transition factors into a **receiver-independent
/// per-round precomputation** plus a cheap per-receiver step.
///
/// In the broadcast model all receivers observe the *same* honest states;
/// only the ≤ `f` Byzantine entries differ per receiver. Protocols built
/// from majority votes (the boosting construction of §3) therefore repeat
/// almost identical tallies `n` times per round. This trait lets a batched
/// execution engine hoist that shared work: it calls
/// [`prepare_round`](PreparedProtocol::prepare_round) once per round on the
/// honest broadcast and then
/// [`step_prepared`](PreparedProtocol::step_prepared) per receiver, which
/// only patches the faulty senders' contributions in.
///
/// # Contract
///
/// For every round, `step_prepared(v, view, prep, ctx)` must return exactly
/// what `step(v, view, ctx)` returns, consume the same amount of
/// randomness, and leave `prep` logically unchanged (patch-and-undo). The
/// `engine_equivalence` tests enforce this bitwise on the paper's counters.
pub trait PreparedProtocol: SyncProtocol {
    /// The shared per-round precomputation.
    type RoundPrep;

    /// Builds the round's shared state from the broadcast vector `base`
    /// (faulty entries are placeholders and must be ignored) and the sorted
    /// fault set. [`Broadcast`] carries either the engine's contiguous
    /// buffer or a ref projection, so neither engines nor recursive
    /// constructions clone or reallocate states to call this.
    fn prepare_round(&self, base: Broadcast<'_, Self::State>, faulty: &[NodeId])
        -> Self::RoundPrep;

    /// The transition of `node`, using — and restoring — the shared
    /// precomputation.
    fn step_prepared(
        &self,
        node: NodeId,
        view: &MessageView<'_, Self::State>,
        prep: &mut Self::RoundPrep,
        ctx: &mut StepContext<'_>,
    ) -> Self::State;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Minimal protocol used to exercise the trait plumbing.
    struct Echo {
        n: usize,
    }

    impl SyncProtocol for Echo {
        type State = u64;

        fn n(&self) -> usize {
            self.n
        }

        fn step(
            &self,
            node: NodeId,
            view: &MessageView<'_, u64>,
            _ctx: &mut StepContext<'_>,
        ) -> u64 {
            *view.get(node)
        }

        fn output(&self, _node: NodeId, state: &u64) -> u64 {
            *state
        }

        fn random_state(&self, _node: NodeId, rng: &mut dyn RngCore) -> u64 {
            rng.next_u64()
        }
    }

    #[test]
    fn step_context_passes_rng_through() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = Echo { n: 2 };
        let states = vec![11u64, 22];
        let view = MessageView::new(&states, &[]);
        let mut ctx = StepContext::new(&mut rng);
        assert_eq!(p.step(NodeId::new(1), &view, &mut ctx), 22);
    }

    #[test]
    fn random_state_uses_supplied_entropy() {
        let p = Echo { n: 1 };
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        assert_eq!(
            p.random_state(NodeId::new(0), &mut a),
            p.random_state(NodeId::new(0), &mut b)
        );
    }
}
