//! Bit-exact state encoding.
//!
//! The paper measures space as `S(A) = ⌈log |X|⌉` bits per node and proves
//! the recurrence `S(B) = S(A) + ⌈log(C+1)⌉ + 1` for the boosted counter
//! (Theorem 1). Counters in this workspace implement an encoder/decoder into
//! [`BitVec`] whose *exact width* is asserted against the claimed `S(·)` in
//! tests, turning the space analysis into an executable invariant.

use std::error::Error;
use std::fmt;

/// A growable bit string with MSB-first in-word layout.
///
/// # Example
///
/// ```
/// use sc_protocol::BitVec;
///
/// let mut bits = BitVec::new();
/// bits.push_bits(0b101, 3);
/// bits.push_bit(true);
/// assert_eq!(bits.len(), 4);
/// let mut r = bits.reader();
/// assert_eq!(r.read_bits(3)?, 0b101);
/// assert!(r.read_bit()?);
/// # Ok::<(), sc_protocol::CodecError>(())
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit string.
    pub fn new() -> Self {
        BitVec::default()
    }

    /// Creates a zeroed bit string of `len` bits.
    ///
    /// This is the constructor for *random-access* bit sets (safe/agreed
    /// sets of the exhaustive verifier's game solver), as opposed to the
    /// append-only codec use: all bits exist immediately and are mutated
    /// with [`BitVec::set_bit`].
    pub fn with_len(len: usize) -> Self {
        BitVec {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Clears and re-grows to `len` zero bits, retaining the allocated
    /// capacity — the reuse hook for solver bit sets that are rebuilt once
    /// per problem instance (the verifier's safe/agreed sets).
    pub fn reset(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Sets or clears the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn set_bit(&mut self, index: usize, bit: bool) {
        assert!(index < self.len, "bit index {index} out of range");
        let mask = 1u64 << (63 - (index % 64));
        if bit {
            self.words[index / 64] |= mask;
        } else {
            self.words[index / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates the indices of all set bits, in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word: 0,
            acc: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Number of bits stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends the low `width` bits of `value`, most significant first.
    ///
    /// Word-level: a field is appended in at most two masked word writes,
    /// not bit by bit — state codecs run in every round of a fingerprinted
    /// sweep, so this is hot-path code.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` does not fit in `width` bits —
    /// an encoder bug that would silently corrupt the space accounting.
    pub fn push_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} exceeds u64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        let mut remaining = width;
        while remaining > 0 {
            let offset = (self.len % 64) as u32;
            if offset == 0 {
                self.words.push(0);
            }
            let take = remaining.min(64 - offset);
            let mask = if take == 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            let chunk = (value >> (remaining - take)) & mask;
            *self.words.last_mut().expect("word pushed above or partial") |=
                chunk << (64 - offset - take);
            self.len += take as usize;
            remaining -= take;
        }
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        let word = self.len / 64;
        let offset = 63 - (self.len % 64);
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << offset;
        }
        self.len += 1;
    }

    /// Returns the bit at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn bit(&self, index: usize) -> bool {
        assert!(index < self.len, "bit index {index} out of range");
        (self.words[index / 64] >> (63 - (index % 64))) & 1 == 1
    }

    /// Clears the bit string, retaining the allocated capacity — the reuse
    /// hook for per-round encoding scratch (configuration fingerprinting
    /// re-encodes every round into the same buffer).
    pub fn clear(&mut self) {
        self.words.clear();
        self.len = 0;
    }

    /// The backing 64-bit words, MSB-first within each word; bits past
    /// [`BitVec::len`] in the last word are zero. Two bit strings are equal
    /// exactly when their lengths and word slices are equal, which makes
    /// this the fast path for hashing and comparing whole encodings.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Creates a cursor reading from the first bit.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader { bits: self, pos: 0 }
    }
}

/// Iterator over the set-bit indices of a [`BitVec`], ascending.
///
/// Produced by [`BitVec::iter_ones`]. Bits past [`BitVec::len`] in the last
/// word are zero by construction, so no out-of-range index is ever yielded.
#[derive(Clone, Debug)]
pub struct IterOnes<'a> {
    words: &'a [u64],
    word: usize,
    acc: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.acc == 0 {
            self.word += 1;
            if self.word >= self.words.len() {
                return None;
            }
            self.acc = self.words[self.word];
        }
        // MSB-first layout: the highest set bit is the lowest index.
        let lead = self.acc.leading_zeros() as usize;
        self.acc &= !(1u64 << (63 - lead));
        Some(self.word * 64 + lead)
    }
}

/// Cursor over a [`BitVec`].
///
/// See [`BitVec`] for an example.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bits: &'a BitVec,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Number of bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bits.len() - self.pos
    }

    /// Reads `width` bits, most significant first.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::OutOfBits`] when fewer than `width` bits remain.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, CodecError> {
        assert!(width <= 64, "width {width} exceeds u64");
        if (width as usize) > self.remaining() {
            return Err(CodecError::OutOfBits {
                wanted: width as usize,
                remaining: self.remaining(),
            });
        }
        let mut value = 0u64;
        for _ in 0..width {
            value = (value << 1) | u64::from(self.bits.bit(self.pos));
            self.pos += 1;
        }
        Ok(value)
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::OutOfBits`] at the end of the string.
    pub fn read_bit(&mut self) -> Result<bool, CodecError> {
        Ok(self.read_bits(1)? == 1)
    }
}

/// Error produced when decoding a state from its bit representation.
///
/// # Example
///
/// ```
/// use sc_protocol::{BitVec, CodecError};
///
/// let bits = BitVec::new();
/// let err = bits.reader().read_bits(4).unwrap_err();
/// assert!(matches!(err, CodecError::OutOfBits { .. }));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The bit string ended before the requested field.
    OutOfBits {
        /// Bits requested by the decoder.
        wanted: usize,
        /// Bits still available.
        remaining: usize,
    },
    /// A decoded field holds a value outside its domain.
    InvalidField {
        /// Which field was malformed, e.g. `"phase-king register"`.
        field: &'static str,
        /// The offending raw value.
        value: u64,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::OutOfBits { wanted, remaining } => {
                write!(
                    f,
                    "bit string exhausted: wanted {wanted} bits, {remaining} remain"
                )
            }
            CodecError::InvalidField { field, value } => {
                write!(f, "decoded value {value} is outside the domain of {field}")
            }
        }
    }
}

impl Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_fields() {
        let mut bits = BitVec::new();
        bits.push_bits(0xDEAD, 16);
        bits.push_bit(false);
        bits.push_bits(5, 3);
        bits.push_bits(0, 0); // zero-width fields are allowed
        let mut r = bits.reader();
        assert_eq!(r.read_bits(16).unwrap(), 0xDEAD);
        assert!(!r.read_bit().unwrap());
        assert_eq!(r.read_bits(3).unwrap(), 5);
        assert_eq!(r.read_bits(0).unwrap(), 0);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn crossing_word_boundaries() {
        let mut bits = BitVec::new();
        for i in 0..130u64 {
            bits.push_bit(i % 3 == 0);
        }
        assert_eq!(bits.len(), 130);
        let mut r = bits.reader();
        for i in 0..130u64 {
            assert_eq!(r.read_bit().unwrap(), i % 3 == 0, "bit {i}");
        }
    }

    #[test]
    fn full_width_values() {
        let mut bits = BitVec::new();
        bits.push_bits(u64::MAX, 64);
        assert_eq!(bits.reader().read_bits(64).unwrap(), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_rejects_oversized_values() {
        let mut bits = BitVec::new();
        bits.push_bits(8, 3);
    }

    #[test]
    fn out_of_bits_error_reports_counts() {
        let mut bits = BitVec::new();
        bits.push_bits(1, 2);
        let mut r = bits.reader();
        let err = r.read_bits(5).unwrap_err();
        assert_eq!(
            err,
            CodecError::OutOfBits {
                wanted: 5,
                remaining: 2
            }
        );
        assert!(err.to_string().contains("wanted 5"));
    }

    #[test]
    fn with_len_set_bit_round_trip() {
        let mut bits = BitVec::with_len(130);
        assert_eq!(bits.len(), 130);
        assert_eq!(bits.count_ones(), 0);
        bits.set_bit(0, true);
        bits.set_bit(64, true);
        bits.set_bit(129, true);
        assert!(bits.bit(0) && bits.bit(64) && bits.bit(129));
        assert_eq!(bits.count_ones(), 3);
        assert_eq!(bits.iter_ones().collect::<Vec<_>>(), vec![0, 64, 129]);
        bits.set_bit(64, false);
        assert_eq!(bits.iter_ones().collect::<Vec<_>>(), vec![0, 129]);
        // Clearing must not disturb neighbours.
        assert!(bits.bit(0) && !bits.bit(64) && bits.bit(129));
    }

    #[test]
    fn reset_zeroes_and_resizes() {
        let mut bits = BitVec::with_len(70);
        bits.set_bit(3, true);
        bits.set_bit(69, true);
        bits.reset(10);
        assert_eq!(bits.len(), 10);
        assert_eq!(bits.count_ones(), 0);
        bits.reset(130);
        assert_eq!(bits.len(), 130);
        assert_eq!(bits.count_ones(), 0);
        bits.set_bit(129, true);
        assert_eq!(bits.iter_ones().collect::<Vec<_>>(), vec![129]);
    }

    #[test]
    fn iter_ones_on_empty_and_full_strings() {
        assert_eq!(BitVec::new().iter_ones().next(), None);
        assert_eq!(BitVec::with_len(200).iter_ones().next(), None);
        let mut bits = BitVec::with_len(67);
        for i in 0..67 {
            bits.set_bit(i, true);
        }
        assert_eq!(bits.count_ones(), 67);
        assert_eq!(
            bits.iter_ones().collect::<Vec<_>>(),
            (0..67).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_bit_rejects_out_of_range() {
        BitVec::with_len(8).set_bit(8, true);
    }

    #[test]
    fn display_for_invalid_field() {
        let err = CodecError::InvalidField {
            field: "register",
            value: 9,
        };
        assert!(err.to_string().contains("register"));
    }
}
