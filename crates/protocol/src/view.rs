//! The per-receiver view of one communication round.

use crate::NodeId;

/// Where the state a faulty sender presents to one receiver comes from — the
/// lease an adversary hands the engine instead of an owned state.
///
/// The borrow-based message plane works in two steps: per (faulty sender,
/// receiver) pair the adversary returns one of these cheap `Copy` tokens,
/// and the engine resolves them zero-copy when it builds the receiver's
/// [`MessageView`] (via [`MessageView::from_sources`]). Only genuinely
/// fabricated states are ever materialised — once, into the engine's state
/// pool — while echo/replay/permutation attacks resolve to references into
/// states that already exist.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MessageSource {
    /// Echo the state node `NodeId` broadcasts *this round* (an honest
    /// donor, or the faulty sender's own placeholder). Resolves into the
    /// round's base vector; never clones.
    Broadcast(NodeId),
    /// A state the adversary pinned into the pool once for the whole
    /// execution (e.g. a crash adversary's frozen states). Stable across
    /// rounds; materialised exactly once.
    Pinned(u32),
    /// A state fabricated into the pool *this round*; the slot is recycled
    /// when the next round begins.
    Fabricated(u32),
}

/// The receiver-specific override slot of a [`MessageView`].
///
/// Overrides produced fresh by an adversary are owned; overrides that merely
/// point at states the caller already holds (sleeper adversaries replaying
/// their own honestly-maintained states, lookahead scoring) borrow them
/// instead of cloning; and the engine's hot path resolves adversary
/// [`MessageSource`] leases against the round base and the state pool.
#[derive(Clone, Copy, Debug)]
enum OverrideSlot<'a, S> {
    /// Adversary-materialised states, owned by the scratch buffer.
    Owned(&'a [(NodeId, S)]),
    /// Borrowed states, no clone required.
    Borrowed(&'a [(NodeId, &'a S)]),
    /// [`MessageSource`] leases, resolved against the base vector and the
    /// pinned/fabricated halves of the adversary state pool.
    Sourced {
        /// States pinned for the whole execution ([`MessageSource::Pinned`]).
        pinned: &'a [S],
        /// States fabricated this round ([`MessageSource::Fabricated`]).
        fabricated: &'a [S],
        /// The per-receiver `(faulty sender, lease)` vector.
        sources: &'a [(NodeId, MessageSource)],
    },
}

/// A borrowed, receiver-independent vector of one round's broadcast states:
/// the base layer of a [`MessageView`], and what
/// [`PreparedProtocol::prepare_round`] receives.
///
/// Either the engine's contiguous state buffer or a recursive
/// construction's zero-copy ref projection; neither form clones or
/// reallocates states.
///
/// [`PreparedProtocol::prepare_round`]: crate::PreparedProtocol::prepare_round
#[derive(Clone, Copy, Debug)]
pub enum Broadcast<'a, S> {
    /// Contiguous states (the engine's round buffer).
    States(&'a [S]),
    /// Individually referenced states (a projection).
    Refs(&'a [&'a S]),
}

impl<'a, S> Broadcast<'a, S> {
    /// The state broadcast by node `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is outside the network.
    pub fn get(&self, index: usize) -> &'a S {
        match self {
            Broadcast::States(s) => &s[index],
            Broadcast::Refs(r) => r[index],
        }
    }

    /// Number of states in the broadcast vector (the network size `n`).
    pub fn len(&self) -> usize {
        match self {
            Broadcast::States(s) => s.len(),
            Broadcast::Refs(r) => r.len(),
        }
    }

    /// Whether the vector is empty (only for degenerate zero-node
    /// networks).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The vector of states received by one node in one synchronous round.
///
/// In the model of §2, every node broadcasts its state and receives a vector
/// `x ∈ Xⁿ`. Correct nodes broadcast the *same* state to everyone, while
/// Byzantine nodes may send a different state to every receiver. A
/// `MessageView` therefore consists of
///
/// * a *base* — the honest broadcast vector (entries of faulty senders are
///   placeholders), shared by all receivers in a round, and
/// * *overrides* — the receiver-specific states chosen by the adversary for
///   the faulty senders.
///
/// This layering avoids cloning the `n` honest states once per receiver
/// (`O(n²)` clones per round) while still modelling full per-receiver
/// equivocation. Both layers are zero-copy: the base may be a contiguous
/// slice ([`MessageView::new`]) or a projection of borrowed states
/// ([`MessageView::from_refs`]), and the override slot may borrow states the
/// caller already owns ([`MessageView::with_borrowed`]).
///
/// # Example
///
/// ```
/// use sc_protocol::{MessageView, NodeId};
///
/// let base = vec![10u64, 20, 30];
/// let overrides = vec![(NodeId::new(1), 99u64)]; // node 1 lies to us
/// let view = MessageView::new(&base, &overrides);
/// assert_eq!(*view.get(NodeId::new(0)), 10);
/// assert_eq!(*view.get(NodeId::new(1)), 99);
/// assert_eq!(view.iter().copied().collect::<Vec<_>>(), vec![10, 99, 30]);
///
/// // Zero-copy: the same view built from scattered references and borrowed
/// // overrides, without cloning a single state.
/// let (a, b, c) = (10u64, 20, 30);
/// let refs = [&a, &b, &c];
/// let lie = 99u64;
/// let borrowed = [(NodeId::new(1), &lie)];
/// let view = MessageView::from_refs(&refs, &[]);
/// assert_eq!(*view.get(NodeId::new(2)), 30);
/// let view = MessageView::with_borrowed(&[10u64, 20, 30], &borrowed);
/// assert_eq!(*view.get(NodeId::new(1)), 99);
/// ```
#[derive(Debug)]
pub struct MessageView<'a, S> {
    base: Broadcast<'a, S>,
    overrides: OverrideSlot<'a, S>,
}

impl<'a, S> MessageView<'a, S> {
    /// Creates a view over the honest broadcast `base` with receiver-specific
    /// owned `overrides` for faulty senders.
    ///
    /// Each override index must be in range; duplicate overrides resolve to
    /// the first entry.
    pub fn new(base: &'a [S], overrides: &'a [(NodeId, S)]) -> Self {
        debug_assert!(
            overrides.iter().all(|(id, _)| id.index() < base.len()),
            "override for node outside the network"
        );
        MessageView {
            base: Broadcast::States(base),
            overrides: OverrideSlot::Owned(overrides),
        }
    }

    /// Creates a view whose base is a projection of individually referenced
    /// states — no clone of the underlying states is made.
    ///
    /// This is how the boosting construction of §3 derives each block's
    /// inner-counter view from the outer view.
    pub fn from_refs(base: &'a [&'a S], overrides: &'a [(NodeId, S)]) -> Self {
        debug_assert!(
            overrides.iter().all(|(id, _)| id.index() < base.len()),
            "override for node outside the network"
        );
        MessageView {
            base: Broadcast::Refs(base),
            overrides: OverrideSlot::Owned(overrides),
        }
    }

    /// Creates a view whose override slot *borrows* the faulty senders'
    /// states instead of owning clones.
    ///
    /// Use when the overriding states already live somewhere stable for the
    /// duration of the view — e.g. an adversary replaying states it already
    /// maintains.
    pub fn with_borrowed(base: &'a [S], overrides: &'a [(NodeId, &'a S)]) -> Self {
        debug_assert!(
            overrides.iter().all(|(id, _)| id.index() < base.len()),
            "override for node outside the network"
        );
        MessageView {
            base: Broadcast::States(base),
            overrides: OverrideSlot::Borrowed(overrides),
        }
    }

    /// Creates a view whose override slot holds [`MessageSource`] leases:
    /// each faulty sender's entry names either a state of the broadcast
    /// `base` itself or a slot of the adversary state pool (split into its
    /// execution-`pinned` and per-round `fabricated` halves).
    ///
    /// This is the hot-path constructor of the borrow-based message plane —
    /// the lease vector is plain `Copy` data living in reusable engine
    /// scratch, so building a receiver's view allocates and clones nothing.
    pub fn from_sources(
        base: &'a [S],
        pinned: &'a [S],
        fabricated: &'a [S],
        sources: &'a [(NodeId, MessageSource)],
    ) -> Self {
        debug_assert!(
            sources.iter().all(|(id, _)| id.index() < base.len()),
            "override for node outside the network"
        );
        MessageView {
            base: Broadcast::States(base),
            overrides: OverrideSlot::Sourced {
                pinned,
                fabricated,
                sources,
            },
        }
    }

    /// Number of states in the received vector (the network size `n`).
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether the vector is empty (only for degenerate zero-node networks).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The state received from `sender` this round.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is outside the network.
    pub fn get(&self, sender: NodeId) -> &'a S {
        match self.overrides {
            OverrideSlot::Owned(overrides) => {
                for (id, state) in overrides {
                    if *id == sender {
                        return state;
                    }
                }
            }
            OverrideSlot::Borrowed(overrides) => {
                for (id, state) in overrides {
                    if *id == sender {
                        return state;
                    }
                }
            }
            OverrideSlot::Sourced {
                pinned,
                fabricated,
                sources,
            } => {
                for (id, source) in sources {
                    if *id == sender {
                        return match *source {
                            MessageSource::Broadcast(donor) => self.base.get(donor.index()),
                            MessageSource::Pinned(slot) => &pinned[slot as usize],
                            MessageSource::Fabricated(slot) => &fabricated[slot as usize],
                        };
                    }
                }
            }
        }
        self.base.get(sender.index())
    }

    /// Iterates over the received states in sender-id order.
    pub fn iter(&self) -> Iter<'a, '_, S> {
        Iter {
            view: self,
            next: 0,
        }
    }
}

/// Iterator over the states of a [`MessageView`] in sender-id order.
#[derive(Debug)]
pub struct Iter<'a, 'v, S> {
    view: &'v MessageView<'a, S>,
    next: usize,
}

impl<'a, 'v, S> Iterator for Iter<'a, 'v, S> {
    type Item = &'a S;

    fn next(&mut self) -> Option<&'a S> {
        if self.next >= self.view.len() {
            return None;
        }
        let item = self.view.get(NodeId::new(self.next));
        self.next += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.view.len() - self.next;
        (rest, Some(rest))
    }
}

impl<'a, 'v, S> ExactSizeIterator for Iter<'a, 'v, S> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_overrides_view_mirrors_base() {
        let base = vec![1u32, 2, 3, 4];
        let view = MessageView::new(&base, &[]);
        assert_eq!(view.len(), 4);
        assert!(!view.is_empty());
        for (i, v) in base.iter().enumerate() {
            assert_eq!(view.get(NodeId::new(i)), v);
        }
    }

    #[test]
    fn overrides_shadow_base_entries() {
        let base = vec![0u32; 3];
        let overrides = vec![(NodeId::new(2), 7u32), (NodeId::new(0), 9)];
        let view = MessageView::new(&base, &overrides);
        assert_eq!(*view.get(NodeId::new(0)), 9);
        assert_eq!(*view.get(NodeId::new(1)), 0);
        assert_eq!(*view.get(NodeId::new(2)), 7);
    }

    #[test]
    fn duplicate_overrides_take_first() {
        let base = vec![0u32; 2];
        let overrides = vec![(NodeId::new(1), 5u32), (NodeId::new(1), 6)];
        let view = MessageView::new(&base, &overrides);
        assert_eq!(*view.get(NodeId::new(1)), 5);
    }

    #[test]
    fn iterator_is_exact_size_and_ordered() {
        let base = vec![10u32, 20, 30];
        let overrides = vec![(NodeId::new(1), 21u32)];
        let view = MessageView::new(&base, &overrides);
        let it = view.iter();
        assert_eq!(it.len(), 3);
        assert_eq!(it.copied().collect::<Vec<_>>(), vec![10, 21, 30]);
    }

    #[test]
    fn empty_view() {
        let base: Vec<u32> = Vec::new();
        let view = MessageView::new(&base, &[]);
        assert!(view.is_empty());
        assert_eq!(view.iter().count(), 0);
    }

    #[test]
    fn refs_base_projects_scattered_states() {
        let (a, b, c) = (5u32, 6, 7);
        let refs = [&b, &c, &a]; // arbitrary projection order
        let view = MessageView::from_refs(&refs, &[]);
        assert_eq!(view.len(), 3);
        assert_eq!(*view.get(NodeId::new(0)), 6);
        assert_eq!(*view.get(NodeId::new(2)), 5);
        assert_eq!(view.iter().copied().collect::<Vec<_>>(), vec![6, 7, 5]);
    }

    #[test]
    fn refs_base_respects_owned_overrides() {
        let (a, b) = (1u32, 2);
        let refs = [&a, &b];
        let overrides = [(NodeId::new(0), 9u32)];
        let view = MessageView::from_refs(&refs, &overrides);
        assert_eq!(*view.get(NodeId::new(0)), 9);
        assert_eq!(*view.get(NodeId::new(1)), 2);
    }

    #[test]
    fn borrowed_overrides_shadow_without_cloning() {
        let base = vec![0u32; 3];
        let lie_a = 7u32;
        let lie_b = 9u32;
        let overrides = [(NodeId::new(2), &lie_a), (NodeId::new(0), &lie_b)];
        let view = MessageView::with_borrowed(&base, &overrides);
        assert_eq!(*view.get(NodeId::new(0)), 9);
        assert_eq!(*view.get(NodeId::new(1)), 0);
        assert_eq!(*view.get(NodeId::new(2)), 7);
        assert_eq!(view.iter().copied().collect::<Vec<_>>(), vec![9, 0, 7]);
    }

    #[test]
    fn sourced_overrides_resolve_all_three_lease_kinds() {
        let base = vec![10u32, 20, 30, 40];
        let pinned = vec![77u32];
        let fabricated = vec![88u32, 99];
        let sources = [
            (NodeId::new(0), MessageSource::Broadcast(NodeId::new(2))),
            (NodeId::new(1), MessageSource::Pinned(0)),
            (NodeId::new(3), MessageSource::Fabricated(1)),
        ];
        let view = MessageView::from_sources(&base, &pinned, &fabricated, &sources);
        assert_eq!(*view.get(NodeId::new(0)), 30); // echoes node 2's broadcast
        assert_eq!(*view.get(NodeId::new(1)), 77); // pinned slot 0
        assert_eq!(*view.get(NodeId::new(2)), 30); // honest, from base
        assert_eq!(*view.get(NodeId::new(3)), 99); // round slot 1
        assert_eq!(
            view.iter().copied().collect::<Vec<_>>(),
            vec![30, 77, 30, 99]
        );
    }

    #[test]
    fn get_outlives_the_view_value() {
        // `get` returns references with the *underlying* lifetime, so a
        // projection can be built from a temporary view.
        let base = vec![1u32, 2];
        let first = {
            let view = MessageView::new(&base, &[]);
            view.get(NodeId::new(0))
        };
        assert_eq!(*first, 1);
    }
}
