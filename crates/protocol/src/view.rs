//! The per-receiver view of one communication round.

use crate::NodeId;

/// The vector of states received by one node in one synchronous round.
///
/// In the model of §2, every node broadcasts its state and receives a vector
/// `x ∈ Xⁿ`. Correct nodes broadcast the *same* state to everyone, while
/// Byzantine nodes may send a different state to every receiver. A
/// `MessageView` therefore consists of
///
/// * `base` — the honest broadcast vector (entries of faulty senders are
///   placeholders), shared by all receivers in a round, and
/// * `overrides` — the receiver-specific states chosen by the adversary for
///   the faulty senders.
///
/// This layering avoids cloning the `n` honest states once per receiver
/// (`O(n²)` clones per round) while still modelling full per-receiver
/// equivocation.
///
/// # Example
///
/// ```
/// use sc_protocol::{MessageView, NodeId};
///
/// let base = vec![10u64, 20, 30];
/// let overrides = vec![(NodeId::new(1), 99u64)]; // node 1 lies to us
/// let view = MessageView::new(&base, &overrides);
/// assert_eq!(*view.get(NodeId::new(0)), 10);
/// assert_eq!(*view.get(NodeId::new(1)), 99);
/// assert_eq!(view.iter().copied().collect::<Vec<_>>(), vec![10, 99, 30]);
/// ```
#[derive(Debug)]
pub struct MessageView<'a, S> {
    base: &'a [S],
    overrides: &'a [(NodeId, S)],
}

impl<'a, S> MessageView<'a, S> {
    /// Creates a view over the honest broadcast `base` with receiver-specific
    /// `overrides` for faulty senders.
    ///
    /// Each override index must be in range; duplicate overrides resolve to
    /// the first entry.
    pub fn new(base: &'a [S], overrides: &'a [(NodeId, S)]) -> Self {
        debug_assert!(
            overrides.iter().all(|(id, _)| id.index() < base.len()),
            "override for node outside the network"
        );
        MessageView { base, overrides }
    }

    /// Number of states in the received vector (the network size `n`).
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether the vector is empty (only for degenerate zero-node networks).
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// The state received from `sender` this round.
    ///
    /// # Panics
    ///
    /// Panics if `sender` is outside the network.
    pub fn get(&self, sender: NodeId) -> &S {
        for (id, state) in self.overrides {
            if *id == sender {
                return state;
            }
        }
        &self.base[sender.index()]
    }

    /// Iterates over the received states in sender-id order.
    pub fn iter(&self) -> Iter<'_, S> {
        Iter { view: self, next: 0 }
    }
}

/// Iterator over the states of a [`MessageView`] in sender-id order.
#[derive(Debug)]
pub struct Iter<'a, S> {
    view: &'a MessageView<'a, S>,
    next: usize,
}

impl<'a, S> Iterator for Iter<'a, S> {
    type Item = &'a S;

    fn next(&mut self) -> Option<&'a S> {
        if self.next >= self.view.len() {
            return None;
        }
        let item = self.view.get(NodeId::new(self.next));
        self.next += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.view.len() - self.next;
        (rest, Some(rest))
    }
}

impl<'a, S> ExactSizeIterator for Iter<'a, S> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_overrides_view_mirrors_base() {
        let base = vec![1u32, 2, 3, 4];
        let view = MessageView::new(&base, &[]);
        assert_eq!(view.len(), 4);
        assert!(!view.is_empty());
        for (i, v) in base.iter().enumerate() {
            assert_eq!(view.get(NodeId::new(i)), v);
        }
    }

    #[test]
    fn overrides_shadow_base_entries() {
        let base = vec![0u32; 3];
        let overrides = vec![(NodeId::new(2), 7u32), (NodeId::new(0), 9)];
        let view = MessageView::new(&base, &overrides);
        assert_eq!(*view.get(NodeId::new(0)), 9);
        assert_eq!(*view.get(NodeId::new(1)), 0);
        assert_eq!(*view.get(NodeId::new(2)), 7);
    }

    #[test]
    fn duplicate_overrides_take_first() {
        let base = vec![0u32; 2];
        let overrides = vec![(NodeId::new(1), 5u32), (NodeId::new(1), 6)];
        let view = MessageView::new(&base, &overrides);
        assert_eq!(*view.get(NodeId::new(1)), 5);
    }

    #[test]
    fn iterator_is_exact_size_and_ordered() {
        let base = vec![10u32, 20, 30];
        let overrides = vec![(NodeId::new(1), 21u32)];
        let view = MessageView::new(&base, &overrides);
        let it = view.iter();
        assert_eq!(it.len(), 3);
        assert_eq!(it.copied().collect::<Vec<_>>(), vec![10, 21, 30]);
    }

    #[test]
    fn empty_view() {
        let base: Vec<u32> = Vec::new();
        let view = MessageView::new(&base, &[]);
        assert!(view.is_empty());
        assert_eq!(view.iter().count(), 0);
    }
}
